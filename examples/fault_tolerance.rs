//! Fault tolerance: a flaky floor lamp exercises the whole resilience
//! stack — retries with backoff, the per-device circuit breaker, deferred
//! firings, and dead-letter replay on recovery.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```
//!
//! The floor lamp drops every control action between 18:00 and 18:30.
//! Tom's rule ("if it is hot, turn on the floor lamp") keeps trying: the
//! first failures are retried with exponential backoff, the breaker trips
//! after three strikes, fresh firings against the open breaker are
//! *deferred* instead of hammering the device, and once the fault window
//! closes a half-open probe recovers the lamp and replays anything that
//! was dead-lettered along the way. Every transition streams through the
//! logfmt sink as it happens.

use cadel::devices::LivingRoomHome;
use cadel::engine::{Engine, FiringOutcome};
use cadel::obs::{Level, TextFormat, TextSink};
use cadel::rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel::simplex::RelOp;
use cadel::types::{
    DeviceId, PersonId, Quantity, Rational, RuleId, SensorKey, SimDuration, SimTime, Unit,
};
use cadel::upnp::{ControlPoint, FaultPlan, FaultyDevice, Registry, VirtualDevice};
use std::sync::Arc;

fn hm(h: u64, m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_hours(h) + SimDuration::from_minutes(m)
}

fn main() {
    // Structured events on stdout as they happen (logfmt, Info and up).
    let sink =
        TextSink::new(Box::new(std::io::stdout()), TextFormat::Logfmt).with_min_level(Level::Info);
    cadel::obs::install(Arc::new(sink));

    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);

    // The lamp rejects every action for half an hour starting at 18:00.
    FaultyDevice::wrap(
        &registry,
        &DeviceId::new("lamp-lr"),
        FaultPlan::new().fail_between(hm(18, 0), hm(18, 30)),
    )
    .expect("wrap the floor lamp");

    let mut engine = Engine::new(ControlPoint::new(registry));
    let rule = Rule::builder(PersonId::new("tom"))
        .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        ))))
        .action(ActionSpec::new(DeviceId::new("lamp-lr"), Verb::TurnOn))
        .label("if it is hot, turn on the floor lamp")
        .build(RuleId::new(1))
        .expect("build lamp rule");
    engine.add_rule(rule).expect("register lamp rule");

    // The evening's temperature trace. The first spike lands inside the
    // fault window; the dips and re-spikes produce fresh rising edges
    // while the breaker is open, so deferral is visible too.
    let stimuli = [
        (hm(18, 1), 28), // hot: first dispatch fails, retries begin
        (hm(18, 4), 20), // cools off: pending retry is cancelled
        (hm(18, 6), 29), // hot again: half-open probe fails, breaker reopens
        (hm(18, 7), 20),
        (hm(18, 8), 30), // hot while the breaker is open: firing deferred
    ];

    println!("-- event stream (logfmt, Info and up) --");
    let mut at = hm(17, 55);
    let end = hm(19, 0);
    while at <= end {
        for (when, celsius) in &stimuli {
            if *when == at {
                home.thermometer
                    .set_reading(Rational::from_integer(*celsius), at)
                    .expect("publish temperature");
            }
        }
        let report = engine.step(at);
        for firing in &report.firings {
            let note = match &firing.outcome {
                FiringOutcome::Dispatched => "dispatched".to_owned(),
                FiringOutcome::Deferred => "deferred (circuit open)".to_owned(),
                other => other.to_string(),
            };
            println!("{} | {} -> {}: {}", at, firing.rule, firing.device, note);
        }
        at += SimDuration::from_minutes(1);
    }

    println!("\n-- aftermath --");
    println!(
        "lamp power at {}: {:?}",
        end,
        home.floor_lamp.query("power").expect("query lamp")
    );
    println!(
        "breaker state: {:?}",
        engine.resilience().breaker_state(&DeviceId::new("lamp-lr"))
    );
    println!("resilience status: {:?}", engine.resilience().status());

    println!("\n-- headline --");
    let snapshot = cadel::obs::metrics_snapshot();
    for name in [
        "upnp_faults_injected_total",
        "engine_retries_scheduled_total",
        "engine_retries_attempted_total",
        "engine_breaker_trips_total",
        "engine_firings_deferred_total",
        "engine_dead_letters_total",
        "engine_dlq_replayed_total",
        "engine_breaker_recoveries_total",
    ] {
        println!("{name} = {}", snapshot.counter(name).unwrap_or(0));
    }

    cadel::obs::shutdown();
}
