//! The paper's §4.2 rule examples (2) and (3) driving a security scenario:
//!
//! * "After evening, if someone returns home and the hall is dark, turn on
//!   the light at the hall."
//! * "At night, if entrance door is unlocked for 1 hour, turn on the
//!   alarm."
//!
//! ```text
//! cargo run --example security_home
//! ```

use cadel::devices::LivingRoomHome;
use cadel::server::{HomeServer, SubmitOutcome};
use cadel::types::{PersonId, Rational, SimDuration, SimTime, Topology, Value};
use cadel::upnp::{ControlPoint, Registry, VirtualDevice};

fn hm(h: u64, m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_hours(h) + SimDuration::from_minutes(m)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut topology = Topology::new("home");
    topology.add_floor("first floor")?;
    topology.add_room("living room", "first floor")?;
    topology.add_room("hall", "first floor")?;
    let mut server = HomeServer::new(ControlPoint::new(registry), topology);
    let tom = server.add_user("tom")?;

    for sentence in [
        "After evening, if someone returns home and the hall is dark, turn on the light at the hall.",
        "At night, if entrance door is unlocked for 1 hour, turn on the alarm.",
    ] {
        println!("register: {sentence:?}");
        match server.submit(&tom, sentence)? {
            SubmitOutcome::Registered { id, .. } => println!("  -> {id}"),
            other => println!("  -> {other:?}"),
        }
    }

    // --- Evening arrival with a dark hall --------------------------------
    let mut now = hm(19, 30);
    home.hall_lux.set_reading(Rational::from_integer(40), now)?; // dark
    server.step(now);
    println!(
        "\n19:30 hall is dark ({:?})",
        home.hall_lux.query("illuminance")?
    );
    now = hm(19, 32);
    home.hall_presence
        .announce_arrival(&PersonId::new("tom"), "returns home", now);
    let report = server.step(now);
    println!(
        "19:32 Tom returns home -> hall light power = {:?} ({} action(s))",
        home.hall_light.query("power")?,
        report.dispatched().len()
    );
    assert_eq!(home.hall_light.query("power")?, Value::Bool(true));

    // --- Door left unlocked at night --------------------------------------
    let t_unlock = hm(23, 0);
    home.entrance_door.set_locked(false, t_unlock);
    server.step(t_unlock);
    println!("\n23:00 entrance door unlocked");
    // 30 minutes: not yet.
    let t = hm(23, 30);
    server.step(t);
    println!("23:30 alarm = {:?}", home.alarm.query("power")?);
    assert_eq!(home.alarm.query("power")?, Value::Bool(false));
    // 61 minutes: the alarm fires.
    let t = hm(23, 0) + SimDuration::from_minutes(61);
    let report = server.step(t);
    println!(
        "00:01 (door unlocked for 1 hour) alarm = {:?} ({} action(s))",
        home.alarm.query("power")?,
        report.dispatched().len()
    );
    assert_eq!(home.alarm.query("power")?, Value::Bool(true));
    Ok(())
}
