//! Observability: run the Fig. 1 living-room scenario with a live logfmt
//! sink, then read the whole pipeline back as metrics.
//!
//! ```text
//! cargo run --example observability
//! ```
//!
//! Prints three views of the same run:
//!
//! 1. the structured-event stream (Info and up, logfmt, as it happens),
//! 2. the engine's per-step activity timeline,
//! 3. the Prometheus-style metrics exposition.

use cadel::obs::{Level, TextFormat, TextSink};
use cadel::sim::LivingRoomScenario;
use std::sync::Arc;

fn main() {
    // A logfmt sink on stdout; Debug-level step spans are filtered out so
    // the stream stays readable (switch to Level::Debug to see them all).
    let sink =
        TextSink::new(Box::new(std::io::stdout()), TextFormat::Logfmt).with_min_level(Level::Info);
    cadel::obs::install(Arc::new(sink));

    println!("-- event stream (logfmt, Info and up) --");
    let world = LivingRoomScenario::build().run();

    println!("\n-- engine activity timeline --");
    print!("{}", world.activity.render());

    println!("\n-- metrics exposition --");
    let snapshot = world.server.metrics_snapshot();
    print!("{}", snapshot.render_prometheus());

    // A few headline numbers, read the programmatic way.
    println!("\n-- headline --");
    for name in [
        "server_rules_registered_total",
        "conflict_pairs_conflicting_total",
        "engine_steps_total",
        "engine_firings_dispatched_total",
        "upnp_invokes_total",
    ] {
        println!("{name} = {}", snapshot.counter(name).unwrap_or(0));
    }
    if let Some(h) = snapshot.histogram("engine_step_duration_ns") {
        println!(
            "engine_step_duration_ns: count={} p50={}ns p95={}ns p99={}ns",
            h.count,
            h.p50(),
            h.p95(),
            h.p99()
        );
    }

    cadel::obs::shutdown();
}
