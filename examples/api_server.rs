//! Quickstart: a hardened network frontend over a two-tenant fleet.
//!
//! Boots an [`ApiServer`] on a loopback port, then plays both sides of
//! the wire: an event-stream subscriber, a client submitting a rule and
//! sensor readings, a scheduler driving fleet waves, and finally a
//! graceful drain. Run with:
//!
//! ```sh
//! cargo run --example api_server
//! ```

use cadel::api::{subscribe, ApiClient, ApiConfig, ApiServer};
use cadel::fleet::{Fleet, FleetConfig};
use cadel::sim::unit_tenant_builder;
use cadel::types::json::Json;
use cadel::types::{SimDuration, SimTime};
use std::time::Duration;

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_minutes(m)
}

fn reading(value: i64, at: SimTime) -> Json {
    Json::obj(vec![(
        "readings",
        Json::Arr(vec![Json::obj(vec![
            ("device", Json::str("thermo-0")),
            ("variable", Json::str("temperature")),
            ("value", Json::Int(value)),
            ("unit", Json::str("celsius")),
            ("at_ms", Json::Int(at.as_millis() as i64)),
        ])]),
    )])
}

fn main() -> std::io::Result<()> {
    cadel::obs::enable_metrics_only();

    // A fleet of two independent homes, each seeded with the paper's
    // example devices and rules, persisted under a temp directory.
    let root = std::env::temp_dir().join(format!("cadel-api-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut fleet = Fleet::new(&root, FleetConfig::default());
    let builder = unit_tenant_builder(None);
    fleet
        .add_tenant_arc("home-a", builder.clone())
        .expect("tenant");
    fleet.add_tenant_arc("home-b", builder).expect("tenant");

    // Bind on an ephemeral loopback port. `ApiConfig::default()` ships
    // the hardened settings: read/write deadlines, slow-loris budgets,
    // bounded heads and bodies, a connection cap, and per-client rate
    // limits.
    let server = ApiServer::bind("127.0.0.1:0", fleet, ApiConfig::default())?;
    let addr = server.addr();
    println!("listening on http://{addr}");

    // A GENA-like subscriber watching home-a's actuations.
    let mut events = subscribe(addr, Some("home-a"), Duration::from_secs(2))?;
    println!("subscribed: {}", events.sid());

    let mut client = ApiClient::connect(addr)?;

    // Submit a new rule over the wire, as the resident.
    let submitted = client.post(
        "/tenants/home-a/rules",
        &Json::obj(vec![
            ("user", Json::str("resident")),
            (
                "sentence",
                Json::str("If humidity is higher than 80 percent, turn on the lamp."),
            ),
        ]),
    )?;
    println!(
        "rule submit: {} {}",
        submitted.status,
        submitted.text().trim()
    );

    // Push a hot reading, then drive a fleet wave like a scheduler.
    let posted = client.post("/tenants/home-a/readings", &reading(30, mins(1)))?;
    println!("reading: {} {}", posted.status, posted.text().trim());
    let stepped = client.post(
        "/step",
        &Json::obj(vec![("at_ms", Json::Int(mins(1).as_millis() as i64))]),
    )?;
    println!("wave: {} {}", stepped.status, stepped.text().trim());

    // The subscriber sees the firing as a NOTIFY frame.
    match events.next_event() {
        Ok(Some(frame)) => println!("event: {frame}"),
        Ok(None) => println!("event stream closed"),
        Err(error) => println!("event stream: {error}"),
    }

    // Operational surfaces: health, readiness, Prometheus metrics.
    println!("healthz: {}", client.get("/healthz")?.text().trim());
    println!("readyz: {}", client.get("/readyz")?.text().trim());
    let metrics = client.get("/metrics")?.text().to_string();
    let lines: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("api_requests_total") || l.starts_with("api_connections_open"))
        .collect();
    println!("metrics: {}", lines.join(" | "));

    // Clients hang up, then the server drains gracefully: stop
    // accepting, flush inboxes, checkpoint, fsync.
    drop(client);
    drop(events);
    let outcome = server.shutdown(Duration::from_secs(5), mins(2));
    println!(
        "drained: clean={} waves={} flush_failures={}",
        outcome.is_clean(),
        outcome.fleet.waves,
        outcome.fleet.flush_failures.len()
    );
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
