//! Quickstart: register one CADEL rule and watch it control a device.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cadel::devices::LivingRoomHome;
use cadel::server::{HomeServer, SubmitOutcome};
use cadel::types::{Rational, SimDuration, SimTime, Topology};
use cadel::upnp::{ControlPoint, Registry, VirtualDevice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A home: the paper's living room, full of virtual UPnP devices.
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut topology = Topology::new("home");
    topology.add_floor("first floor")?;
    topology.add_room("living room", "first floor")?;
    topology.add_room("hall", "first floor")?;

    // 2. A home server and an occupant.
    let mut server = HomeServer::new(ControlPoint::new(registry), topology);
    let tom = server.add_user("tom")?;

    // 3. Tom writes a rule in CADEL — paper §4.2, example (1).
    let sentence = "If humidity is higher than 80 percent and temperature is higher \
                    than 28 degrees, turn on the air conditioner with 25 degrees of \
                    temperature setting.";
    println!("Tom says: {sentence:?}");
    match server.submit(&tom, sentence)? {
        SubmitOutcome::Registered { id, .. } => println!("  -> registered as {id}"),
        other => println!("  -> {other:?}"),
    }

    // 4. The room heats up; the engine reacts.
    let mut now = SimTime::EPOCH;
    println!(
        "\nroom: 25°C / 60% — aircon power = {:?}",
        home.aircon.query("power")?
    );
    now += SimDuration::from_minutes(30);
    home.thermometer
        .set_reading(Rational::from_integer(29), now)?;
    home.hygrometer
        .set_reading(Rational::from_integer(85), now)?;
    let report = server.step(now + SimDuration::from_secs(1));
    println!(
        "room: 29°C / 85% — engine dispatched {} action(s)",
        report.dispatched().len()
    );
    println!(
        "aircon power = {:?}, setpoint = {:?}",
        home.aircon.query("power")?,
        home.aircon.query("setpoint")?
    );
    Ok(())
}
