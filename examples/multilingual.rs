//! CADEL in another language (paper §4.2: "different versions of CADEL
//! based on any other languages can be defined").
//!
//! The vocabulary is data: this example builds a miniature romaji-Japanese
//! lexicon and parses a rule with it — the grammar machinery, compiler and
//! engine are untouched.
//!
//! ```text
//! cargo run --example multilingual
//! ```

use cadel::lang::ast::Command;
use cadel::lang::{parse_command, Compiler, Dictionary, Lexicon, MapResolver};
use cadel::rule::Verb;
use cadel::simplex::RelOp;
use cadel::types::{DeviceId, PersonId, RuleId, SensorKey, Unit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature romaji lexicon. Real deployments would fill all tables;
    // untranslated structure words (if/and/with/…) keep their grammar
    // role, exactly like the paper's English keywords.
    let lexicon = Lexicon::builder()
        .verb("tsukete", Verb::TurnOn)
        .verb("keshite", Verb::TurnOff)
        .comparison("yori takai", RelOp::Gt)
        .comparison("yori hikui", RelOp::Lt)
        .presence_predicate("ni iru")
        .build();

    let mut resolver = MapResolver::new();
    resolver
        .add_sensor(
            "kion", // air temperature
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            None,
            Unit::Celsius,
        )
        .add_device("eakon", "aircon-lr", None);

    let dictionary = Dictionary::new();
    let sentence = "If kion is yori takai 28 degrees, tsukete the eakon with \
                    25 degrees of temperature setting.";
    println!("parsing: {sentence:?}");
    let cmd = parse_command(sentence, &lexicon, &dictionary)?;
    let compiler = Compiler::new(&resolver, &dictionary, PersonId::new("tom"));
    match cmd {
        Command::Rule(ast) => {
            let rule = compiler
                .compile_rule(&ast)?
                .label(sentence)
                .build(RuleId::new(1))?;
            println!("compiled rule object:");
            println!("  condition: {}", rule.condition());
            println!("  action:    {}", rule.action());
        }
        other => println!("unexpected command {other:?}"),
    }
    Ok(())
}
