//! The paper's Fig. 1 control scenario, end to end: Tom, Alan and Emily's
//! conflicting preferences arbitrated by context-scoped priorities.
//!
//! ```text
//! cargo run --example living_room
//! ```
//!
//! Prints the event log, the device time chart (the reproduction of the
//! paper's Fig. 1), and the registered rules.

use cadel::sim::LivingRoomScenario;
use cadel::types::{SimDuration, SimTime};

fn hm(h: u64, m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_hours(h) + SimDuration::from_minutes(m)
}

fn main() {
    let scenario = LivingRoomScenario::build();
    let rules = scenario.rules();
    let world = scenario.run();

    println!("=== Scenario events ===");
    for line in &world.log {
        println!("  {line}");
    }

    println!("\n=== Registered rules ===");
    for rule in world.server.engine().rules().iter() {
        println!("  {rule}");
    }

    println!("\n=== Priority orders (context-scoped, Fig. 7) ===");
    for order in world.server.engine().priorities().orders() {
        println!("  {order}");
    }

    println!("\n=== Device transitions (Fig. 1 reproduction) ===");
    print!("{}", world.chart.render_transitions());

    println!("\n=== Time chart 16:30–20:00, 5-minute columns ===");
    print!(
        "{}",
        world
            .chart
            .render_bars(hm(16, 30), hm(20, 0), SimDuration::from_minutes(5))
    );

    println!(
        "\nFig. 1 labels: s1={} s'1={} s3={} | t2={} t3={} | r2={} | l1={} l3={} | a1={} a2={} a3={}",
        rules.s1,
        rules.s1_quiet,
        rules.s3,
        rules.t2,
        rules.t3,
        rules.r2,
        rules.l1,
        rules.l3,
        rules.a1,
        rules.a2,
        rules.a3
    );
}
