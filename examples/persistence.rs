//! Durable state & crash recovery: the home server journals every
//! durable mutation to a write-ahead log, survives a hard crash, and
//! resumes mid-scenario from the log (or a compacted snapshot).
//!
//! ```text
//! cargo run --example persistence
//! ```
//!
//! Three "incarnations" of the server share one store directory:
//!
//! 1. The first registers users, a private word, and rules, drives the
//!    engine, checkpoints the runtime state — then is dropped without
//!    ceremony (the crash).
//! 2. The second recovers by replaying the log: rules, priorities, the
//!    private dictionary, and the engine's mid-scenario runtime are all
//!    back. It compacts everything into a snapshot.
//! 3. The third recovers from the snapshot alone (zero records replayed).
//!
//! To show torn-write tolerance, garbage bytes are appended to the log
//! between incarnations; recovery truncates them and reports it.

use cadel::devices::LivingRoomHome;
use cadel::server::{HomeServer, SubmitOutcome};
use cadel::store::WAL_FILE;
use cadel::types::{PersonId, Rational, SimDuration, SimTime, Topology};
use cadel::upnp::{ControlPoint, Registry};

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_minutes(m)
}

fn fresh_world() -> (ControlPoint, Topology, LivingRoomHome) {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut topology = Topology::new("home");
    topology.add_floor("first floor").expect("add floor");
    topology
        .add_room("living room", "first floor")
        .expect("add living room");
    topology.add_room("hall", "first floor").expect("add hall");
    (ControlPoint::new(registry), topology, home)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("cadel-persistence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!("-- incarnation 1: build state, then crash --");
    {
        let (control, topology, home) = fresh_world();
        let (mut server, _) = HomeServer::open_at(control, topology, &dir).expect("open store");
        server.add_user("Tom").expect("add tom");
        let tom = PersonId::new("tom");
        server
            .submit(
                &tom,
                "Let's call the condition that temperature is higher than 26 degrees too hot",
            )
            .expect("define word");
        let outcome = server
            .submit(
                &tom,
                "If too hot, turn on the air conditioner with 25 degrees of temperature \
                 setting.",
            )
            .expect("register rule");
        println!(
            "registered: {:?}",
            matches!(outcome, SubmitOutcome::Registered { .. })
        );

        home.thermometer
            .set_reading(Rational::from_integer(29), mins(1))
            .expect("publish temperature");
        let report = server.step(mins(2));
        println!(
            "dispatched {} action(s) before the crash",
            report.dispatched().len()
        );
        server.checkpoint_runtime().expect("checkpoint runtime");
        server.sync().expect("sync log");
        println!(
            "log is {} bytes at {}",
            server.store().unwrap().wal_len(),
            dir.display()
        );
        // …and the process "crashes" here: the server is just dropped.
    }

    // A torn final write: the machine died mid-append.
    {
        use std::io::Write;
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .expect("open log");
        wal.write_all(&[0xDE, 0xAD, 0xBE]).expect("tear the log");
        println!("\n(appended 3 garbage bytes to simulate a torn write)");
    }

    println!("\n-- incarnation 2: recover by replaying the log --");
    {
        let (control, topology, _home) = fresh_world();
        let (mut server, report) = HomeServer::open_at(control, topology, &dir).expect("recover");
        println!(
            "replayed {} record(s), truncated {} torn byte(s), snapshot used: {}",
            report.records_replayed, report.bytes_truncated, report.snapshot_used
        );
        println!("rules back: {}", server.engine().rules().len());
        println!("engine resumed at {}", server.engine().context().now());
        // The private word survived too: it still parses.
        let tom = PersonId::new("tom");
        let outcome = server
            .submit(&tom, "If too hot, turn on the TV.")
            .expect("use recovered word");
        println!(
            "private word still works: {:?}",
            matches!(outcome, SubmitOutcome::Registered { .. })
        );

        // Fold everything into a snapshot; the log shrinks to a header.
        server.checkpoint().expect("compact");
        println!(
            "compacted: log is now {} bytes",
            server.store().unwrap().wal_len()
        );
    }

    println!("\n-- incarnation 3: recover from the snapshot alone --");
    {
        let (control, topology, _home) = fresh_world();
        let (server, report) = HomeServer::open_at(control, topology, &dir).expect("recover");
        println!(
            "replayed {} record(s), snapshot used: {}",
            report.records_replayed, report.snapshot_used
        );
        println!("rules back: {}", server.engine().rules().len());
    }

    let _ = std::fs::remove_dir_all(&dir);
}
