//! The guidance/lookup service of Figs 4–6 rendered as text: retrieving
//! devices and sensors by keyword, action, location and user-defined word,
//! and listing a device's allowed actions.
//!
//! ```text
//! cargo run --example rule_browser
//! ```

use cadel::devices::LivingRoomHome;
use cadel::server::{DeviceQuery, HomeServer, SubmitOutcome};
use cadel::types::{LocationSelector, Rational, SimTime, Topology};
use cadel::upnp::{ControlPoint, Registry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut topology = Topology::new("home");
    topology.add_floor("first floor")?;
    topology.add_room("living room", "first floor")?;
    topology.add_room("hall", "first floor")?;
    let mut server = HomeServer::new(ControlPoint::new(registry), topology);
    let tom = server.add_user("tom")?;
    home.thermometer
        .set_reading(Rational::from_integer(27), SimTime::EPOCH)?;
    home.hygrometer
        .set_reading(Rational::from_integer(66), SimTime::EPOCH)?;

    // Tom coins the word from the paper's Fig. 4.
    let def = "Let's call the condition that humidity is higher than 60 percent and \
               temperature is higher than 28 degrees hot and stuffy";
    if let SubmitOutcome::ConditionWordDefined { word } = server.submit(&tom, def)? {
        println!("defined condition word: {word:?}\n");
    }

    {
        let guidance = server.guidance();

        println!("== devices by keyword 'temperature' (Fig. 5) ==");
        for d in guidance.find_devices(&DeviceQuery::new().keyword("temperature")) {
            println!("  {d}");
        }

        println!("\n== devices in the hall that can TurnOn (Fig. 6) ==");
        let q = DeviceQuery::new()
            .action("TurnOn")
            .within(LocationSelector::within("hall"));
        for d in guidance.find_devices(&q) {
            println!("  {d}  actions: {:?}", d.action_names());
        }

        println!("\n== sensors measuring 'humidity', with live values ==");
        for s in guidance.find_sensors("humidity", &LocationSelector::Anywhere) {
            println!(
                "  {} . {} = {:?} (at {:?})",
                s.device_name, s.variable, s.current_value, s.location
            );
        }
    }

    let dictionary = server.users().effective_dictionary(&tom)?;
    let guidance = server.guidance();

    println!("\n== sensors retrieved by the word 'hot and stuffy' (Fig. 5) ==");
    for s in guidance.sensors_for_word("hot and stuffy", &dictionary, &LocationSelector::Anywhere) {
        println!(
            "  {} . {} = {:?}",
            s.device_name, s.variable, s.current_value
        );
    }

    println!("\n== words that mention the 'temperature' sensor (reverse lookup) ==");
    for w in guidance.words_for_sensor("temperature", &dictionary) {
        println!("  {w:?}");
    }

    println!("\n== allowed actions of the air conditioner (Fig. 6) ==");
    for a in guidance.device_actions(&cadel::types::DeviceId::new("aircon-lr")) {
        println!("  {a}");
    }
    Ok(())
}
