//! Conflict detection and the priority prompt (paper §4.4 and Fig. 7).
//!
//! Tom and Alan both automate the air conditioner with overlapping
//! trigger ranges and different set-points; the server detects the
//! conflict by Simplex satisfiability, shows a witness, and the household
//! answers the priority prompt with a context-scoped order. Then the
//! runtime demonstrates the arbitration both ways.
//!
//! ```text
//! cargo run --example conflict_demo
//! ```

use cadel::devices::LivingRoomHome;
use cadel::rule::{Atom, Condition, PresenceAtom};
use cadel::server::{HomeServer, SubmitOutcome};
use cadel::types::{PersonId, Rational, SimDuration, SimTime, Topology, Value};
use cadel::upnp::{ControlPoint, Registry, VirtualDevice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut topology = Topology::new("home");
    topology.add_floor("first floor")?;
    topology.add_room("living room", "first floor")?;
    topology.add_room("hall", "first floor")?;
    let mut server = HomeServer::new(ControlPoint::new(registry), topology);
    let tom = server.add_user("tom")?;
    let alan = server.add_user("alan")?;

    // Tom first.
    let tom_rule = "If temperature is higher than 26 degrees and humidity is higher than \
                    65 percent, turn on the air conditioner with 25 degrees of temperature setting.";
    println!("tom:  {tom_rule:?}");
    let tom_id = match server.submit(&tom, tom_rule)? {
        SubmitOutcome::Registered { id, .. } => {
            println!("  -> registered as {id}\n");
            id
        }
        other => panic!("unexpected {other:?}"),
    };

    // Alan's overlapping preference.
    let alan_rule = "If temperature is higher than 25 degrees and humidity is higher than \
                     60 percent, turn on the air conditioner with 24 degrees of temperature setting.";
    println!("alan: {alan_rule:?}");
    let ticket = match server.submit(&alan, alan_rule)? {
        SubmitOutcome::ConflictDetected { ticket, conflicts } => {
            println!("  -> CONFLICT detected with {} rule(s):", conflicts.len());
            for c in &conflicts {
                println!("     {c}");
            }
            ticket
        }
        other => panic!("expected a conflict, got {other:?}"),
    };

    // The household answers the Fig. 7 prompt: Alan outranks Tom while
    // Alan is in the living room.
    let ctx = Condition::Atom(Atom::Presence(PresenceAtom::person_at(
        "alan",
        "living room",
    )));
    server.confirm_with_priority(
        ticket,
        vec![ticket, tom_id],
        Some(ctx),
        Some("Alan is in the living room".to_owned()),
    )?;
    println!("\npriority registered:");
    for order in server.engine().priorities().orders() {
        println!("  {order}");
    }

    // --- Runtime arbitration ---------------------------------------------
    let mut now = SimTime::EPOCH + SimDuration::from_hours(18);
    home.thermometer
        .set_reading(Rational::from_integer(28), now)?;
    home.hygrometer
        .set_reading(Rational::from_integer(70), now)?;
    now += SimDuration::from_secs(1);
    server.step(now);
    println!(
        "\n18:00 both rules trigger, Alan away  -> setpoint {:?} (Tom wins: earliest rule)",
        home.aircon.query("setpoint")?
    );
    assert_eq!(
        home.aircon.query("setpoint")?,
        Value::Number(cadel::types::Quantity::from_integer(
            25,
            cadel::types::Unit::Celsius
        ))
    );

    now += SimDuration::from_minutes(10);
    home.living_presence
        .person_entered(&PersonId::new("alan"), now);
    now += SimDuration::from_secs(1);
    server.step(now);
    println!(
        "18:10 Alan enters the living room    -> setpoint {:?} (his context priority wins)",
        home.aircon.query("setpoint")?
    );
    assert_eq!(
        home.aircon.query("setpoint")?,
        Value::Number(cadel::types::Quantity::from_integer(
            24,
            cadel::types::Unit::Celsius
        ))
    );

    now += SimDuration::from_minutes(10);
    home.living_presence
        .person_left(&PersonId::new("alan"), now);
    now += SimDuration::from_secs(1);
    server.step(now);
    println!(
        "18:20 Alan leaves                    -> setpoint {:?} (unresolved ties keep the holder)",
        home.aircon.query("setpoint")?
    );
    Ok(())
}
