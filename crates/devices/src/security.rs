//! Security devices: door lock, alarm, and the RFID entrance reader that
//! produces presence/arrival facts.

use crate::core::DeviceCore;
use cadel_types::{PersonId, PlaceId, SimTime, Value, ValueKind};
use cadel_upnp::{
    ActionSignature, DeviceDescription, EventPublisher, ServiceDescription, StateVariableSpec,
    UpnpError, VirtualDevice,
};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::sync::Mutex;

/// Device type URN of door locks.
pub const DOOR_DEVICE_TYPE: &str = "urn:cadel:device:door:1";
/// Service type URN of lock control.
pub const LOCK_SERVICE_TYPE: &str = "urn:cadel:service:lock:1";
/// Device type URN of alarms.
pub const ALARM_DEVICE_TYPE: &str = "urn:cadel:device:alarm:1";
/// Service type URN of alarm control.
pub const ALARM_SERVICE_TYPE: &str = "urn:cadel:service:alarm:1";
/// Device type URN of RFID presence readers.
pub const RFID_DEVICE_TYPE: &str = "urn:cadel:device:rfid:1";
/// Service type URN of presence sensing.
pub const PRESENCE_SERVICE_TYPE: &str = "urn:cadel:service:presence:1";

/// A door with a lock: `locked` and `open` state variables.
#[derive(Debug)]
pub struct DoorLock {
    core: DeviceCore,
}

impl DoorLock {
    /// Creates a door lock.
    pub fn new(udn: &str, friendly_name: &str, place: &str) -> Arc<DoorLock> {
        let description = DeviceDescription::new(udn, friendly_name, DOOR_DEVICE_TYPE)
            .at(place)
            .with_keywords(["door", "lock", "security"])
            .with_service(
                ServiceDescription::new(format!("{udn}:lock"), LOCK_SERVICE_TYPE)
                    .with_action(ActionSignature::new("Lock"))
                    .with_action(ActionSignature::new("Unlock"))
                    .with_variable(
                        StateVariableSpec::new("locked", ValueKind::Bool)
                            .with_default(Value::Bool(true)),
                    )
                    .with_variable(
                        StateVariableSpec::new("open", ValueKind::Bool)
                            .with_default(Value::Bool(false)),
                    ),
            );
        Arc::new(DoorLock {
            core: DeviceCore::new(description),
        })
    }

    /// Simulates the door being physically opened or closed (a door
    /// sensor reading, not an action).
    pub fn set_open(&self, open: bool, at: SimTime) {
        let _ = self.core.set("open", Value::Bool(open), at);
    }

    /// Simulates a manual lock/unlock at the door itself.
    pub fn set_locked(&self, locked: bool, at: SimTime) {
        let _ = self.core.set("locked", Value::Bool(locked), at);
    }
}

impl VirtualDevice for DoorLock {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        _args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        match action.to_ascii_lowercase().as_str() {
            "lock" => {
                if self.core.get("open")? == Value::Bool(true) {
                    return Err(UpnpError::DeviceFault(
                        "cannot lock while the door is open".into(),
                    ));
                }
                self.core.set("locked", Value::Bool(true), at)?;
                Ok(vec![])
            }
            "unlock" => {
                self.core.set("locked", Value::Bool(false), at)?;
                Ok(vec![])
            }
            _ => Err(self.core.unknown_action(action)),
        }
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }
}

/// An alarm siren.
#[derive(Debug)]
pub struct Alarm {
    core: DeviceCore,
}

impl Alarm {
    /// Creates an alarm.
    pub fn new(udn: &str, friendly_name: &str, place: &str) -> Arc<Alarm> {
        let description = DeviceDescription::new(udn, friendly_name, ALARM_DEVICE_TYPE)
            .at(place)
            .with_keywords(["alarm", "security", "siren"])
            .with_service(
                ServiceDescription::new(format!("{udn}:alarm"), ALARM_SERVICE_TYPE)
                    .with_action(ActionSignature::new("TurnOn"))
                    .with_action(ActionSignature::new("TurnOff"))
                    .with_variable(
                        StateVariableSpec::new("power", ValueKind::Bool)
                            .with_default(Value::Bool(false)),
                    ),
            );
        Arc::new(Alarm {
            core: DeviceCore::new(description),
        })
    }
}

impl VirtualDevice for Alarm {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        _args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        match action.to_ascii_lowercase().as_str() {
            "turnon" => {
                self.core.set("power", Value::Bool(true), at)?;
                Ok(vec![])
            }
            "turnoff" => {
                self.core.set("power", Value::Bool(false), at)?;
                Ok(vec![])
            }
            _ => Err(self.core.unknown_action(action)),
        }
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }
}

/// The RFID presence reader of one place: tracks who is present and
/// announces arrivals/departures.
///
/// Two conventions the engine understands (documented in
/// `cadel-engine::context`):
///
/// * the `occupants` variable holds the comma-separated sorted list of
///   people currently at this reader's place — changes update presence
///   facts;
/// * the `arrival` variable transiently carries `"<channel>|<event>"`
///   (e.g. `"person:alan|got home from work"`) — changes raise event
///   facts.
#[derive(Debug)]
pub struct PresenceReader {
    core: DeviceCore,
    place: PlaceId,
    occupants: Mutex<BTreeSet<PersonId>>,
}

impl PresenceReader {
    /// Creates a presence reader for a place.
    pub fn new(udn: &str, friendly_name: &str, place: &str) -> Arc<PresenceReader> {
        let description = DeviceDescription::new(udn, friendly_name, RFID_DEVICE_TYPE)
            .at(place)
            .with_keywords(["presence", "rfid", "person"])
            .with_service(
                ServiceDescription::new(format!("{udn}:presence"), PRESENCE_SERVICE_TYPE)
                    .with_variable(
                        StateVariableSpec::new("occupants", ValueKind::Text)
                            .with_default(Value::from("")),
                    )
                    .with_variable(
                        StateVariableSpec::new("arrival", ValueKind::Text)
                            .with_default(Value::from("")),
                    ),
            );
        Arc::new(PresenceReader {
            core: DeviceCore::new(description),
            place: PlaceId::new(place),
            occupants: Mutex::new(BTreeSet::new()),
        })
    }

    /// The place this reader watches.
    pub fn place(&self) -> &PlaceId {
        &self.place
    }

    fn publish_occupants(&self, at: SimTime) {
        let list = self
            .occupants
            .lock()
            .unwrap()
            .iter()
            .map(|p| p.as_str().to_owned())
            .collect::<Vec<_>>()
            .join(",");
        let _ = self.core.set("occupants", Value::from(list), at);
    }

    /// Registers that `person` entered the place.
    pub fn person_entered(&self, person: &PersonId, at: SimTime) {
        self.occupants.lock().unwrap().insert(person.clone());
        self.publish_occupants(at);
    }

    /// Registers that `person` left the place.
    pub fn person_left(&self, person: &PersonId, at: SimTime) {
        self.occupants.lock().unwrap().remove(person);
        self.publish_occupants(at);
    }

    /// Announces an arrival event such as "got home from work". Raises
    /// both the person-specific channel (`person:<id>`) and the generic
    /// `person` channel (for "someone returns home").
    pub fn announce_arrival(&self, person: &PersonId, event: &str, at: SimTime) {
        let payload = format!("person:{person}|{event}");
        let _ = self.core.set("arrival", Value::from(payload), at);
        // Reset so the same event can fire again later.
        let _ = self.core.set("arrival", Value::from(""), at);
    }

    /// Who is currently at the place.
    pub fn occupants(&self) -> Vec<PersonId> {
        self.occupants.lock().unwrap().iter().cloned().collect()
    }
}

impl VirtualDevice for PresenceReader {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        _args: &[(String, Value)],
        _at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        Err(self.core.unknown_action(action))
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_upnp::Registry;

    #[test]
    fn door_lock_state_machine() {
        let door = DoorLock::new("door-1", "Entrance Door", "hall");
        let t = SimTime::EPOCH;
        assert_eq!(door.query("locked").unwrap(), Value::Bool(true));
        door.invoke("Unlock", &[], t).unwrap();
        assert_eq!(door.query("locked").unwrap(), Value::Bool(false));
        door.set_open(true, t);
        let err = door.invoke("Lock", &[], t).unwrap_err();
        assert!(matches!(err, UpnpError::DeviceFault(_)));
        door.set_open(false, t);
        door.invoke("Lock", &[], t).unwrap();
        assert_eq!(door.query("locked").unwrap(), Value::Bool(true));
    }

    #[test]
    fn alarm_on_off() {
        let alarm = Alarm::new("al-1", "Alarm", "hall");
        alarm.invoke("TurnOn", &[], SimTime::EPOCH).unwrap();
        assert_eq!(alarm.query("power").unwrap(), Value::Bool(true));
        alarm.invoke("TurnOff", &[], SimTime::EPOCH).unwrap();
        assert_eq!(alarm.query("power").unwrap(), Value::Bool(false));
    }

    #[test]
    fn presence_reader_tracks_occupants() {
        let registry = Registry::new();
        let reader = PresenceReader::new("rfid-1", "Living Room Reader", "living room");
        registry.register(reader.clone()).unwrap();
        let sub = registry.event_bus().subscribe(None);
        let tom = PersonId::new("tom");
        let alan = PersonId::new("alan");
        let t = SimTime::EPOCH;

        reader.person_entered(&tom, t);
        reader.person_entered(&alan, t);
        assert_eq!(reader.occupants().len(), 2);
        reader.person_left(&tom, t);
        assert_eq!(reader.occupants(), vec![alan.clone()]);

        let changes = sub.drain();
        let lists: Vec<String> = changes
            .iter()
            .filter(|c| c.variable == "occupants")
            .filter_map(|c| c.value.as_text().map(str::to_owned))
            .collect();
        assert_eq!(lists, ["tom", "alan,tom", "alan"]);
    }

    #[test]
    fn arrival_announcement_raises_and_clears() {
        let registry = Registry::new();
        let reader = PresenceReader::new("rfid-1", "Hall Reader", "hall");
        registry.register(reader.clone()).unwrap();
        let sub = registry.event_bus().subscribe(None);
        reader.announce_arrival(&PersonId::new("alan"), "got home from work", SimTime::EPOCH);
        let changes = sub.drain();
        let arrivals: Vec<String> = changes
            .iter()
            .filter(|c| c.variable == "arrival")
            .filter_map(|c| c.value.as_text().map(str::to_owned))
            .collect();
        assert_eq!(arrivals, ["person:alan|got home from work", ""]);
    }
}
