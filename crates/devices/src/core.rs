//! Shared state-machine plumbing for virtual devices.

use cadel_types::{SimTime, Value};
use cadel_upnp::{DeviceDescription, EventPublisher, UpnpError};
use std::collections::HashMap;
use std::sync::Mutex;

/// The state core embedded in every virtual appliance: a validated
/// key/value store of state variables plus the event publisher wiring.
///
/// * `set` validates values against the device description (kind, range,
///   allowed values) and publishes a property change when the value
///   actually changed and the variable is evented.
/// * `get` answers `query` calls.
#[derive(Debug)]
pub struct DeviceCore {
    description: DeviceDescription,
    state: Mutex<HashMap<String, Value>>,
    publisher: Mutex<Option<EventPublisher>>,
}

impl DeviceCore {
    /// Creates a core from a description, initializing every state
    /// variable to its declared default (variables without defaults start
    /// absent and `query` errors until first set).
    pub fn new(description: DeviceDescription) -> DeviceCore {
        let mut state = HashMap::new();
        for service in description.services() {
            for var in service.state_variables() {
                if let Some(default) = var.default() {
                    state.insert(var.name().to_owned(), default.clone());
                }
            }
        }
        DeviceCore {
            description,
            state: Mutex::new(state),
            publisher: Mutex::new(None),
        }
    }

    /// The description document.
    pub fn description(&self) -> &DeviceDescription {
        &self.description
    }

    /// Stores the event publisher (called from `VirtualDevice::attach`).
    pub fn attach(&self, publisher: EventPublisher) {
        *self.publisher.lock().unwrap() = Some(publisher);
    }

    /// Reads a state variable.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownVariable`] when the variable is not
    /// declared or has no value yet.
    pub fn get(&self, variable: &str) -> Result<Value, UpnpError> {
        let canonical = self
            .description
            .find_variable(variable)
            .map(|(_, v)| v.name().to_owned())
            .ok_or_else(|| UpnpError::UnknownVariable {
                device: self.description.udn().clone(),
                variable: variable.to_owned(),
            })?;
        self.state
            .lock()
            .unwrap()
            .get(&canonical)
            .cloned()
            .ok_or_else(|| UpnpError::UnknownVariable {
                device: self.description.udn().clone(),
                variable: canonical,
            })
    }

    /// Validates and stores a state variable, publishing the change.
    ///
    /// Returns `true` when the stored value actually changed.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownVariable`] for undeclared variables and
    /// [`UpnpError::RangeViolation`] when validation fails.
    pub fn set(&self, variable: &str, value: Value, at: SimTime) -> Result<bool, UpnpError> {
        let (_, spec) =
            self.description
                .find_variable(variable)
                .ok_or_else(|| UpnpError::UnknownVariable {
                    device: self.description.udn().clone(),
                    variable: variable.to_owned(),
                })?;
        spec.validate(&value)
            .map_err(|detail| UpnpError::RangeViolation {
                variable: spec.name().to_owned(),
                detail,
            })?;
        let name = spec.name().to_owned();
        let evented = spec.is_evented();
        let changed = {
            let mut state = self.state.lock().unwrap();
            match state.get(&name) {
                Some(existing) if *existing == value => false,
                _ => {
                    state.insert(name.clone(), value.clone());
                    true
                }
            }
        };
        if changed && evented {
            if let Some(p) = self.publisher.lock().unwrap().as_ref() {
                p.publish(name, value, at);
            }
        }
        Ok(changed)
    }

    /// Convenience: the error for an action this device does not offer.
    pub fn unknown_action(&self, action: &str) -> UpnpError {
        UpnpError::UnknownAction {
            device: self.description.udn().clone(),
            action: action.to_owned(),
        }
    }

    /// Extracts a named argument from an invocation argument list
    /// (case-insensitive).
    pub fn arg<'v>(args: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
        args.iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::{DeviceId, Quantity, Rational, Unit, ValueKind};
    use cadel_upnp::{EventBus, ServiceDescription, StateVariableSpec};

    fn sample_core() -> DeviceCore {
        let description = DeviceDescription::new("d1", "Sample", "urn:cadel:device:sample:1")
            .with_service(
                ServiceDescription::new("svc", "urn:cadel:service:sample:1")
                    .with_variable(
                        StateVariableSpec::new("power", ValueKind::Bool)
                            .with_default(Value::Bool(false)),
                    )
                    .with_variable(
                        StateVariableSpec::new("setpoint", ValueKind::Number)
                            .with_unit(Unit::Celsius)
                            .with_range(Rational::from_integer(16), Rational::from_integer(32)),
                    )
                    .with_variable(StateVariableSpec::new("silent", ValueKind::Bool).non_evented()),
            );
        DeviceCore::new(description)
    }

    #[test]
    fn defaults_initialize_state() {
        let core = sample_core();
        assert_eq!(core.get("power").unwrap(), Value::Bool(false));
        // setpoint has no default: absent until first set.
        assert!(core.get("setpoint").is_err());
        assert!(core.get("nonsense").is_err());
    }

    #[test]
    fn set_validates_and_reports_change() {
        let core = sample_core();
        let t = SimTime::EPOCH;
        assert!(core.set("power", Value::Bool(true), t).unwrap());
        assert!(!core.set("power", Value::Bool(true), t).unwrap()); // no-op
        let err = core
            .set(
                "setpoint",
                Value::Number(Quantity::from_integer(99, Unit::Celsius)),
                t,
            )
            .unwrap_err();
        assert!(matches!(err, UpnpError::RangeViolation { .. }));
        core.set(
            "setpoint",
            Value::Number(Quantity::from_integer(25, Unit::Celsius)),
            t,
        )
        .unwrap();
    }

    #[test]
    fn changes_publish_only_when_evented_and_changed() {
        let core = sample_core();
        let bus = EventBus::new();
        let sub = bus.subscribe(None);
        core.attach(bus.publisher(DeviceId::new("d1")));
        let t = SimTime::EPOCH;
        core.set("power", Value::Bool(true), t).unwrap();
        core.set("power", Value::Bool(true), t).unwrap(); // unchanged
        core.set("silent", Value::Bool(true), t).unwrap(); // non-evented
        let changes = sub.drain();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].variable, "power");
    }

    #[test]
    fn variable_names_are_case_insensitive() {
        let core = sample_core();
        core.set("POWER", Value::Bool(true), SimTime::EPOCH)
            .unwrap();
        assert_eq!(core.get("Power").unwrap(), Value::Bool(true));
    }

    #[test]
    fn arg_lookup() {
        let args = vec![("Temperature".to_owned(), Value::Bool(true))];
        assert!(DeviceCore::arg(&args, "temperature").is_some());
        assert!(DeviceCore::arg(&args, "humidity").is_none());
    }
}
