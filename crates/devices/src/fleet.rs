//! Ready-made device fleets: the paper's living-room home (Fig. 1
//! scenario) and the generic virtual fleets used by the E1 retrieval
//! experiment.

use crate::av::{Stereo, Television, TvGuide, VideoRecorder};
use crate::climate::{AirConditioner, EnvironmentSensor, Hygrometer, Thermometer};
use crate::lighting::{Light, LightKind, LuxMeter};
use crate::security::{Alarm, DoorLock, PresenceReader};
use cadel_types::{DeviceId, SimTime, Value, ValueKind};
use cadel_upnp::{
    ActionSignature, DeviceDescription, EventPublisher, Registry, ServiceDescription,
    StateVariableSpec, UpnpError, VirtualDevice,
};
use std::sync::Arc;

/// Concrete handles to every device of the paper's living-room home.
///
/// §3.1: "there are a stereo system, a flat-panel TV, a video recorder, a
/// fluorescent light, floor lamps, and an air conditioner in the living
/// room" — plus the sensors needed to identify the context (temperature,
/// humidity, presence/RFID, TV guide) and the hall devices of the paper's
/// rule examples (hall light, lux meter, entrance door, alarm).
pub struct LivingRoomHome {
    /// The air conditioner in the living room.
    pub aircon: Arc<AirConditioner>,
    /// The flat-panel TV.
    pub tv: Arc<Television>,
    /// The stereo system.
    pub stereo: Arc<Stereo>,
    /// The video recorder.
    pub recorder: Arc<VideoRecorder>,
    /// The ceiling fluorescent light.
    pub fluorescent: Arc<Light>,
    /// The floor lamp.
    pub floor_lamp: Arc<Light>,
    /// The hall light.
    pub hall_light: Arc<Light>,
    /// Living-room thermometer.
    pub thermometer: Arc<EnvironmentSensor>,
    /// Living-room hygrometer.
    pub hygrometer: Arc<EnvironmentSensor>,
    /// Hall lux meter.
    pub hall_lux: Arc<LuxMeter>,
    /// Living-room presence reader.
    pub living_presence: Arc<PresenceReader>,
    /// Hall presence reader (the entrance).
    pub hall_presence: Arc<PresenceReader>,
    /// The entrance door lock.
    pub entrance_door: Arc<DoorLock>,
    /// The alarm.
    pub alarm: Arc<Alarm>,
    /// The TV guide (EPG).
    pub tv_guide: Arc<TvGuide>,
}

impl LivingRoomHome {
    /// Builds the home and registers every device in `registry`.
    ///
    /// # Panics
    ///
    /// Panics if the registry already contains devices with the fixed
    /// UDNs used here (fresh registries never do).
    pub fn install(registry: &Registry) -> LivingRoomHome {
        let home = LivingRoomHome {
            aircon: AirConditioner::new("aircon-lr", "Air Conditioner", "living room"),
            tv: Television::new("tv-lr", "TV", "living room"),
            stereo: Stereo::new("stereo-lr", "Stereo", "living room"),
            recorder: VideoRecorder::new("vcr-lr", "Video Recorder", "living room"),
            fluorescent: Light::new(
                "light-lr",
                "Fluorescent Light",
                "living room",
                LightKind::Fluorescent,
            ),
            floor_lamp: Light::new("lamp-lr", "Floor Lamp", "living room", LightKind::FloorLamp),
            hall_light: Light::new("light-hall", "Light", "hall", LightKind::Fluorescent),
            thermometer: Thermometer::new("thermo-lr", "Thermometer", "living room", 24),
            hygrometer: Hygrometer::new("hygro-lr", "Hygrometer", "living room", 55),
            hall_lux: LuxMeter::new("lux-hall", "Lux Meter", "hall", 400),
            living_presence: PresenceReader::new("rfid-lr", "Presence Reader", "living room"),
            hall_presence: PresenceReader::new("rfid-hall", "Entrance Reader", "hall"),
            entrance_door: DoorLock::new("door-hall", "Entrance Door", "hall"),
            alarm: Alarm::new("alarm-hall", "Alarm", "hall"),
            tv_guide: TvGuide::new("epg"),
        };
        let devices: Vec<Arc<dyn VirtualDevice>> = vec![
            home.aircon.clone(),
            home.tv.clone(),
            home.stereo.clone(),
            home.recorder.clone(),
            home.fluorescent.clone(),
            home.floor_lamp.clone(),
            home.hall_light.clone(),
            home.thermometer.clone(),
            home.hygrometer.clone(),
            home.hall_lux.clone(),
            home.living_presence.clone(),
            home.hall_presence.clone(),
            home.entrance_door.clone(),
            home.alarm.clone(),
            home.tv_guide.clone(),
        ];
        for device in devices {
            registry
                .register(device)
                .expect("fresh registry has no UDN collisions");
        }
        home
    }
}

/// A minimal generic device used to populate large fleets for the E1
/// retrieval benchmark — the analogue of the paper's "50 instances of
/// virtual UPnP devices".
#[derive(Debug)]
pub struct GenericDevice {
    description: DeviceDescription,
}

impl GenericDevice {
    /// Creates a generic device with one service. `kind` selects the
    /// device/service type URNs so type-indexed searches have something
    /// to distinguish.
    pub fn new(udn: &str, friendly_name: &str, kind: &str) -> Arc<GenericDevice> {
        let description =
            DeviceDescription::new(udn, friendly_name, format!("urn:cadel:device:{kind}:1"))
                .with_service(
                    ServiceDescription::new(
                        format!("{udn}:svc"),
                        format!("urn:cadel:service:{kind}:1"),
                    )
                    .with_action(ActionSignature::new("Ping"))
                    .with_variable(
                        StateVariableSpec::new("online", ValueKind::Bool)
                            .with_default(Value::Bool(true)),
                    ),
                );
        Arc::new(GenericDevice { description })
    }
}

impl VirtualDevice for GenericDevice {
    fn description(&self) -> DeviceDescription {
        self.description.clone()
    }

    fn invoke(
        &self,
        action: &str,
        _args: &[(String, Value)],
        _at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        if action.eq_ignore_ascii_case("ping") {
            Ok(vec![("online".to_owned(), Value::Bool(true))])
        } else {
            Err(UpnpError::UnknownAction {
                device: self.description.udn().clone(),
                action: action.to_owned(),
            })
        }
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        if variable.eq_ignore_ascii_case("online") {
            Ok(Value::Bool(true))
        } else {
            Err(UpnpError::UnknownVariable {
                device: self.description.udn().clone(),
                variable: variable.to_owned(),
            })
        }
    }

    fn attach(&self, _publisher: EventPublisher) {}
}

/// The device kinds cycled through by [`install_virtual_fleet`].
pub const FLEET_KINDS: [&str; 5] = ["lamp", "sensor", "player", "appliance", "gadget"];

/// Registers `n` generic virtual devices (`virtual-0` … `virtual-{n-1}`)
/// cycling through [`FLEET_KINDS`]; returns their UDNs.
///
/// # Panics
///
/// Panics on UDN collision with already-registered devices.
pub fn install_virtual_fleet(registry: &Registry, n: usize) -> Vec<DeviceId> {
    (0..n)
        .map(|i| {
            let kind = FLEET_KINDS[i % FLEET_KINDS.len()];
            let device = GenericDevice::new(
                &format!("virtual-{i}"),
                &format!("Virtual Device {i}"),
                kind,
            );
            registry
                .register(device)
                .expect("virtual fleet UDNs are unique")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::PlaceId;

    #[test]
    fn living_room_home_registers_everything() {
        let registry = Registry::new();
        let home = LivingRoomHome::install(&registry);
        assert_eq!(registry.len(), 15);
        assert_eq!(
            registry.find_by_name("air conditioner"),
            vec![DeviceId::new("aircon-lr")]
        );
        assert_eq!(
            registry
                .find_by_location(&PlaceId::new("living room"))
                .len(),
            9
        );
        assert_eq!(registry.find_by_location(&PlaceId::new("hall")).len(), 5);
        // Devices are live: the TV answers queries through the registry.
        let tv = registry.device(&DeviceId::new("tv-lr")).unwrap();
        assert_eq!(tv.query("power").unwrap(), Value::Bool(false));
        let _ = home;
    }

    #[test]
    fn virtual_fleet_scales_and_indexes() {
        let registry = Registry::new();
        let udns = install_virtual_fleet(&registry, 50);
        assert_eq!(udns.len(), 50);
        assert_eq!(registry.len(), 50);
        assert_eq!(
            registry.find_by_name("virtual device 17"),
            vec![DeviceId::new("virtual-17")]
        );
        assert_eq!(
            registry
                .find_by_service_type("urn:cadel:service:lamp:1")
                .len(),
            10
        );
    }

    #[test]
    fn generic_device_ping() {
        let d = GenericDevice::new("g1", "G", "gadget");
        let out = d.invoke("Ping", &[], SimTime::EPOCH).unwrap();
        assert_eq!(out.len(), 1);
        assert!(d.invoke("Pong", &[], SimTime::EPOCH).is_err());
        assert_eq!(d.query("online").unwrap(), Value::Bool(true));
        assert!(d.query("offline").is_err());
    }
}
