//! Virtual information appliances and sensors for the CADEL framework.
//!
//! The paper's target environment (§3.1) is an ordinary living room with
//! "a stereo system, a flat-panel TV, a video recorder, a fluorescent
//! light, floor lamps, and an air conditioner", plus the sensors that make
//! its context observable. This crate implements each of those as a
//! [`cadel_upnp::VirtualDevice`] with a validated state machine, and
//! ships fixtures:
//!
//! * [`LivingRoomHome`] — the complete Fig.-1 environment, pre-registered.
//! * [`install_virtual_fleet`] — N generic devices for the E1 retrieval
//!   experiment ("50 instances of virtual UPnP devices").
//!
//! Sensors are *simulated*: scenario code drives them with `set_reading` /
//! `person_entered` / `announce`, and a drift model (`tick`) can move
//! readings gradually, which exercises the same property-change event path
//! a real sensor would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod av;
pub mod climate;
pub mod core;
pub mod fleet;
pub mod lighting;
pub mod security;

pub use av::{Stereo, Television, TvGuide, VideoRecorder};
pub use climate::{AirConditioner, EnvironmentSensor, Hygrometer, Thermometer};
pub use core::DeviceCore;
pub use fleet::{install_virtual_fleet, GenericDevice, LivingRoomHome, FLEET_KINDS};
pub use lighting::{Light, LightKind, LuxMeter};
pub use security::{Alarm, DoorLock, PresenceReader};
