//! Climate devices: air conditioner, thermometer, hygrometer.

use crate::core::DeviceCore;
use cadel_types::{Quantity, Rational, SimTime, Unit, Value, ValueKind};
use cadel_upnp::{
    ActionSignature, ArgSpec, DeviceDescription, EventPublisher, ServiceDescription,
    StateVariableSpec, UpnpError, VirtualDevice,
};
use std::sync::Arc;
use std::sync::Mutex;

/// Device type URN of air conditioners.
pub const AIRCON_DEVICE_TYPE: &str = "urn:cadel:device:aircon:1";
/// Service type URN of thermostat control.
pub const THERMOSTAT_SERVICE_TYPE: &str = "urn:cadel:service:thermostat:1";
/// Device type URN of temperature sensors.
pub const THERMOMETER_DEVICE_TYPE: &str = "urn:cadel:device:thermometer:1";
/// Service type URN of temperature sensing.
pub const TEMPERATURE_SERVICE_TYPE: &str = "urn:cadel:service:temperature:1";
/// Device type URN of humidity sensors.
pub const HYGROMETER_DEVICE_TYPE: &str = "urn:cadel:device:hygrometer:1";
/// Service type URN of humidity sensing.
pub const HUMIDITY_SERVICE_TYPE: &str = "urn:cadel:service:humidity:1";

/// A virtual air conditioner: power, temperature set-point (16–32 °C),
/// humidity target (30–90 %), mode (cool / heat / dehumidify).
#[derive(Debug)]
pub struct AirConditioner {
    core: DeviceCore,
}

impl AirConditioner {
    /// Creates an air conditioner with the given UDN, friendly name and
    /// location.
    pub fn new(udn: &str, friendly_name: &str, place: &str) -> Arc<AirConditioner> {
        let description = DeviceDescription::new(udn, friendly_name, AIRCON_DEVICE_TYPE)
            .at(place)
            .with_keywords(["temperature", "humidity", "cooling", "climate"])
            .with_service(
                ServiceDescription::new(format!("{udn}:thermostat"), THERMOSTAT_SERVICE_TYPE)
                    .with_action(
                        ActionSignature::new("TurnOn")
                            .with_arg(ArgSpec::input("temperature", ValueKind::Number))
                            .with_arg(ArgSpec::input("humidity", ValueKind::Number))
                            .with_arg(ArgSpec::input("mode", ValueKind::Text)),
                    )
                    .with_action(ActionSignature::new("TurnOff"))
                    .with_action(
                        ActionSignature::new("SetTemperature")
                            .with_arg(ArgSpec::input("temperature", ValueKind::Number)),
                    )
                    .with_action(
                        ActionSignature::new("SetHumidity")
                            .with_arg(ArgSpec::input("humidity", ValueKind::Number)),
                    )
                    .with_action(
                        ActionSignature::new("SetMode")
                            .with_arg(ArgSpec::input("mode", ValueKind::Text)),
                    )
                    .with_variable(
                        StateVariableSpec::new("power", ValueKind::Bool)
                            .with_default(Value::Bool(false)),
                    )
                    .with_variable(
                        StateVariableSpec::new("setpoint", ValueKind::Number)
                            .with_unit(Unit::Celsius)
                            .with_range(Rational::from_integer(16), Rational::from_integer(32))
                            .with_default(Value::Number(Quantity::from_integer(24, Unit::Celsius))),
                    )
                    .with_variable(
                        StateVariableSpec::new("humidity-target", ValueKind::Number)
                            .with_unit(Unit::Percent)
                            .with_range(Rational::from_integer(30), Rational::from_integer(90))
                            .with_default(Value::Number(Quantity::from_integer(60, Unit::Percent))),
                    )
                    .with_variable(
                        StateVariableSpec::new("mode", ValueKind::Text)
                            .with_allowed_values(["cool", "heat", "dehumidify"])
                            .with_default(Value::from("cool")),
                    ),
            );
        Arc::new(AirConditioner {
            core: DeviceCore::new(description),
        })
    }
}

impl VirtualDevice for AirConditioner {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        match action.to_ascii_lowercase().as_str() {
            "turnon" => {
                self.core.set("power", Value::Bool(true), at)?;
                // Optional settings piggybacked on TurnOn.
                if let Some(v) = DeviceCore::arg(args, "temperature") {
                    self.core.set("setpoint", v.clone(), at)?;
                }
                if let Some(v) = DeviceCore::arg(args, "humidity") {
                    self.core.set("humidity-target", v.clone(), at)?;
                }
                if let Some(v) = DeviceCore::arg(args, "mode") {
                    self.core.set("mode", v.clone(), at)?;
                }
                Ok(vec![])
            }
            "turnoff" => {
                self.core.set("power", Value::Bool(false), at)?;
                Ok(vec![])
            }
            "settemperature" => {
                let v = DeviceCore::arg(args, "temperature").ok_or_else(|| {
                    UpnpError::DeviceFault("SetTemperature requires 'temperature'".into())
                })?;
                self.core.set("setpoint", v.clone(), at)?;
                Ok(vec![])
            }
            "sethumidity" => {
                let v = DeviceCore::arg(args, "humidity").ok_or_else(|| {
                    UpnpError::DeviceFault("SetHumidity requires 'humidity'".into())
                })?;
                self.core.set("humidity-target", v.clone(), at)?;
                Ok(vec![])
            }
            "setmode" => {
                let v = DeviceCore::arg(args, "mode")
                    .ok_or_else(|| UpnpError::DeviceFault("SetMode requires 'mode'".into()))?;
                self.core.set("mode", v.clone(), at)?;
                Ok(vec![])
            }
            _ => Err(self.core.unknown_action(action)),
        }
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }
}

#[derive(Debug)]
struct SensorModel {
    /// Value the reading drifts toward (e.g. room conditions).
    target: Rational,
    /// Change per simulated minute while drifting.
    rate_per_minute: Rational,
    /// Last time `tick` updated the reading.
    last_tick: SimTime,
}

/// A numeric environmental sensor with a drift model, generic over its
/// measured quantity. [`Thermometer`] and [`Hygrometer`] are thin
/// wrappers.
#[derive(Debug)]
pub struct EnvironmentSensor {
    core: DeviceCore,
    variable: &'static str,
    unit: Unit,
    model: Mutex<SensorModel>,
}

impl EnvironmentSensor {
    #[allow(clippy::too_many_arguments)]
    fn new(
        udn: &str,
        friendly_name: &str,
        place: &str,
        device_type: &str,
        service_type: &str,
        variable: &'static str,
        unit: Unit,
        initial: i64,
        min: i64,
        max: i64,
        keywords: &[&str],
    ) -> Arc<EnvironmentSensor> {
        let description = DeviceDescription::new(udn, friendly_name, device_type)
            .at(place)
            .with_keywords(keywords.iter().copied())
            .with_service(
                ServiceDescription::new(format!("{udn}:sense"), service_type).with_variable(
                    StateVariableSpec::new(variable, ValueKind::Number)
                        .with_unit(unit)
                        .with_range(Rational::from_integer(min), Rational::from_integer(max))
                        .with_default(Value::Number(Quantity::from_integer(initial, unit))),
                ),
            );
        Arc::new(EnvironmentSensor {
            core: DeviceCore::new(description),
            variable,
            unit,
            model: Mutex::new(SensorModel {
                target: Rational::from_integer(initial),
                rate_per_minute: Rational::new(1, 2),
                last_tick: SimTime::EPOCH,
            }),
        })
    }

    /// Forces the reading to an exact value (scenario scripting).
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::RangeViolation`] outside the declared range.
    pub fn set_reading(&self, value: Rational, at: SimTime) -> Result<(), UpnpError> {
        self.model.lock().unwrap().last_tick = at;
        self.core.set(
            self.variable,
            Value::Number(Quantity::new(value, self.unit)),
            at,
        )?;
        Ok(())
    }

    /// Sets the drift target: the reading moves toward it on `tick`.
    pub fn set_target(&self, target: Rational, rate_per_minute: Rational) {
        let mut model = self.model.lock().unwrap();
        model.target = target;
        model.rate_per_minute = rate_per_minute;
    }

    /// The current reading.
    pub fn reading(&self) -> Quantity {
        match self.core.get(self.variable) {
            Ok(Value::Number(q)) => q,
            _ => Quantity::new(Rational::ZERO, self.unit),
        }
    }
}

impl VirtualDevice for EnvironmentSensor {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        _args: &[(String, Value)],
        _at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        Err(self.core.unknown_action(action))
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }

    fn tick(&self, now: SimTime) {
        let (target, step) = {
            let mut model = self.model.lock().unwrap();
            let elapsed_min = now.since(model.last_tick).as_minutes();
            if elapsed_min == 0 {
                return;
            }
            model.last_tick = now;
            let step = model
                .rate_per_minute
                .checked_mul(Rational::from_integer(elapsed_min as i64))
                .unwrap_or(Rational::ZERO);
            (model.target, step)
        };
        let current = self.reading().value();
        let next = if current < target {
            (current + step).min(target)
        } else if current > target {
            (current - step).max(target)
        } else {
            return;
        };
        let _ = self.set_reading(next, now);
    }
}

/// A virtual thermometer (temperature in °C, −20…60).
pub struct Thermometer;

impl Thermometer {
    /// Creates a thermometer reading `initial` °C.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(
        udn: &str,
        friendly_name: &str,
        place: &str,
        initial: i64,
    ) -> Arc<EnvironmentSensor> {
        EnvironmentSensor::new(
            udn,
            friendly_name,
            place,
            THERMOMETER_DEVICE_TYPE,
            TEMPERATURE_SERVICE_TYPE,
            "temperature",
            Unit::Celsius,
            initial,
            -20,
            60,
            &["temperature", "climate"],
        )
    }
}

/// A virtual hygrometer (relative humidity in %, 0…100).
pub struct Hygrometer;

impl Hygrometer {
    /// Creates a hygrometer reading `initial` %.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(
        udn: &str,
        friendly_name: &str,
        place: &str,
        initial: i64,
    ) -> Arc<EnvironmentSensor> {
        EnvironmentSensor::new(
            udn,
            friendly_name,
            place,
            HYGROMETER_DEVICE_TYPE,
            HUMIDITY_SERVICE_TYPE,
            "humidity",
            Unit::Percent,
            initial,
            0,
            100,
            &["humidity", "climate"],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::SimDuration;
    use cadel_upnp::Registry;

    #[test]
    fn aircon_turn_on_with_settings() {
        let registry = Registry::new();
        let aircon = AirConditioner::new("ac-1", "Air Conditioner", "living room");
        registry.register(aircon.clone()).unwrap();
        let t = SimTime::EPOCH;
        aircon
            .invoke(
                "TurnOn",
                &[
                    (
                        "temperature".into(),
                        Value::Number(Quantity::from_integer(25, Unit::Celsius)),
                    ),
                    (
                        "humidity".into(),
                        Value::Number(Quantity::from_integer(60, Unit::Percent)),
                    ),
                ],
                t,
            )
            .unwrap();
        assert_eq!(aircon.query("power").unwrap(), Value::Bool(true));
        assert_eq!(
            aircon.query("setpoint").unwrap(),
            Value::Number(Quantity::from_integer(25, Unit::Celsius))
        );
        assert_eq!(
            aircon.query("humidity-target").unwrap(),
            Value::Number(Quantity::from_integer(60, Unit::Percent))
        );
    }

    #[test]
    fn aircon_rejects_out_of_range_setpoint() {
        let aircon = AirConditioner::new("ac-1", "AC", "x");
        let err = aircon
            .invoke(
                "SetTemperature",
                &[(
                    "temperature".into(),
                    Value::Number(Quantity::from_integer(50, Unit::Celsius)),
                )],
                SimTime::EPOCH,
            )
            .unwrap_err();
        assert!(matches!(err, UpnpError::RangeViolation { .. }));
    }

    #[test]
    fn aircon_mode_validation() {
        let aircon = AirConditioner::new("ac-1", "AC", "x");
        aircon
            .invoke(
                "SetMode",
                &[("mode".into(), Value::from("dehumidify"))],
                SimTime::EPOCH,
            )
            .unwrap();
        assert!(aircon
            .invoke(
                "SetMode",
                &[("mode".into(), Value::from("party"))],
                SimTime::EPOCH,
            )
            .is_err());
        assert!(aircon.invoke("Fly", &[], SimTime::EPOCH).is_err());
    }

    #[test]
    fn thermometer_reading_and_events() {
        let registry = Registry::new();
        let thermo = Thermometer::new("th-1", "Thermometer", "living room", 22);
        registry.register(thermo.clone()).unwrap();
        let sub = registry.event_bus().subscribe(None);
        thermo
            .set_reading(Rational::from_integer(27), SimTime::EPOCH)
            .unwrap();
        assert_eq!(thermo.reading(), Quantity::from_integer(27, Unit::Celsius));
        let changes = sub.drain();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].variable, "temperature");
    }

    #[test]
    fn sensor_drift_moves_toward_target() {
        let thermo = Thermometer::new("th-1", "T", "x", 20);
        thermo.set_target(Rational::from_integer(30), Rational::ONE);
        // After 4 minutes at 1°/min: 24°.
        thermo.tick(SimTime::EPOCH + SimDuration::from_minutes(4));
        assert_eq!(thermo.reading().value(), Rational::from_integer(24));
        // Long tick saturates at the target, not beyond.
        thermo.tick(SimTime::EPOCH + SimDuration::from_minutes(60));
        assert_eq!(thermo.reading().value(), Rational::from_integer(30));
    }

    #[test]
    fn sensor_drift_downward() {
        let hygro = Hygrometer::new("hy-1", "H", "x", 80);
        hygro.set_target(Rational::from_integer(60), Rational::from_integer(5));
        hygro.tick(SimTime::EPOCH + SimDuration::from_minutes(2));
        assert_eq!(hygro.reading().value(), Rational::from_integer(70));
    }

    #[test]
    fn sensor_rejects_out_of_range_reading() {
        let hygro = Hygrometer::new("hy-1", "H", "x", 50);
        assert!(hygro
            .set_reading(Rational::from_integer(150), SimTime::EPOCH)
            .is_err());
    }

    #[test]
    fn sensors_have_no_actions() {
        let thermo = Thermometer::new("th-1", "T", "x", 20);
        assert!(matches!(
            thermo.invoke("Calibrate", &[], SimTime::EPOCH),
            Err(UpnpError::UnknownAction { .. })
        ));
    }
}
