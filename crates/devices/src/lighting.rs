//! Lighting devices: dimmable lights and the lux meter.

use crate::core::DeviceCore;
use cadel_types::{Quantity, Rational, SimTime, Unit, Value, ValueKind};
use cadel_upnp::{
    ActionSignature, ArgSpec, DeviceDescription, EventPublisher, ServiceDescription,
    StateVariableSpec, UpnpError, VirtualDevice,
};
use std::sync::Arc;

/// Device type URN of lights.
pub const LIGHT_DEVICE_TYPE: &str = "urn:cadel:device:light:1";
/// Service type URN of dimmable lighting.
pub const LIGHTING_SERVICE_TYPE: &str = "urn:cadel:service:lighting:1";
/// Device type URN of lux meters.
pub const LUXMETER_DEVICE_TYPE: &str = "urn:cadel:device:luxmeter:1";
/// Service type URN of illuminance sensing.
pub const ILLUMINANCE_SERVICE_TYPE: &str = "urn:cadel:service:illuminance:1";

/// What kind of luminaire a [`Light`] is — affects only its keywords and
/// default brightness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LightKind {
    /// A ceiling fluorescent light (defaults bright).
    Fluorescent,
    /// A floor lamp (defaults to soft indirect light).
    FloorLamp,
}

/// A dimmable light.
#[derive(Debug)]
pub struct Light {
    core: DeviceCore,
}

impl Light {
    /// Creates a light of the given kind.
    pub fn new(udn: &str, friendly_name: &str, place: &str, kind: LightKind) -> Arc<Light> {
        let (keyword, default_brightness) = match kind {
            LightKind::Fluorescent => ("fluorescent", 100),
            LightKind::FloorLamp => ("lamp", 50),
        };
        let description = DeviceDescription::new(udn, friendly_name, LIGHT_DEVICE_TYPE)
            .at(place)
            .with_keywords(["light", "lighting", "illuminance", keyword])
            .with_service(
                ServiceDescription::new(format!("{udn}:light"), LIGHTING_SERVICE_TYPE)
                    .with_action(
                        ActionSignature::new("TurnOn")
                            .with_arg(ArgSpec::input("brightness", ValueKind::Number)),
                    )
                    .with_action(ActionSignature::new("TurnOff"))
                    .with_action(ActionSignature::new("Dim"))
                    .with_action(ActionSignature::new("Brighten"))
                    .with_action(
                        ActionSignature::new("SetBrightness")
                            .with_arg(ArgSpec::input("brightness", ValueKind::Number)),
                    )
                    .with_variable(
                        StateVariableSpec::new("power", ValueKind::Bool)
                            .with_default(Value::Bool(false)),
                    )
                    .with_variable(
                        StateVariableSpec::new("brightness", ValueKind::Number)
                            .with_unit(Unit::Percent)
                            .with_range(Rational::ZERO, Rational::from_integer(100))
                            .with_default(Value::Number(Quantity::from_integer(
                                default_brightness,
                                Unit::Percent,
                            ))),
                    ),
            );
        Arc::new(Light {
            core: DeviceCore::new(description),
        })
    }
}

impl VirtualDevice for Light {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        match action.to_ascii_lowercase().as_str() {
            "turnon" => {
                self.core.set("power", Value::Bool(true), at)?;
                if let Some(v) = DeviceCore::arg(args, "brightness") {
                    self.core.set("brightness", v.clone(), at)?;
                }
                Ok(vec![])
            }
            "turnoff" => {
                self.core.set("power", Value::Bool(false), at)?;
                Ok(vec![])
            }
            "dim" => {
                self.core.set("power", Value::Bool(true), at)?;
                self.core.set(
                    "brightness",
                    Value::Number(Quantity::from_integer(30, Unit::Percent)),
                    at,
                )?;
                Ok(vec![])
            }
            "brighten" => {
                self.core.set("power", Value::Bool(true), at)?;
                self.core.set(
                    "brightness",
                    Value::Number(Quantity::from_integer(100, Unit::Percent)),
                    at,
                )?;
                Ok(vec![])
            }
            "setbrightness" => {
                let v = DeviceCore::arg(args, "brightness").ok_or_else(|| {
                    UpnpError::DeviceFault("SetBrightness requires 'brightness'".into())
                })?;
                self.core.set("brightness", v.clone(), at)?;
                Ok(vec![])
            }
            _ => Err(self.core.unknown_action(action)),
        }
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }
}

/// An illuminance sensor (lux meter) — provides the ambient reading
/// behind "the hall is dark".
#[derive(Debug)]
pub struct LuxMeter {
    core: DeviceCore,
}

impl LuxMeter {
    /// Creates a lux meter reading `initial` lx.
    pub fn new(udn: &str, friendly_name: &str, place: &str, initial: i64) -> Arc<LuxMeter> {
        let description = DeviceDescription::new(udn, friendly_name, LUXMETER_DEVICE_TYPE)
            .at(place)
            .with_keywords(["illuminance", "light", "brightness"])
            .with_service(
                ServiceDescription::new(format!("{udn}:sense"), ILLUMINANCE_SERVICE_TYPE)
                    .with_variable(
                        StateVariableSpec::new("illuminance", ValueKind::Number)
                            .with_unit(Unit::Lux)
                            .with_range(Rational::ZERO, Rational::from_integer(100_000))
                            .with_default(Value::Number(Quantity::from_integer(
                                initial,
                                Unit::Lux,
                            ))),
                    ),
            );
        Arc::new(LuxMeter {
            core: DeviceCore::new(description),
        })
    }

    /// Forces the illuminance reading.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::RangeViolation`] outside 0–100,000 lx.
    pub fn set_reading(&self, lux: Rational, at: SimTime) -> Result<(), UpnpError> {
        self.core.set(
            "illuminance",
            Value::Number(Quantity::new(lux, Unit::Lux)),
            at,
        )?;
        Ok(())
    }
}

impl VirtualDevice for LuxMeter {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        _args: &[(String, Value)],
        _at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        Err(self.core.unknown_action(action))
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_and_brighten_presets() {
        let light = Light::new("l1", "Floor Lamp", "living room", LightKind::FloorLamp);
        let t = SimTime::EPOCH;
        light.invoke("Dim", &[], t).unwrap();
        assert_eq!(light.query("power").unwrap(), Value::Bool(true));
        assert_eq!(
            light.query("brightness").unwrap(),
            Value::Number(Quantity::from_integer(30, Unit::Percent))
        );
        light.invoke("Brighten", &[], t).unwrap();
        assert_eq!(
            light.query("brightness").unwrap(),
            Value::Number(Quantity::from_integer(100, Unit::Percent))
        );
    }

    #[test]
    fn turn_on_with_brightness() {
        let light = Light::new("l1", "Light", "hall", LightKind::Fluorescent);
        light
            .invoke(
                "TurnOn",
                &[(
                    "brightness".into(),
                    Value::Number(Quantity::from_integer(50, Unit::Percent)),
                )],
                SimTime::EPOCH,
            )
            .unwrap();
        assert_eq!(
            light.query("brightness").unwrap(),
            Value::Number(Quantity::from_integer(50, Unit::Percent))
        );
    }

    #[test]
    fn brightness_range_enforced() {
        let light = Light::new("l1", "Light", "hall", LightKind::Fluorescent);
        assert!(light
            .invoke(
                "SetBrightness",
                &[(
                    "brightness".into(),
                    Value::Number(Quantity::from_integer(150, Unit::Percent)),
                )],
                SimTime::EPOCH,
            )
            .is_err());
    }

    #[test]
    fn lux_meter_reading() {
        let lux = LuxMeter::new("lx-1", "Hall Lux", "hall", 400);
        lux.set_reading(Rational::from_integer(50), SimTime::EPOCH)
            .unwrap();
        assert_eq!(
            lux.query("illuminance").unwrap(),
            Value::Number(Quantity::from_integer(50, Unit::Lux))
        );
        assert!(lux
            .set_reading(Rational::from_integer(-5), SimTime::EPOCH)
            .is_err());
    }
}
