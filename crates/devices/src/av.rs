//! Audio/visual appliances: TV, stereo, video recorder, and the TV guide
//! (EPG) event source.

use crate::core::DeviceCore;
use cadel_types::{Quantity, Rational, SimTime, Unit, Value, ValueKind};
use cadel_upnp::{
    ActionSignature, ArgSpec, DeviceDescription, EventPublisher, ServiceDescription,
    StateVariableSpec, UpnpError, VirtualDevice,
};
use std::sync::Arc;

/// Device type URN of televisions.
pub const TV_DEVICE_TYPE: &str = "urn:cadel:device:tv:1";
/// Service type URN of AV playback control.
pub const AV_SERVICE_TYPE: &str = "urn:cadel:service:av:1";
/// Device type URN of stereos.
pub const STEREO_DEVICE_TYPE: &str = "urn:cadel:device:stereo:1";
/// Device type URN of video recorders.
pub const RECORDER_DEVICE_TYPE: &str = "urn:cadel:device:recorder:1";
/// Device type URN of the TV guide.
pub const TV_GUIDE_DEVICE_TYPE: &str = "urn:cadel:device:tvguide:1";
/// Service type URN of program announcements.
pub const EPG_SERVICE_TYPE: &str = "urn:cadel:service:epg:1";

fn percent_var(name: &str, default: i64) -> StateVariableSpec {
    StateVariableSpec::new(name, ValueKind::Number)
        .with_unit(Unit::Percent)
        .with_range(Rational::ZERO, Rational::from_integer(100))
        .with_default(Value::Number(Quantity::from_integer(
            default,
            Unit::Percent,
        )))
}

/// A virtual television: power, channel, volume, message overlay and the
/// currently displayed content.
#[derive(Debug)]
pub struct Television {
    core: DeviceCore,
}

impl Television {
    /// Creates a TV.
    pub fn new(udn: &str, friendly_name: &str, place: &str) -> Arc<Television> {
        let description = DeviceDescription::new(udn, friendly_name, TV_DEVICE_TYPE)
            .at(place)
            .with_keywords(["video", "program", "entertainment", "screen"])
            .with_service(
                ServiceDescription::new(format!("{udn}:av"), AV_SERVICE_TYPE)
                    .with_action(
                        ActionSignature::new("TurnOn")
                            .with_arg(ArgSpec::input("channel", ValueKind::Number))
                            .with_arg(ArgSpec::input("volume", ValueKind::Number))
                            .with_arg(ArgSpec::input("content", ValueKind::Text)),
                    )
                    .with_action(ActionSignature::new("TurnOff"))
                    .with_action(
                        ActionSignature::new("SetChannel")
                            .with_arg(ArgSpec::input("channel", ValueKind::Number)),
                    )
                    .with_action(
                        ActionSignature::new("SetVolume")
                            .with_arg(ArgSpec::input("volume", ValueKind::Number)),
                    )
                    .with_action(
                        ActionSignature::new("Show")
                            .with_arg(ArgSpec::input("content", ValueKind::Text)),
                    )
                    .with_action(
                        ActionSignature::new("Notify")
                            .with_arg(ArgSpec::input("content", ValueKind::Text)),
                    )
                    .with_variable(
                        StateVariableSpec::new("power", ValueKind::Bool)
                            .with_default(Value::Bool(false)),
                    )
                    .with_variable(
                        StateVariableSpec::new("channel", ValueKind::Number)
                            .with_range(Rational::ONE, Rational::from_integer(999))
                            .with_default(Value::Number(Quantity::from_integer(1, Unit::Count))),
                    )
                    .with_variable(percent_var("volume", 40))
                    .with_variable(
                        StateVariableSpec::new("content", ValueKind::Text)
                            .with_default(Value::from("")),
                    )
                    .with_variable(
                        StateVariableSpec::new("message", ValueKind::Text)
                            .with_default(Value::from("")),
                    ),
            );
        Arc::new(Television {
            core: DeviceCore::new(description),
        })
    }
}

impl VirtualDevice for Television {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        match action.to_ascii_lowercase().as_str() {
            "turnon" => {
                self.core.set("power", Value::Bool(true), at)?;
                if let Some(v) = DeviceCore::arg(args, "channel") {
                    self.core.set("channel", v.clone(), at)?;
                }
                if let Some(v) = DeviceCore::arg(args, "volume") {
                    self.core.set("volume", v.clone(), at)?;
                }
                if let Some(v) = DeviceCore::arg(args, "content") {
                    self.core.set("content", v.clone(), at)?;
                }
                Ok(vec![])
            }
            "turnoff" => {
                self.core.set("power", Value::Bool(false), at)?;
                self.core.set("content", Value::from(""), at)?;
                Ok(vec![])
            }
            "setchannel" => {
                let v = DeviceCore::arg(args, "channel").ok_or_else(|| {
                    UpnpError::DeviceFault("SetChannel requires 'channel'".into())
                })?;
                self.core.set("channel", v.clone(), at)?;
                Ok(vec![])
            }
            "setvolume" => {
                let v = DeviceCore::arg(args, "volume")
                    .ok_or_else(|| UpnpError::DeviceFault("SetVolume requires 'volume'".into()))?;
                self.core.set("volume", v.clone(), at)?;
                Ok(vec![])
            }
            "show" => {
                if self.core.get("power")? != Value::Bool(true) {
                    self.core.set("power", Value::Bool(true), at)?;
                }
                let v = DeviceCore::arg(args, "content")
                    .ok_or_else(|| UpnpError::DeviceFault("Show requires 'content'".into()))?;
                self.core.set("content", v.clone(), at)?;
                Ok(vec![])
            }
            "notify" => {
                let v = DeviceCore::arg(args, "content")
                    .ok_or_else(|| UpnpError::DeviceFault("Notify requires 'content'".into()))?;
                self.core.set("message", v.clone(), at)?;
                Ok(vec![])
            }
            _ => Err(self.core.unknown_action(action)),
        }
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }
}

/// A virtual stereo system: power, volume, playing flag and current
/// content (e.g. "jazz music" or a movie soundtrack).
#[derive(Debug)]
pub struct Stereo {
    core: DeviceCore,
}

impl Stereo {
    /// Creates a stereo.
    pub fn new(udn: &str, friendly_name: &str, place: &str) -> Arc<Stereo> {
        let description = DeviceDescription::new(udn, friendly_name, STEREO_DEVICE_TYPE)
            .at(place)
            .with_keywords(["music", "audio", "entertainment"])
            .with_service(
                ServiceDescription::new(format!("{udn}:av"), AV_SERVICE_TYPE)
                    .with_action(
                        ActionSignature::new("TurnOn")
                            .with_arg(ArgSpec::input("volume", ValueKind::Number))
                            .with_arg(ArgSpec::input("content", ValueKind::Text)),
                    )
                    .with_action(ActionSignature::new("TurnOff"))
                    .with_action(
                        ActionSignature::new("Play")
                            .with_arg(ArgSpec::input("content", ValueKind::Text)),
                    )
                    .with_action(ActionSignature::new("Stop"))
                    .with_action(
                        ActionSignature::new("SetVolume")
                            .with_arg(ArgSpec::input("volume", ValueKind::Number)),
                    )
                    .with_variable(
                        StateVariableSpec::new("power", ValueKind::Bool)
                            .with_default(Value::Bool(false)),
                    )
                    .with_variable(
                        StateVariableSpec::new("playing", ValueKind::Bool)
                            .with_default(Value::Bool(false)),
                    )
                    .with_variable(percent_var("volume", 30))
                    .with_variable(
                        StateVariableSpec::new("content", ValueKind::Text)
                            .with_default(Value::from("")),
                    ),
            );
        Arc::new(Stereo {
            core: DeviceCore::new(description),
        })
    }
}

impl VirtualDevice for Stereo {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        match action.to_ascii_lowercase().as_str() {
            "turnon" => {
                self.core.set("power", Value::Bool(true), at)?;
                if let Some(v) = DeviceCore::arg(args, "volume") {
                    self.core.set("volume", v.clone(), at)?;
                }
                if let Some(v) = DeviceCore::arg(args, "content") {
                    self.core.set("content", v.clone(), at)?;
                    self.core.set("playing", Value::Bool(true), at)?;
                }
                Ok(vec![])
            }
            "turnoff" => {
                self.core.set("playing", Value::Bool(false), at)?;
                self.core.set("power", Value::Bool(false), at)?;
                Ok(vec![])
            }
            "play" => {
                self.core.set("power", Value::Bool(true), at)?;
                if let Some(v) = DeviceCore::arg(args, "content") {
                    self.core.set("content", v.clone(), at)?;
                }
                self.core.set("playing", Value::Bool(true), at)?;
                Ok(vec![])
            }
            "stop" => {
                self.core.set("playing", Value::Bool(false), at)?;
                Ok(vec![])
            }
            "setvolume" => {
                let v = DeviceCore::arg(args, "volume")
                    .ok_or_else(|| UpnpError::DeviceFault("SetVolume requires 'volume'".into()))?;
                self.core.set("volume", v.clone(), at)?;
                Ok(vec![])
            }
            _ => Err(self.core.unknown_action(action)),
        }
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }
}

/// A virtual video recorder: records a named program.
#[derive(Debug)]
pub struct VideoRecorder {
    core: DeviceCore,
}

impl VideoRecorder {
    /// Creates a video recorder.
    pub fn new(udn: &str, friendly_name: &str, place: &str) -> Arc<VideoRecorder> {
        let description = DeviceDescription::new(udn, friendly_name, RECORDER_DEVICE_TYPE)
            .at(place)
            .with_keywords(["video", "recording", "program"])
            .with_service(
                ServiceDescription::new(format!("{udn}:av"), AV_SERVICE_TYPE)
                    .with_action(ActionSignature::new("TurnOn"))
                    .with_action(ActionSignature::new("TurnOff"))
                    .with_action(
                        ActionSignature::new("Record")
                            .with_arg(ArgSpec::input("content", ValueKind::Text)),
                    )
                    .with_action(ActionSignature::new("Stop"))
                    .with_variable(
                        StateVariableSpec::new("power", ValueKind::Bool)
                            .with_default(Value::Bool(false)),
                    )
                    .with_variable(
                        StateVariableSpec::new("recording", ValueKind::Bool)
                            .with_default(Value::Bool(false)),
                    )
                    .with_variable(
                        StateVariableSpec::new("content", ValueKind::Text)
                            .with_default(Value::from("")),
                    ),
            );
        Arc::new(VideoRecorder {
            core: DeviceCore::new(description),
        })
    }
}

impl VirtualDevice for VideoRecorder {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        match action.to_ascii_lowercase().as_str() {
            "turnon" => {
                self.core.set("power", Value::Bool(true), at)?;
                Ok(vec![])
            }
            "turnoff" => {
                self.core.set("recording", Value::Bool(false), at)?;
                self.core.set("power", Value::Bool(false), at)?;
                Ok(vec![])
            }
            "record" => {
                self.core.set("power", Value::Bool(true), at)?;
                if let Some(v) = DeviceCore::arg(args, "content") {
                    self.core.set("content", v.clone(), at)?;
                }
                self.core.set("recording", Value::Bool(true), at)?;
                Ok(vec![])
            }
            "stop" => {
                self.core.set("recording", Value::Bool(false), at)?;
                Ok(vec![])
            }
            _ => Err(self.core.unknown_action(action)),
        }
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }
}

/// The TV guide (EPG): announces which program is currently on air.
///
/// The engine listens for changes of the `on-air` variable and turns them
/// into broadcast event facts (`tv-guide:<program>`), which is what
/// conditions like "when a baseball game is on air" test.
#[derive(Debug)]
pub struct TvGuide {
    core: DeviceCore,
    programs: std::sync::Mutex<std::collections::BTreeSet<String>>,
}

impl TvGuide {
    /// Creates the TV guide source.
    pub fn new(udn: &str) -> Arc<TvGuide> {
        let description = DeviceDescription::new(udn, "TV Guide", TV_GUIDE_DEVICE_TYPE)
            .with_keywords(["program", "broadcast", "epg"])
            .with_service(
                ServiceDescription::new(format!("{udn}:epg"), EPG_SERVICE_TYPE).with_variable(
                    StateVariableSpec::new("on-air", ValueKind::Text).with_default(Value::from("")),
                ),
            );
        Arc::new(TvGuide {
            core: DeviceCore::new(description),
            programs: std::sync::Mutex::new(std::collections::BTreeSet::new()),
        })
    }

    fn publish(&self, at: SimTime) {
        let list = self
            .programs
            .lock()
            .unwrap()
            .iter()
            .cloned()
            .collect::<Vec<_>>()
            .join(";");
        let _ = self.core.set("on-air", Value::from(list), at);
    }

    /// Announces that `program` is now the *only* thing on air (empty
    /// string = nothing). Replaces any running programs.
    pub fn announce(&self, program: &str, at: SimTime) {
        {
            let mut programs = self.programs.lock().unwrap();
            programs.clear();
            if !program.is_empty() {
                programs.insert(program.to_ascii_lowercase());
            }
        }
        self.publish(at);
    }

    /// Starts an additional program (several channels can be on air at
    /// once).
    pub fn start_program(&self, program: &str, at: SimTime) {
        self.programs
            .lock()
            .unwrap()
            .insert(program.to_ascii_lowercase());
        self.publish(at);
    }

    /// Ends a running program.
    pub fn end_program(&self, program: &str, at: SimTime) {
        self.programs
            .lock()
            .unwrap()
            .remove(&program.to_ascii_lowercase());
        self.publish(at);
    }

    /// The first program currently on air, if any (convenience for the
    /// single-program case).
    pub fn on_air(&self) -> Option<String> {
        self.programs.lock().unwrap().iter().next().cloned()
    }

    /// All programs currently on air.
    pub fn programs_on_air(&self) -> Vec<String> {
        self.programs.lock().unwrap().iter().cloned().collect()
    }
}

impl VirtualDevice for TvGuide {
    fn description(&self) -> DeviceDescription {
        self.core.description().clone()
    }

    fn invoke(
        &self,
        action: &str,
        _args: &[(String, Value)],
        _at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        Err(self.core.unknown_action(action))
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.core.get(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        self.core.attach(publisher);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_upnp::Registry;

    #[test]
    fn tv_state_machine() {
        let tv = Television::new("tv-1", "TV", "living room");
        let t = SimTime::EPOCH;
        tv.invoke(
            "TurnOn",
            &[(
                "channel".into(),
                Value::Number(Quantity::from_integer(4, Unit::Count)),
            )],
            t,
        )
        .unwrap();
        assert_eq!(tv.query("power").unwrap(), Value::Bool(true));
        assert_eq!(
            tv.query("channel").unwrap(),
            Value::Number(Quantity::from_integer(4, Unit::Count))
        );
        tv.invoke(
            "Show",
            &[("content".into(), Value::from("baseball game"))],
            t,
        )
        .unwrap();
        assert_eq!(tv.query("content").unwrap(), Value::from("baseball game"));
        tv.invoke("TurnOff", &[], t).unwrap();
        assert_eq!(tv.query("power").unwrap(), Value::Bool(false));
        assert_eq!(tv.query("content").unwrap(), Value::from(""));
    }

    #[test]
    fn tv_show_powers_on_automatically() {
        let tv = Television::new("tv-1", "TV", "x");
        tv.invoke(
            "Show",
            &[("content".into(), Value::from("movie"))],
            SimTime::EPOCH,
        )
        .unwrap();
        assert_eq!(tv.query("power").unwrap(), Value::Bool(true));
    }

    #[test]
    fn tv_channel_range() {
        let tv = Television::new("tv-1", "TV", "x");
        assert!(tv
            .invoke(
                "SetChannel",
                &[(
                    "channel".into(),
                    Value::Number(Quantity::from_integer(0, Unit::Count)),
                )],
                SimTime::EPOCH,
            )
            .is_err());
    }

    #[test]
    fn stereo_play_stop() {
        let stereo = Stereo::new("st-1", "Stereo", "living room");
        let t = SimTime::EPOCH;
        stereo
            .invoke("Play", &[("content".into(), Value::from("jazz music"))], t)
            .unwrap();
        assert_eq!(stereo.query("playing").unwrap(), Value::Bool(true));
        assert_eq!(stereo.query("power").unwrap(), Value::Bool(true));
        assert_eq!(stereo.query("content").unwrap(), Value::from("jazz music"));
        stereo.invoke("Stop", &[], t).unwrap();
        assert_eq!(stereo.query("playing").unwrap(), Value::Bool(false));
        assert_eq!(stereo.query("power").unwrap(), Value::Bool(true));
    }

    #[test]
    fn recorder_records_named_program() {
        let vcr = VideoRecorder::new("vcr-1", "Video Recorder", "living room");
        let t = SimTime::EPOCH;
        vcr.invoke(
            "Record",
            &[("content".into(), Value::from("baseball game"))],
            t,
        )
        .unwrap();
        assert_eq!(vcr.query("recording").unwrap(), Value::Bool(true));
        assert_eq!(vcr.query("power").unwrap(), Value::Bool(true));
        assert_eq!(vcr.query("content").unwrap(), Value::from("baseball game"));
        vcr.invoke("Stop", &[], t).unwrap();
        assert_eq!(vcr.query("recording").unwrap(), Value::Bool(false));
    }

    #[test]
    fn tv_guide_announces_programs() {
        let registry = Registry::new();
        let guide = TvGuide::new("epg-1");
        registry.register(guide.clone()).unwrap();
        let sub = registry.event_bus().subscribe(None);
        assert_eq!(guide.on_air(), None);
        guide.announce("baseball game", SimTime::EPOCH);
        assert_eq!(guide.on_air(), Some("baseball game".to_owned()));
        let changes = sub.drain();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].variable, "on-air");
        guide.announce("", SimTime::EPOCH);
        assert_eq!(guide.on_air(), None);
    }
}
