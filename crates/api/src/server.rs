//! The frontend runtime: accept loop, per-connection supervision,
//! request routing, event-stream fan-out, and graceful drain.
//!
//! Threading model: one accept thread plus one thread per open
//! connection, bounded by [`ApiConfig::max_connections`]. The fleet
//! itself lives behind a single mutex — fleet waves are already
//! internally parallel ([`cadel_fleet::FleetConfig::workers`]), so the
//! frontend serialises *admission* and lets the wave do the heavy
//! lifting. Every boundary is governed: socket deadlines bound reads
//! and writes, a wall-clock budget bounds each request, hostile frames
//! map to typed errors, overload maps to `503` + `Retry-After`, and a
//! panic in a handler is caught, counted, and answered with `500` —
//! it never takes the connection loop (let alone the process) down.

use crate::config::ApiConfig;
use crate::http::{Method, ParseError, Request, Response, WireLimits, WireReader};
use crate::limit::RateLimiter;
use crate::proto::{self, BadRequest};
use cadel_fleet::{Admission, Fleet, FleetError, FleetStepReport, ShutdownReport, TenantState};
use cadel_obs::net::{
    API_CONNECTIONS_OPEN, API_CONNECTIONS_TOTAL, API_EVENTS_DROPPED_TOTAL, API_PARSE_ERRORS_TOTAL,
    API_RATE_LIMITED_TOTAL, API_REQUESTS_TOTAL, API_REQUEST_NS, API_SHED_TOTAL,
    API_SUBSCRIBERS_OPEN, API_TIMEOUTS_TOTAL, API_WORKER_PANICS_TOTAL,
};
use cadel_obs::{Event, Level, Stopwatch};
use cadel_server::{ServerError, SubmitOutcome};
use cadel_types::json::Json;
use cadel_types::{RuleId, SimTime};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// One event-stream subscriber: a bounded channel the publisher feeds
/// with `try_send` (a stalled reader drops frames, never blocks a
/// wave).
struct Subscriber {
    id: u64,
    tenant: Option<String>,
    tx: SyncSender<String>,
}

/// State shared between the accept thread, connection threads, and the
/// owning handle.
struct Shared {
    fleet: Mutex<Fleet>,
    config: ApiConfig,
    limiter: Option<RateLimiter>,
    open_conns: AtomicUsize,
    draining: AtomicBool,
    subs: Mutex<Vec<Subscriber>>,
    sub_seq: AtomicU64,
}

impl Shared {
    fn fleet(&self) -> MutexGuard<'_, Fleet> {
        // A poisoned mutex means a panic escaped while holding the
        // fleet — the guarded section is itself panic-supervised by the
        // fleet, so recover the guard rather than cascading.
        match self.fleet.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn subs(&self) -> MutexGuard<'_, Vec<Subscriber>> {
        match self.subs.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Fans a completed wave out to matching subscribers. Uses
    /// `try_send`: a subscriber whose queue is full loses frames
    /// (counted in `api_events_dropped_total`), the publisher never
    /// waits.
    fn broadcast_wave(&self, now: SimTime, report: &FleetStepReport) {
        let subs = self.subs();
        if subs.is_empty() {
            return;
        }
        for outcome in &report.outcomes {
            let mut frames: Vec<String> = Vec::new();
            if let Some(step) = &outcome.report {
                for firing in step.dispatched() {
                    frames.push(format!(
                        "NOTIFY at={now} tenant={} {firing}",
                        outcome.tenant
                    ));
                }
                for (rule, device) in &step.releases {
                    frames.push(format!(
                        "NOTIFY at={now} tenant={} {rule} released {device}",
                        outcome.tenant
                    ));
                }
            }
            if !outcome.status.is_ok() {
                frames.push(format!(
                    "ALERT at={now} tenant={} step fault (tenant quarantined)",
                    outcome.tenant
                ));
            }
            if frames.is_empty() {
                continue;
            }
            for sub in subs.iter() {
                let wants = match &sub.tenant {
                    None => true,
                    Some(t) => t == &outcome.tenant,
                };
                if !wants {
                    continue;
                }
                for frame in &frames {
                    if let Err(TrySendError::Full(_)) = sub.tx.try_send(frame.clone()) {
                        API_EVENTS_DROPPED_TOTAL.inc();
                    }
                }
            }
        }
    }
}

/// What a graceful [`ApiServer::shutdown`] accomplished.
#[derive(Debug)]
pub struct DrainOutcome {
    /// Connections still open when the connection-drain deadline hit
    /// (their sockets keep their own deadlines; they die on their own).
    pub connections_outstanding: usize,
    /// The fleet's own drain/checkpoint report.
    pub fleet: ShutdownReport,
}

impl DrainOutcome {
    /// Whether everything flushed: no lingering connections, fleet
    /// drained and checkpointed cleanly.
    pub fn is_clean(&self) -> bool {
        self.connections_outstanding == 0 && self.fleet.is_clean()
    }
}

/// The hardened TCP frontend over a [`Fleet`].
///
/// Binds, serves, and — via [`ApiServer::shutdown`] — drains: stop
/// accepting, let in-flight requests finish, flush tenant inboxes, and
/// checkpoint every tenant durably.
pub struct ApiServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl ApiServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `fleet` on a background accept thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error verbatim.
    pub fn bind(
        addr: impl ToSocketAddrs,
        fleet: Fleet,
        config: ApiConfig,
    ) -> io::Result<ApiServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            fleet: Mutex::new(fleet),
            limiter: config.rate_limit.map(RateLimiter::new),
            config,
            open_conns: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            subs: Mutex::new(Vec::new()),
            sub_seq: AtomicU64::new(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("cadel-api-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        if cadel_obs::enabled() {
            cadel_obs::emit(
                Event::new("api.bind", Level::Info).with_field("addr", local.to_string()),
            );
        }
        Ok(ApiServer {
            shared,
            addr: local,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs `f` against the fleet under the frontend's lock — for
    /// drivers that own the clock and embed the frontend.
    pub fn with_fleet<T>(&self, f: impl FnOnce(&mut Fleet) -> T) -> T {
        f(&mut self.shared.fleet())
    }

    /// Advances the fleet one wave at simulated time `now` and fans the
    /// results out to event-stream subscribers.
    pub fn step_fleet(&self, now: SimTime) -> FleetStepReport {
        let report = self.shared.fleet().step_ready(now);
        self.shared.broadcast_wave(now, &report);
        report
    }

    /// Connections currently open (including event streams).
    pub fn open_connections(&self) -> usize {
        self.shared.open_conns.load(Ordering::Acquire)
    }

    /// Gracefully drains and shuts down.
    ///
    /// Stops accepting, then spends up to half of `deadline` waiting
    /// for open connections to finish (subscribers notice the drain on
    /// their next heartbeat and say `GOODBYE`), then hands the rest of
    /// the budget to [`Fleet::shutdown`]: flush ready inboxes at `now`,
    /// `checkpoint_all`, report per-tenant flush failures.
    pub fn shutdown(mut self, deadline: Duration, now: SimTime) -> DrainOutcome {
        self.stop_accepting();
        let started = Instant::now();
        let conn_budget = deadline / 2;
        while self.shared.open_conns.load(Ordering::Acquire) > 0 && started.elapsed() < conn_budget
        {
            thread::sleep(Duration::from_millis(5));
        }
        let connections_outstanding = self.shared.open_conns.load(Ordering::Acquire);
        let remaining = deadline.saturating_sub(started.elapsed());
        let fleet = self.shared.fleet().shutdown(remaining, now);
        let outcome = DrainOutcome {
            connections_outstanding,
            fleet,
        };
        if cadel_obs::enabled() {
            cadel_obs::emit(
                Event::new("api.shutdown", Level::Info)
                    .with_field(
                        "connections_outstanding",
                        outcome.connections_outstanding as u64,
                    )
                    .with_field("clean", outcome.is_clean()),
            );
        }
        outcome
    }

    /// Flips the draining flag and unblocks the accept thread by
    /// poking our own listening socket.
    fn stop_accepting(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        // Subscribers park in `recv_timeout` between frames; a nudge
        // makes them observe the drain and say `GOODBYE` now instead of
        // on their next heartbeat. A full queue is fine — those wake on
        // their backlog anyway.
        for sub in self.shared.subs().iter() {
            let _ = sub.tx.try_send("PING".to_owned());
        }
        // The accept thread is blocked in `accept`; a throwaway
        // connection wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_accepting();
        }
    }
}

/// The accept loop: refuse while draining, shed past the connection
/// cap, back off on accept errors, otherwise hand the socket to a
/// connection thread.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if shared.draining.load(Ordering::Acquire) => break,
            Err(_) => {
                // Likely fd exhaustion; degrade to slow acceptance
                // rather than a hot error loop.
                thread::sleep(shared.config.accept_backoff);
                continue;
            }
        };
        if shared.draining.load(Ordering::Acquire) {
            refuse(stream, &shared, "draining");
            break;
        }
        let open = shared.open_conns.fetch_add(1, Ordering::AcqRel) + 1;
        if open > shared.config.max_connections {
            shared.open_conns.fetch_sub(1, Ordering::AcqRel);
            API_SHED_TOTAL.inc();
            refuse(stream, &shared, "connection_cap");
            continue;
        }
        API_CONNECTIONS_TOTAL.inc();
        API_CONNECTIONS_OPEN.add(1);
        let conn_shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name(format!("cadel-api-conn-{peer}"))
            .spawn(move || {
                // Acceptance bar: no panic escapes a worker. The
                // handler already wraps each route dispatch, but a
                // defect in the wire loop itself must not abort the
                // process either.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(stream, peer, &conn_shared)
                }));
                if result.is_err() {
                    API_WORKER_PANICS_TOTAL.inc();
                }
                conn_shared.open_conns.fetch_sub(1, Ordering::AcqRel);
                API_CONNECTIONS_OPEN.add(-1);
            });
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): shed.
            shared.open_conns.fetch_sub(1, Ordering::AcqRel);
            API_CONNECTIONS_OPEN.add(-1);
            API_SHED_TOTAL.inc();
            thread::sleep(shared.config.accept_backoff);
        }
    }
}

/// Best-effort one-shot refusal on a connection we will not serve.
fn refuse(stream: TcpStream, shared: &Shared, code: &str) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let response = Response::error(503, "Service Unavailable", code, "server is shedding load")
        .with_retry_after(shared.config.retry_after_secs)
        .closing();
    let mut stream = stream;
    let _ = response.write_to(&mut stream);
}

/// What a routed request turned into.
enum Routed {
    /// Write this response, possibly keep the connection alive.
    Respond(Response),
    /// Upgrade the connection to an event stream.
    Subscribe { tenant: Option<String> },
}

/// Serves one connection: keep-alive request loop with per-request
/// wall-clock budget, typed-error responses, rate limiting, and
/// panic containment per dispatch.
fn handle_connection(stream: TcpStream, peer: SocketAddr, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let limits = WireLimits {
        max_head_bytes: shared.config.max_head_bytes,
        max_body_bytes: shared.config.max_body_bytes,
    };
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut out = write_stream;
    let mut reader = WireReader::new(stream);
    let mut served: u64 = 0;
    loop {
        let deadline = Instant::now() + shared.config.idle_timeout;
        let request = match reader.read_request(&limits, Some(deadline)) {
            Ok(request) => request,
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::TimedOut) => {
                API_TIMEOUTS_TOTAL.inc();
                if reader.buffered() > 0 {
                    // Mid-request stall (slow loris): tell them why.
                    let response = Response::error(
                        408,
                        "Request Timeout",
                        "timed_out",
                        "request did not complete within the idle budget",
                    )
                    .closing();
                    let _ = response.write_to(&mut out);
                }
                return;
            }
            Err(ParseError::Io(_)) => return,
            Err(error) => {
                API_PARSE_ERRORS_TOTAL.inc();
                let (status, reason) = error.status();
                let response =
                    Response::error(status, reason, error.code(), &error.to_string()).closing();
                let _ = response.write_to(&mut out);
                return;
            }
        };
        served += 1;
        API_REQUESTS_TOTAL.inc();
        let sw = Stopwatch::start();

        if shared.draining.load(Ordering::Acquire) {
            API_SHED_TOTAL.inc();
            let response = Response::error(
                503,
                "Service Unavailable",
                "draining",
                "server is draining; retry against the next instance",
            )
            .with_retry_after(shared.config.retry_after_secs)
            .closing();
            let _ = response.write_to(&mut out);
            return;
        }

        if let Some(limiter) = &shared.limiter {
            if !rate_limit_exempt(&request.path) {
                if let Err(retry_after) = limiter.try_admit(peer.ip()) {
                    API_RATE_LIMITED_TOTAL.inc();
                    let response = Response::error(
                        429,
                        "Too Many Requests",
                        "rate_limited",
                        "per-client rate limit exceeded",
                    )
                    .with_retry_after(retry_after);
                    if write_response(&mut out, &request, response, served, shared).is_err() {
                        return;
                    }
                    continue;
                }
            }
        }

        // Panic containment around the route dispatch: a handler defect
        // answers 500 and keeps serving, it never kills the worker.
        let routed = match catch_unwind(AssertUnwindSafe(|| route(shared, &request))) {
            Ok(routed) => routed,
            Err(_) => {
                API_WORKER_PANICS_TOTAL.inc();
                Routed::Respond(
                    Response::error(
                        500,
                        "Internal Server Error",
                        "handler_panic",
                        "request handler panicked; the fault was contained",
                    )
                    .closing(),
                )
            }
        };
        API_REQUEST_NS.record(&sw);

        match routed {
            Routed::Subscribe { tenant } => {
                run_subscription(shared, &mut out, tenant);
                return;
            }
            Routed::Respond(response) => {
                let close = response.close;
                if write_response(&mut out, &request, response, served, shared).is_err() || close {
                    return;
                }
            }
        }
    }
}

/// Writes a response, folding in keep-alive rotation; `Err` means the
/// connection is dead (or should close).
fn write_response(
    out: &mut TcpStream,
    request: &Request,
    mut response: Response,
    served: u64,
    shared: &Shared,
) -> Result<(), ()> {
    let rotate = shared.config.max_requests_per_connection > 0
        && served >= shared.config.max_requests_per_connection;
    if request.wants_close() || rotate {
        response.close = true;
    }
    let close = response.close;
    match response.write_to(out) {
        Ok(()) if !close => Ok(()),
        _ => Err(()),
    }
}

/// Paths that must stay reachable under rate pressure: probes and
/// metric scrapes.
fn rate_limit_exempt(path: &str) -> bool {
    matches!(path, "/healthz" | "/readyz" | "/metrics")
}

/// Routes one parsed request. All fleet access happens here, under the
/// shared lock.
fn route(shared: &Shared, request: &Request) -> Routed {
    let segments = request.segments();
    match (&request.method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => Routed::Respond(Response::text(200, "OK", "ok\n")),
        (Method::Get, ["readyz"]) => Routed::Respond(readyz(shared)),
        (Method::Get, ["metrics"]) => {
            let body = cadel_obs::metrics_snapshot().render_prometheus();
            let mut response = Response::text(200, "OK", body);
            response.content_type = "text/plain; version=0.0.4";
            Routed::Respond(response)
        }
        (Method::Get, ["fleet", "health"]) => {
            let health = shared.fleet().health();
            Routed::Respond(Response::json(
                200,
                "OK",
                &proto::render_fleet_health(&health),
            ))
        }
        (Method::Post, ["step"]) => Routed::Respond(admin_step(shared, request)),
        (Method::Get, ["tenants", tenant, "health"]) => {
            Routed::Respond(tenant_health(shared, tenant))
        }
        (Method::Get, ["tenants", tenant, "rules"]) => {
            Routed::Respond(export_rules(shared, tenant))
        }
        (Method::Post, ["tenants", tenant, "readings"]) => {
            Routed::Respond(post_readings(shared, tenant, request))
        }
        (Method::Post, ["tenants", tenant, "rules"]) => {
            Routed::Respond(post_rule(shared, tenant, request))
        }
        (Method::Delete, ["tenants", tenant, "rules", id])
        | (Method::Post, ["tenants", tenant, "rules", id, "remove"]) => {
            Routed::Respond(remove_rule(shared, tenant, id))
        }
        (Method::Post, ["tenants", tenant, "rules", id, "enabled"]) => {
            Routed::Respond(set_rule_enabled(shared, tenant, id, request))
        }
        (Method::Get, ["events"]) | (Method::Subscribe, ["events"]) => Routed::Subscribe {
            tenant: request.query_param("tenant").map(str::to_owned),
        },
        _ => Routed::Respond(Response::error(
            404,
            "Not Found",
            "no_route",
            &format!("no route for {} {}", request.method.as_str(), request.path),
        )),
    }
}

/// Readiness: `200` while accepting and under the backpressure
/// watermark, `503` + `Retry-After` otherwise.
fn readyz(shared: &Shared) -> Response {
    if shared.draining.load(Ordering::Acquire) {
        return Response::error(503, "Service Unavailable", "draining", "server is draining")
            .with_retry_after(shared.config.retry_after_secs);
    }
    let (overloaded, backpressure) = {
        let fleet = shared.fleet();
        (fleet.overloaded(), fleet.backpressure())
    };
    let body = Json::obj(vec![
        ("ready", Json::Bool(!overloaded)),
        ("backpressure", Json::Float(backpressure)),
    ]);
    if overloaded {
        let mut response = Response::json(503, "Service Unavailable", &body);
        response.retry_after = Some(shared.config.retry_after_secs);
        response
    } else {
        Response::json(200, "OK", &body)
    }
}

/// `POST /step {"at_ms": N}` — drive one fleet wave over the wire.
fn admin_step(shared: &Shared, request: &Request) -> Response {
    if !shared.config.allow_admin_step {
        return Response::error(
            403,
            "Forbidden",
            "admin_step_disabled",
            "POST /step is disabled in this deployment",
        );
    }
    let doc = match parse_body(request) {
        Ok(doc) => doc,
        Err(response) => return *response,
    };
    let at_ms = match doc.get("at_ms").and_then(Json::as_int) {
        Some(n) if n >= 0 => n as u64,
        _ => {
            return bad_request(&BadRequest {
                code: "wrong_type",
                message: "field 'at_ms' must be a non-negative integer".into(),
            })
        }
    };
    let now = SimTime::from_millis(at_ms);
    let report = shared.fleet().step_ready(now);
    shared.broadcast_wave(now, &report);
    let body = Json::obj(vec![
        ("stepped", Json::Int(report.stepped() as i64)),
        ("faults", Json::Int(report.faults() as i64)),
        ("restarted", Json::Int(report.restarted as i64)),
    ]);
    Response::json(200, "OK", &body)
}

fn tenant_health(shared: &Shared, tenant: &str) -> Response {
    let fleet = shared.fleet();
    let Some(state) = fleet.state_of(tenant) else {
        return unknown_tenant(tenant);
    };
    let body = Json::obj(vec![
        ("tenant", Json::str(tenant)),
        ("state", Json::str(state.to_string())),
        (
            "inbox",
            Json::Int(fleet.inbox_len_of(tenant).unwrap_or(0) as i64),
        ),
        (
            "strikes",
            Json::Int(i64::from(fleet.strikes_of(tenant).unwrap_or(0))),
        ),
        (
            "restarts",
            Json::Int(fleet.restarts_of(tenant).unwrap_or(0) as i64),
        ),
    ]);
    Response::json(200, "OK", &body)
}

fn export_rules(shared: &Shared, tenant: &str) -> Response {
    let fleet = shared.fleet();
    if fleet.tenant_index(tenant).is_none() {
        return unknown_tenant(tenant);
    }
    let Some(server) = fleet.server_of(tenant) else {
        return quarantined(shared, tenant);
    };
    match server.export_rules() {
        Ok(listing) => Response::text(200, "OK", listing),
        Err(error) => server_error(&error),
    }
}

fn post_readings(shared: &Shared, tenant: &str, request: &Request) -> Response {
    let doc = match parse_body(request) {
        Ok(doc) => doc,
        Err(response) => return *response,
    };
    let readings = match proto::parse_readings(&doc) {
        Ok(readings) => readings,
        Err(error) => return bad_request(&error),
    };
    let mut fleet = shared.fleet();
    // Explicit load shed: past the fleet's backpressure watermark, new
    // work is refused with `Retry-After` instead of queued.
    if fleet.overloaded() {
        API_SHED_TOTAL.inc();
        return Response::error(
            503,
            "Service Unavailable",
            "overloaded",
            "fleet backlog is past the backpressure watermark",
        )
        .with_retry_after(shared.config.retry_after_secs);
    }
    let Some(index) = fleet.tenant_index(tenant) else {
        return unknown_tenant(tenant);
    };
    let mut admissions: Vec<Admission> = Vec::with_capacity(readings.len());
    let mut rejected = 0usize;
    for ingress in readings {
        match fleet.offer_at(index, ingress) {
            Ok(admission) => admissions.push(admission),
            Err(FleetError::InboxFull { .. }) => rejected += 1,
            Err(error) => return fleet_error(&error),
        }
    }
    if admissions.is_empty() && rejected > 0 {
        API_SHED_TOTAL.inc();
        return Response::error(
            503,
            "Service Unavailable",
            "tenant_backlogged",
            "tenant inbox is full and the shed policy rejected the batch",
        )
        .with_retry_after(shared.config.retry_after_secs);
    }
    Response::json(
        202,
        "Accepted",
        &proto::render_admissions(&admissions, rejected),
    )
}

fn post_rule(shared: &Shared, tenant: &str, request: &Request) -> Response {
    let doc = match parse_body(request) {
        Ok(doc) => doc,
        Err(response) => return *response,
    };
    let (user, sentence) = match proto::parse_rule_submit(&doc) {
        Ok(parsed) => parsed,
        Err(error) => return bad_request(&error),
    };
    with_tenant_server(shared, tenant, |server| {
        server.submit(&user, &sentence).map(|outcome| {
            let status = match &outcome {
                SubmitOutcome::Registered { .. } => (201, "Created"),
                SubmitOutcome::ConflictDetected { .. } => (409, "Conflict"),
                _ => (200, "OK"),
            };
            Response::json(status.0, status.1, &proto::render_outcome(&outcome))
        })
    })
}

fn remove_rule(shared: &Shared, tenant: &str, id: &str) -> Response {
    let Some(rule) = parse_rule_id(id) else {
        return bad_rule_id(id);
    };
    with_tenant_server(shared, tenant, |server| {
        server.remove_rule(rule).map(|()| {
            Response::json(
                200,
                "OK",
                &Json::obj(vec![("removed", Json::Int(rule.raw() as i64))]),
            )
        })
    })
}

fn set_rule_enabled(shared: &Shared, tenant: &str, id: &str, request: &Request) -> Response {
    let Some(rule) = parse_rule_id(id) else {
        return bad_rule_id(id);
    };
    let doc = match parse_body(request) {
        Ok(doc) => doc,
        Err(response) => return *response,
    };
    let Some(enabled) = doc.get("enabled").and_then(Json::as_bool) else {
        return bad_request(&BadRequest {
            code: "wrong_type",
            message: "field 'enabled' must be a boolean".into(),
        });
    };
    with_tenant_server(shared, tenant, |server| {
        server.set_rule_enabled(rule, enabled).map(|()| {
            Response::json(
                200,
                "OK",
                &Json::obj(vec![
                    ("rule", Json::Int(rule.raw() as i64)),
                    ("enabled", Json::Bool(enabled)),
                ]),
            )
        })
    })
}

/// Runs `f` against one tenant's server, mapping missing/quarantined
/// tenants and server errors to their responses.
fn with_tenant_server(
    shared: &Shared,
    tenant: &str,
    f: impl FnOnce(&mut cadel_server::HomeServer) -> Result<Response, ServerError>,
) -> Response {
    let mut fleet = shared.fleet();
    if fleet.tenant_index(tenant).is_none() {
        return unknown_tenant(tenant);
    }
    let Some(server) = fleet.server_mut_of(tenant) else {
        return quarantined(shared, tenant);
    };
    match f(server) {
        Ok(response) => response,
        Err(error) => server_error(&error),
    }
}

/// Parses the request body as a JSON document (empty or malformed →
/// `400`/`422`). Boxed so the happy path stays thin.
fn parse_body(request: &Request) -> Result<Json, Box<Response>> {
    let text = request.body_utf8().map_err(|_| {
        Box::new(Response::error(
            400,
            "Bad Request",
            "body_not_utf8",
            "request body is not UTF-8",
        ))
    })?;
    if text.trim().is_empty() {
        return Err(Box::new(Response::error(
            400,
            "Bad Request",
            "empty_body",
            "request body is empty; a JSON document is required",
        )));
    }
    cadel_types::json::parse(text).map_err(|e| {
        Box::new(Response::error(
            400,
            "Bad Request",
            "malformed_json",
            &format!("request body is not valid JSON: {e}"),
        ))
    })
}

fn parse_rule_id(id: &str) -> Option<RuleId> {
    id.parse::<u64>().ok().map(RuleId::new)
}

fn bad_rule_id(id: &str) -> Response {
    Response::error(
        400,
        "Bad Request",
        "bad_rule_id",
        &format!("'{id}' is not a rule id"),
    )
}

fn bad_request(error: &BadRequest) -> Response {
    Response::error(422, "Unprocessable Entity", error.code, &error.message)
}

fn unknown_tenant(tenant: &str) -> Response {
    Response::error(
        404,
        "Not Found",
        "unknown_tenant",
        &format!("no tenant '{tenant}'"),
    )
}

fn quarantined(shared: &Shared, tenant: &str) -> Response {
    let state = shared
        .fleet()
        .state_of(tenant)
        .unwrap_or(TenantState::Quarantined);
    Response::error(
        503,
        "Service Unavailable",
        "tenant_unavailable",
        &format!("tenant '{tenant}' is {state}; retry after the next supervision wave"),
    )
    .with_retry_after(shared.config.retry_after_secs)
}

fn fleet_error(error: &FleetError) -> Response {
    Response::error(409, "Conflict", "fleet_error", &error.to_string())
}

/// Maps a [`ServerError`] to a response: client faults are 4xx, store
/// trouble is 503 (retryable after restart), the rest is 409.
fn server_error(error: &ServerError) -> Response {
    let (status, reason, code) = match error {
        ServerError::Lang(_) => (422, "Unprocessable Entity", "language_error"),
        ServerError::UnknownUser(_) => (404, "Not Found", "unknown_user"),
        ServerError::AccessDenied(_) => (403, "Forbidden", "access_denied"),
        ServerError::ReadOnly => (503, "Service Unavailable", "read_only"),
        ServerError::Store(_) => (503, "Service Unavailable", "store_error"),
        ServerError::Engine(_) => (404, "Not Found", "engine_error"),
        _ => (409, "Conflict", "server_error"),
    };
    Response::error(status, reason, code, &error.to_string())
}

/// Serves one event-stream subscription until the client goes away or
/// the server drains.
///
/// The wire format is a GENA-flavoured line protocol: a `200` header
/// block with an `SID`, then `\r\n`-terminated frames — `NOTIFY ...`
/// for firings/releases, `ALERT ...` for step faults, `PING` as the
/// idle heartbeat, `GOODBYE` before a drain close.
fn run_subscription(shared: &Shared, out: &mut TcpStream, tenant: Option<String>) {
    let sid = shared.sub_seq.fetch_add(1, Ordering::AcqRel);
    let (tx, rx) = sync_channel::<String>(shared.config.subscriber_queue.max(1));
    shared.subs().push(Subscriber {
        id: sid,
        tenant,
        tx,
    });
    API_SUBSCRIBERS_OPEN.add(1);
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/cadel-event-stream\r\nSID: uuid:cadel-{sid}\r\nConnection: close\r\n\r\n"
    );
    let mut alive = out.write_all(head.as_bytes()).is_ok() && out.flush().is_ok();
    while alive {
        if shared.draining.load(Ordering::Acquire) {
            let _ = out.write_all(b"GOODBYE draining\r\n");
            break;
        }
        let frame = match rx.recv_timeout(shared.config.heartbeat) {
            Ok(frame) => frame,
            Err(RecvTimeoutError::Timeout) => "PING".to_owned(),
            Err(RecvTimeoutError::Disconnected) => break,
        };
        alive = out.write_all(frame.as_bytes()).is_ok()
            && out.write_all(b"\r\n").is_ok()
            && out.flush().is_ok();
    }
    shared.subs().retain(|sub| sub.id != sid);
    API_SUBSCRIBERS_OPEN.add(-1);
}
