//! Hardened network frontend for a CADEL fleet.
//!
//! The paper's home server faces the network: residents submit rules,
//! appliances report readings, and interested parties subscribe to
//! events (its device layer is already GENA-flavoured). This crate is
//! that face, grown for the fleet era and built std-only over
//! `TcpListener`: an HTTP/1.1-subset endpoint that admits rule
//! submissions, sensor-reading batches and event-stream subscriptions
//! into a running [`cadel_fleet::Fleet`].
//!
//! *Robustness is the headline.* Every boundary between the open
//! network and the rule engines is governed:
//!
//! - **Deadlines everywhere.** Socket read/write timeouts bound each
//!   syscall; a wall-clock budget ([`ApiConfig::idle_timeout`]) bounds
//!   each request end to end, so a slow-loris drip answers `408` and
//!   frees the worker.
//! - **Bounded frames.** Head and body caps are enforced *before*
//!   buffering; a hostile or truncated frame maps to a typed
//!   [`ParseError`] and a 4xx — never a panic, never unbounded memory.
//! - **Explicit shed.** Past the fleet's backpressure watermark (or the
//!   connection cap, or while draining) the frontend answers `503` with
//!   `Retry-After` instead of queueing invisible work. Per-client
//!   token buckets ([`RateLimitConfig`]) keep one chatty client from
//!   starving the rest.
//! - **Contained faults.** Route dispatch and the whole connection loop
//!   run under `catch_unwind`; a handler defect answers `500`, counts
//!   itself, and the accept loop keeps accepting.
//! - **Graceful drain.** [`ApiServer::shutdown`] stops accepting, lets
//!   in-flight requests finish, says `GOODBYE` to subscribers, then
//!   flushes fleet inboxes and checkpoints every tenant durably.
//!
//! ```no_run
//! use cadel_api::{ApiClient, ApiConfig, ApiServer};
//! use cadel_fleet::{Fleet, FleetConfig};
//! use cadel_types::SimTime;
//!
//! let fleet = Fleet::new(std::env::temp_dir().join("api-doc"), FleetConfig::default());
//! let server = ApiServer::bind("127.0.0.1:0", fleet, ApiConfig::default()).unwrap();
//! let mut client = ApiClient::connect(server.addr()).unwrap();
//! assert!(client.get("/healthz").unwrap().is_success());
//! let outcome = server.shutdown(std::time::Duration::from_secs(2), SimTime::EPOCH);
//! assert!(outcome.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod http;
pub mod limit;
pub mod proto;
pub mod server;

pub use client::{subscribe, ApiClient, ApiResponse, EventStream};
pub use config::{ApiConfig, RateLimitConfig};
pub use http::{Method, ParseError, Request, Response, WireLimits, WireReader};
pub use limit::RateLimiter;
pub use proto::BadRequest;
pub use server::{ApiServer, DrainOutcome};
