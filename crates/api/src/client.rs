//! A small blocking client for the frontend's wire protocol.
//!
//! Exists so tests, benches and examples exercise the server over a
//! real socket without hand-rolling HTTP each time. It is deliberately
//! minimal: one request at a time, `Content-Length` framing only,
//! bounded reads with socket deadlines.

use cadel_types::json::{self, Json};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Response cap: a client-side guard against a misbehaving server, not
/// a protocol limit.
const MAX_RESPONSE_BYTES: usize = 4 * 1024 * 1024;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct ApiResponse {
    /// Status code.
    pub status: u16,
    /// Lowercased header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ApiResponse {
    /// A header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The advertised `Retry-After`, when present and numeric.
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after")?.trim().parse().ok()
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON, when it is JSON.
    pub fn json(&self) -> Option<Json> {
        json::parse(std::str::from_utf8(&self.body).ok()?).ok()
    }

    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A blocking keep-alive client connection.
#[derive(Debug)]
pub struct ApiClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    timeout: Duration,
}

impl ApiClient {
    /// Connects (lazily — the socket opens on the first request).
    ///
    /// # Errors
    ///
    /// Returns resolution errors; connection errors surface on the
    /// first request.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ApiClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        Ok(ApiClient {
            addr,
            stream: None,
            timeout: Duration::from_secs(5),
        })
    }

    /// Overrides the socket read/write deadline (default 5s).
    pub fn with_timeout(mut self, timeout: Duration) -> ApiClient {
        self.timeout = timeout;
        self
    }

    fn stream(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just set"))
    }

    /// Sends one request and reads the response. Retries once on a
    /// stale keep-alive socket (server rotated the connection).
    ///
    /// # Errors
    ///
    /// Returns socket and framing errors.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> io::Result<ApiResponse> {
        let payload = body.map(Json::to_compact);
        match self.request_once(method, path, payload.as_deref()) {
            Ok(response) => {
                if response
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.stream = None;
                }
                Ok(response)
            }
            Err(e) => {
                // One reconnect: the server may have rotated the
                // connection between requests.
                self.stream = None;
                if matches!(
                    e.kind(),
                    io::ErrorKind::BrokenPipe
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::UnexpectedEof
                        | io::ErrorKind::ConnectionAborted
                ) {
                    self.request_once(method, path, payload.as_deref())
                } else {
                    Err(e)
                }
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        payload: Option<&str>,
    ) -> io::Result<ApiResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: cadel\r\n");
        let body = payload.unwrap_or("").as_bytes();
        if !body.is_empty() {
            head.push_str("Content-Type: application/json\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        let stream = self.stream()?;
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        read_response(stream)
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// See [`ApiClient::request`].
    pub fn get(&mut self, path: &str) -> io::Result<ApiResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`ApiClient::request`].
    pub fn post(&mut self, path: &str, body: &Json) -> io::Result<ApiResponse> {
        self.request("POST", path, Some(body))
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// See [`ApiClient::request`].
    pub fn delete(&mut self, path: &str) -> io::Result<ApiResponse> {
        self.request("DELETE", path, None)
    }
}

/// Opens an event-stream subscription against `addr`.
///
/// # Errors
///
/// Returns connection/handshake errors, and `InvalidData` when the
/// server refuses the subscription.
pub fn subscribe(
    addr: impl ToSocketAddrs,
    tenant: Option<&str>,
    timeout: Duration,
) -> io::Result<EventStream> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let path = match tenant {
        Some(tenant) => format!("/events?tenant={tenant}"),
        None => "/events".to_owned(),
    };
    let head = format!("SUBSCRIBE {path} HTTP/1.1\r\nHost: cadel\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    // Read the header block.
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed during subscription handshake",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > 64 * 1024 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "oversized subscription header",
            ));
        }
    };
    let head_text = String::from_utf8_lossy(&buf[..head_end]);
    if !head_text.starts_with("HTTP/1.1 200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "subscription refused: {}",
                head_text.lines().next().unwrap_or("")
            ),
        ));
    }
    let sid = head_text
        .lines()
        .find_map(|line| line.strip_prefix("SID: "))
        .unwrap_or("")
        .to_owned();
    let leftover = buf[head_end + 4..].to_vec();
    Ok(EventStream {
        stream,
        buf: leftover,
        sid,
    })
}

/// A live event stream: `\r\n`-framed lines (`NOTIFY`, `ALERT`,
/// `PING`, `GOODBYE`).
#[derive(Debug)]
pub struct EventStream {
    stream: TcpStream,
    buf: Vec<u8>,
    sid: String,
}

impl EventStream {
    /// The subscription id the server assigned.
    pub fn sid(&self) -> &str {
        &self.sid
    }

    /// Reads the next frame. `Ok(None)` means the stream ended.
    ///
    /// # Errors
    ///
    /// Returns socket errors, including timeouts when no frame arrives
    /// within the socket read deadline.
    pub fn next_frame(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") {
                let frame = String::from_utf8_lossy(&self.buf[..pos]).into_owned();
                self.buf.drain(..pos + 2);
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Ok(None);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Reads frames until one that is not `PING`, or the stream ends.
    ///
    /// # Errors
    ///
    /// See [`EventStream::next_frame`].
    pub fn next_event(&mut self) -> io::Result<Option<String>> {
        loop {
            match self.next_frame()? {
                Some(frame) if frame == "PING" => continue,
                other => return Ok(other),
            }
        }
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn read_response(stream: &mut TcpStream) -> io::Result<ApiResponse> {
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        let mut chunk = [0u8; 2048];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > MAX_RESPONSE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "oversized response head",
            ));
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
            headers.push((name, value));
        }
    }
    if content_length > MAX_RESPONSE_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized response body",
        ));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(ApiResponse {
        status,
        headers,
        body,
    })
}
