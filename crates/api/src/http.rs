//! Bounded HTTP/1.1 wire parsing with typed errors.
//!
//! The frontend's first robustness line: every byte a client sends goes
//! through [`WireReader::read_request`], which enforces hard caps on the
//! header section and body *before* buffering them, distinguishes a
//! clean keep-alive close from a torn frame, maps socket deadlines to
//! [`ParseError::TimedOut`], and never panics on hostile input — the
//! property pinned by the `hostile_parse` fuzz tests. The grammar is a
//! deliberate HTTP/1.1 subset: one request line, CRLF-separated
//! headers, an optional `Content-Length` body. No chunked transfer, no
//! continuation lines, no percent-decoding.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Instant;

/// Request methods the frontend understands. `SUBSCRIBE` is the
/// GENA-flavoured spelling of an event-stream subscription (a `GET` on
/// the events path works too).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Read-only retrieval.
    Get,
    /// State-changing submission.
    Post,
    /// Resource removal.
    Delete,
    /// GENA-like event-stream subscription.
    Subscribe,
}

impl Method {
    fn from_token(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            "SUBSCRIBE" => Some(Method::Subscribe),
            _ => None,
        }
    }

    /// The wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
            Method::Subscribe => "SUBSCRIBE",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Hard caps applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct WireLimits {
    /// Maximum bytes of request line + headers (terminator included).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted; larger bodies are refused
    /// before a single body byte is buffered.
    pub max_body_bytes: usize,
}

impl Default for WireLimits {
    fn default() -> WireLimits {
        WireLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// The path component of the target (before any `?`).
    pub path: String,
    /// The raw query string (after `?`, empty when absent).
    pub query: String,
    /// Headers with lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of a `key=value` query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }

    /// Whether the client asked to close the connection after this
    /// request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8.
    ///
    /// # Errors
    ///
    /// [`ParseError::BodyNotUtf8`] when the body is not valid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, ParseError> {
        std::str::from_utf8(&self.body).map_err(|_| ParseError::BodyNotUtf8)
    }

    /// The path split into its `/`-separated segments (no empties).
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Everything that can go wrong turning bytes into a [`Request`]. Typed,
/// total, and panic-free by contract: hostile input maps here, never to
/// an abort.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The peer closed cleanly at a request boundary (keep-alive end).
    ConnectionClosed,
    /// The peer closed mid-request: a torn frame.
    TornFrame {
        /// Which part of the request was cut off.
        context: &'static str,
    },
    /// The header section exceeded [`WireLimits::max_head_bytes`].
    HeadTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// The request line is not `METHOD SP target SP HTTP/1.x`.
    RequestLineMalformed {
        /// Why.
        reason: &'static str,
    },
    /// The method token is not one the frontend accepts.
    UnsupportedMethod(String),
    /// The version token is not `HTTP/1.x`.
    UnsupportedVersion(String),
    /// A header line has no `:` separator or an empty/invalid name.
    HeaderMalformed,
    /// `Transfer-Encoding` is not supported (no chunked bodies).
    UnsupportedTransferEncoding,
    /// `Content-Length` is absent on a method that requires a body
    /// frame, repeated, or not a decimal number.
    InvalidContentLength,
    /// The declared body length exceeds [`WireLimits::max_body_bytes`].
    BodyTooLarge {
        /// The declared length.
        length: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The body is not valid UTF-8 (raised by [`Request::body_utf8`]).
    BodyNotUtf8,
    /// A socket deadline expired (read/write timeout or the slow-loris
    /// idle budget).
    TimedOut,
    /// Any other I/O failure.
    Io(io::ErrorKind),
}

impl ParseError {
    /// The HTTP status this error maps to when it can still be answered.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ParseError::ConnectionClosed | ParseError::TornFrame { .. } | ParseError::Io(_) => {
                (400, "Bad Request")
            }
            ParseError::HeadTooLarge { .. } => (431, "Request Header Fields Too Large"),
            ParseError::RequestLineMalformed { .. }
            | ParseError::HeaderMalformed
            | ParseError::InvalidContentLength
            | ParseError::BodyNotUtf8 => (400, "Bad Request"),
            ParseError::UnsupportedMethod(_) => (405, "Method Not Allowed"),
            ParseError::UnsupportedVersion(_) => (505, "HTTP Version Not Supported"),
            ParseError::UnsupportedTransferEncoding => (501, "Not Implemented"),
            ParseError::BodyTooLarge { .. } => (413, "Payload Too Large"),
            ParseError::TimedOut => (408, "Request Timeout"),
        }
    }

    /// A short machine-readable code for error bodies and logs.
    pub fn code(&self) -> &'static str {
        match self {
            ParseError::ConnectionClosed => "connection_closed",
            ParseError::TornFrame { .. } => "torn_frame",
            ParseError::HeadTooLarge { .. } => "head_too_large",
            ParseError::RequestLineMalformed { .. } => "request_line_malformed",
            ParseError::UnsupportedMethod(_) => "unsupported_method",
            ParseError::UnsupportedVersion(_) => "unsupported_version",
            ParseError::HeaderMalformed => "header_malformed",
            ParseError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
            ParseError::InvalidContentLength => "invalid_content_length",
            ParseError::BodyTooLarge { .. } => "body_too_large",
            ParseError::BodyNotUtf8 => "body_not_utf8",
            ParseError::TimedOut => "timed_out",
            ParseError::Io(_) => "io_error",
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed"),
            ParseError::TornFrame { context } => write!(f, "torn frame while reading {context}"),
            ParseError::HeadTooLarge { limit } => {
                write!(f, "header section exceeds {limit} bytes")
            }
            ParseError::RequestLineMalformed { reason } => {
                write!(f, "malformed request line: {reason}")
            }
            ParseError::UnsupportedMethod(m) => write!(f, "unsupported method '{m}'"),
            ParseError::UnsupportedVersion(v) => write!(f, "unsupported version '{v}'"),
            ParseError::HeaderMalformed => write!(f, "malformed header line"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported")
            }
            ParseError::InvalidContentLength => write!(f, "invalid content-length"),
            ParseError::BodyTooLarge { length, limit } => {
                write!(
                    f,
                    "declared body of {length} bytes exceeds the {limit}-byte cap"
                )
            }
            ParseError::BodyNotUtf8 => write!(f, "body is not valid UTF-8"),
            ParseError::TimedOut => write!(f, "read deadline expired"),
            ParseError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn classify_io(error: &io::Error) -> ParseError {
    match error.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ParseError::TimedOut,
        kind => ParseError::Io(kind),
    }
}

/// An incremental, bounded request reader over one connection. Bytes
/// read past the current request stay buffered for the next keep-alive
/// request.
#[derive(Debug)]
pub struct WireReader<R> {
    inner: R,
    buf: Vec<u8>,
}

/// Read chunk size. Small enough that a hostile peer cannot make one
/// `read` call blow past the caps by much; large enough to amortize
/// syscalls for ordinary requests.
const CHUNK: usize = 2048;

impl<R: Read> WireReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> WireReader<R> {
        WireReader {
            inner,
            buf: Vec::new(),
        }
    }

    /// Consumes the reader, returning the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Bytes buffered but not yet consumed by a parsed request. Zero at
    /// a clean keep-alive boundary — which is how a connection loop
    /// tells an idle timeout (close quietly) from a mid-request stall
    /// (answer 408).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pulls more bytes into the buffer. `Ok(0)` signals EOF. A socket
    /// read deadline (`WouldBlock`/`TimedOut`) only fails the read once
    /// the caller's wall-clock `deadline` has passed — the socket
    /// timeout is the polling granularity, the deadline is the budget.
    fn fill(&mut self, deadline: Option<Instant>) -> Result<usize, ParseError> {
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Err(ParseError::TimedOut);
            }
        }
        let mut chunk = [0u8; CHUNK];
        loop {
            match self.inner.read(&mut chunk) {
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    match deadline {
                        Some(d) if Instant::now() < d => continue,
                        _ => return Err(ParseError::TimedOut),
                    }
                }
                Err(e) => return Err(classify_io(&e)),
            }
        }
    }

    /// Reads one complete request, enforcing `limits` and the optional
    /// wall-clock `deadline` (the slow-loris budget: a peer trickling
    /// bytes cannot hold the connection past it).
    ///
    /// # Errors
    ///
    /// [`ParseError::ConnectionClosed`] on a clean close between
    /// requests; every other variant for the corresponding wire fault.
    pub fn read_request(
        &mut self,
        limits: &WireLimits,
        deadline: Option<Instant>,
    ) -> Result<Request, ParseError> {
        // 1. Accumulate until the header terminator, under the head cap.
        let head_end = loop {
            if let Some(pos) = find_terminator(&self.buf) {
                if pos + 4 > limits.max_head_bytes {
                    return Err(ParseError::HeadTooLarge {
                        limit: limits.max_head_bytes,
                    });
                }
                break pos;
            }
            if self.buf.len() > limits.max_head_bytes {
                return Err(ParseError::HeadTooLarge {
                    limit: limits.max_head_bytes,
                });
            }
            if self.fill(deadline)? == 0 {
                return if self.buf.is_empty() {
                    Err(ParseError::ConnectionClosed)
                } else {
                    Err(ParseError::TornFrame { context: "headers" })
                };
            }
        };

        // 2. Parse request line + headers (ASCII-safe: reject stray bytes).
        let head: Vec<u8> = self.buf.drain(..head_end + 4).collect();
        let head = std::str::from_utf8(&head[..head_end]).map_err(|_| {
            ParseError::RequestLineMalformed {
                reason: "non-UTF-8 bytes in header section",
            }
        })?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
                _ => {
                    return Err(ParseError::RequestLineMalformed {
                        reason: "expected 'METHOD target HTTP/1.x'",
                    })
                }
            };
        let method = Method::from_token(method)
            .ok_or_else(|| ParseError::UnsupportedMethod(method.into()))?;
        if !version.starts_with("HTTP/1.") {
            return Err(ParseError::UnsupportedVersion(version.into()));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        if !path.starts_with('/') {
            return Err(ParseError::RequestLineMalformed {
                reason: "target must start with '/'",
            });
        }

        let mut headers: Vec<(String, String)> = Vec::new();
        for line in lines {
            let (name, value) = line.split_once(':').ok_or(ParseError::HeaderMalformed)?;
            if name.is_empty() || name.contains(' ') || name.contains('\t') {
                return Err(ParseError::HeaderMalformed);
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }

        // 3. Frame the body. Length is validated against the cap before
        // any body byte is buffered.
        if headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(ParseError::UnsupportedTransferEncoding);
        }
        let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
        let body_len = match (lengths.next(), lengths.next()) {
            (None, _) => 0usize,
            (Some((_, v)), None) => v.parse().map_err(|_| ParseError::InvalidContentLength)?,
            (Some(_), Some(_)) => return Err(ParseError::InvalidContentLength),
        };
        if body_len > limits.max_body_bytes {
            return Err(ParseError::BodyTooLarge {
                length: body_len,
                limit: limits.max_body_bytes,
            });
        }
        while self.buf.len() < body_len {
            if self.fill(deadline)? == 0 {
                return Err(ParseError::TornFrame { context: "body" });
            }
        }
        let body: Vec<u8> = self.buf.drain(..body_len).collect();

        Ok(Request {
            method,
            path: path.to_owned(),
            query: query.to_owned(),
            headers,
            body,
        })
    }
}

/// The position of the `\r\n\r\n` header terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response, rendered with `Content-Length` framing so keep-alive
/// clients can parse it back out of the stream.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Advertised `Retry-After` seconds (shed and rate-limit answers).
    pub retry_after: Option<u64>,
    /// Whether to close the connection after this response.
    pub close: bool,
    /// Extra verbatim headers (e.g. the subscription `SID`).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, reason: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A JSON response.
    pub fn json(status: u16, reason: &'static str, body: &cadel_types::json::Json) -> Response {
        Response {
            status,
            reason,
            content_type: "application/json",
            body: body.to_compact().into_bytes(),
            retry_after: None,
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A JSON error envelope: `{"error": code, "message": ...}`.
    pub fn error(status: u16, reason: &'static str, code: &str, message: &str) -> Response {
        use cadel_types::json::Json;
        Response::json(
            status,
            reason,
            &Json::obj(vec![
                ("error", Json::str(code)),
                ("message", Json::str(message)),
            ]),
        )
    }

    /// Marks the response as connection-closing.
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }

    /// Attaches a `Retry-After` header.
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Serializes status line, headers and body onto `out`.
    ///
    /// # Errors
    ///
    /// Propagates write failures (including write-deadline expiry).
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len()
        );
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(if self.close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        out.write_all(head.as_bytes())?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        WireReader::new(bytes).read_request(&WireLimits::default(), None)
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse(b"GET /events?tenant=unit-0001&x HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/events");
        assert_eq!(req.query_param("tenant"), Some("unit-0001"));
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("h"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_keeps_leftover() {
        let wire = b"POST /t HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET / HTTP/1.1\r\n\r\n";
        let mut reader = WireReader::new(&wire[..]);
        let req = reader.read_request(&WireLimits::default(), None).unwrap();
        assert_eq!(req.body, b"abcd");
        let next = reader.read_request(&WireLimits::default(), None).unwrap();
        assert_eq!(next.method, Method::Get);
        assert!(matches!(
            reader.read_request(&WireLimits::default(), None),
            Err(ParseError::ConnectionClosed)
        ));
    }

    #[test]
    fn typed_errors_for_the_classic_faults() {
        assert!(matches!(parse(b""), Err(ParseError::ConnectionClosed)));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost: h"),
            Err(ParseError::TornFrame { context: "headers" })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc"),
            Err(ParseError::TornFrame { context: "body" })
        ));
        assert!(matches!(
            parse(b"BREW / HTTP/1.1\r\n\r\n"),
            Err(ParseError::UnsupportedMethod(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(ParseError::UnsupportedVersion(_))
        ));
        assert!(matches!(
            parse(b"GET no-slash HTTP/1.1\r\n\r\n"),
            Err(ParseError::RequestLineMalformed { .. })
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ParseError::HeaderMalformed)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::InvalidContentLength)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn caps_are_enforced_before_buffering() {
        let limits = WireLimits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let long_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(256));
        assert!(matches!(
            WireReader::new(long_header.as_bytes()).read_request(&limits, None),
            Err(ParseError::HeadTooLarge { limit: 64 })
        ));
        // A huge declared length is refused without reading the body.
        let huge = b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(matches!(
            WireReader::new(&huge[..]).read_request(&limits, None),
            Err(ParseError::BodyTooLarge {
                length: 999_999_999,
                limit: 8
            })
        ));
    }

    #[test]
    fn response_round_trips_headers() {
        let mut out = Vec::new();
        Response::error(503, "Service Unavailable", "overloaded", "try later")
            .with_retry_after(2)
            .closing()
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("\"error\":\"overloaded\""));
    }
}
