//! Request/response payload schemas: JSON bodies in, JSON documents out.
//!
//! Parsing is strict and typed — an unknown shape maps to a
//! [`BadRequest`] with a machine-readable code, never a panic — and
//! rendering reuses the workspace's own [`Json`] document model, so the
//! frontend stays std-only.

use cadel_fleet::{Admission, FleetHealth, Ingress};
use cadel_server::SubmitOutcome;
use cadel_types::json::Json;
use cadel_types::{DeviceId, PersonId, Quantity, Rational, SimTime, Unit, Value};

/// A typed payload rejection: rendered as `422 Unprocessable Entity`
/// with `{"error": code, "message": ...}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BadRequest {
    /// Machine-readable code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl BadRequest {
    fn new(code: &'static str, message: impl Into<String>) -> BadRequest {
        BadRequest {
            code,
            message: message.into(),
        }
    }
}

fn field<'a>(doc: &'a Json, key: &'static str) -> Result<&'a Json, BadRequest> {
    doc.get(key)
        .ok_or_else(|| BadRequest::new("missing_field", format!("missing field '{key}'")))
}

fn str_field(doc: &Json, key: &'static str) -> Result<String, BadRequest> {
    field(doc, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| BadRequest::new("wrong_type", format!("field '{key}' must be a string")))
}

fn u64_field(doc: &Json, key: &'static str) -> Result<u64, BadRequest> {
    match field(doc, key)?.as_int() {
        Some(n) if n >= 0 => Ok(n as u64),
        _ => Err(BadRequest::new(
            "wrong_type",
            format!("field '{key}' must be a non-negative integer"),
        )),
    }
}

/// Parses one reading object into an [`Ingress`] entry.
///
/// Shape: `{"device": "...", "variable": "...", "value": <int|bool|str>,
/// "unit": "celsius"?, "at_ms": <millis since epoch>}`. Values are
/// integers (with an optional CADEL unit word), booleans, or text;
/// floats are rejected — the engine's quantities are exact rationals
/// and the wire format does not guess a denominator.
pub fn parse_reading(doc: &Json) -> Result<Ingress, BadRequest> {
    let device = str_field(doc, "device")?;
    let variable = str_field(doc, "variable")?;
    let at = SimTime::from_millis(u64_field(doc, "at_ms")?);
    let unit = match doc.get("unit") {
        None => Unit::Unitless,
        Some(u) => {
            let word = u
                .as_str()
                .ok_or_else(|| BadRequest::new("wrong_type", "field 'unit' must be a string"))?;
            Unit::from_word(word)
                .ok_or_else(|| BadRequest::new("unknown_unit", format!("unknown unit '{word}'")))?
        }
    };
    let value = match field(doc, "value")? {
        Json::Int(n) => Value::Number(Quantity::new(Rational::from_integer(*n), unit)),
        Json::Bool(b) => Value::Bool(*b),
        Json::Str(s) => Value::Text(s.clone()),
        Json::Float(_) => {
            return Err(BadRequest::new(
                "float_value",
                "float values are not accepted; send integers in the smallest unit",
            ))
        }
        _ => {
            return Err(BadRequest::new(
                "wrong_type",
                "field 'value' must be an integer, boolean or string",
            ))
        }
    };
    Ok(Ingress {
        device: DeviceId::new(device),
        variable,
        value,
        at,
    })
}

/// Parses a `POST /tenants/{t}/readings` body:
/// `{"readings": [<reading>, ...]}`.
pub fn parse_readings(doc: &Json) -> Result<Vec<Ingress>, BadRequest> {
    let items = field(doc, "readings")?
        .as_arr()
        .ok_or_else(|| BadRequest::new("wrong_type", "field 'readings' must be an array"))?;
    if items.is_empty() {
        return Err(BadRequest::new("empty_batch", "readings array is empty"));
    }
    items.iter().map(parse_reading).collect()
}

/// Parses a `POST /tenants/{t}/rules` body:
/// `{"user": "...", "sentence": "If ..."}`.
pub fn parse_rule_submit(doc: &Json) -> Result<(PersonId, String), BadRequest> {
    Ok((
        PersonId::new(str_field(doc, "user")?),
        str_field(doc, "sentence")?,
    ))
}

/// Renders a registration outcome.
pub fn render_outcome(outcome: &SubmitOutcome) -> Json {
    match outcome {
        SubmitOutcome::Registered { id, dead_conjuncts } => Json::obj(vec![
            ("outcome", Json::str("registered")),
            ("rule", Json::Int(id.raw() as i64)),
            (
                "dead_conjuncts",
                Json::Arr(
                    dead_conjuncts
                        .iter()
                        .map(|i| Json::Int(*i as i64))
                        .collect(),
                ),
            ),
        ]),
        SubmitOutcome::RejectedInconsistent { report } => Json::obj(vec![
            ("outcome", Json::str("rejected_inconsistent")),
            ("report", Json::str(report.to_string())),
        ]),
        SubmitOutcome::ConflictDetected { ticket, conflicts } => Json::obj(vec![
            ("outcome", Json::str("conflict_detected")),
            ("ticket", Json::Int(ticket.raw() as i64)),
            (
                "conflicts",
                Json::Arr(conflicts.iter().map(|c| Json::str(c.to_string())).collect()),
            ),
        ]),
        SubmitOutcome::ConditionWordDefined { word } => Json::obj(vec![
            ("outcome", Json::str("condition_word_defined")),
            ("word", Json::str(word.clone())),
        ]),
        SubmitOutcome::ConfigurationWordDefined { word } => Json::obj(vec![
            ("outcome", Json::str("configuration_word_defined")),
            ("word", Json::str(word.clone())),
        ]),
        // `SubmitOutcome` is non-exhaustive: render future variants
        // opaquely rather than failing to compile against them.
        other => Json::obj(vec![
            ("outcome", Json::str("other")),
            ("detail", Json::str(format!("{other:?}"))),
        ]),
    }
}

/// Renders an ingest admission summary.
pub fn render_admissions(admissions: &[Admission], rejected: usize) -> Json {
    let mut enqueued = 0i64;
    let mut coalesced = 0i64;
    let mut after_shed = 0i64;
    for a in admissions {
        match a {
            Admission::Enqueued => enqueued += 1,
            Admission::Coalesced => coalesced += 1,
            Admission::AdmittedAfterShed => after_shed += 1,
        }
    }
    Json::obj(vec![
        ("accepted", Json::Int(enqueued + coalesced + after_shed)),
        ("enqueued", Json::Int(enqueued)),
        ("coalesced", Json::Int(coalesced)),
        ("admitted_after_shed", Json::Int(after_shed)),
        ("rejected", Json::Int(rejected as i64)),
    ])
}

/// Renders the fleet health summary.
pub fn render_fleet_health(health: &FleetHealth) -> Json {
    Json::obj(vec![
        ("healthy", Json::Int(health.healthy as i64)),
        ("quarantined", Json::Int(health.quarantined as i64)),
        ("restarting", Json::Int(health.restarting as i64)),
        ("backlog", Json::Int(health.backlog as i64)),
        ("backpressure", Json::Float(health.backpressure)),
        ("panics", Json::Int(health.panics as i64)),
        ("overruns", Json::Int(health.overruns as i64)),
        ("store_faults", Json::Int(health.store_faults as i64)),
        ("restarts", Json::Int(health.restarts as i64)),
        ("shed", Json::Int(health.shed as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::json::parse;

    #[test]
    fn reading_parses_units_and_values() {
        let doc = parse(
            r#"{"readings":[
                {"device":"thermo-0","variable":"temperature","value":26,"unit":"celsius","at_ms":60000},
                {"device":"door","variable":"locked","value":true,"at_ms":0},
                {"device":"tv","variable":"program","value":"news","at_ms":1}
            ]}"#,
        )
        .unwrap();
        let readings = parse_readings(&doc).unwrap();
        assert_eq!(readings.len(), 3);
        assert_eq!(readings[0].device, DeviceId::new("thermo-0"));
        assert_eq!(readings[0].at, SimTime::from_millis(60_000));
        assert!(matches!(readings[1].value, Value::Bool(true)));
        assert!(matches!(readings[2].value, Value::Text(_)));
    }

    #[test]
    fn reading_rejections_are_typed() {
        let cases = [
            (r#"{"readings":[]}"#, "empty_batch"),
            (r#"{"nope":1}"#, "missing_field"),
            (
                r#"{"readings":[{"device":"d","variable":"v","value":1.5,"at_ms":0}]}"#,
                "float_value",
            ),
            (
                r#"{"readings":[{"device":"d","variable":"v","value":1,"unit":"furlongs","at_ms":0}]}"#,
                "unknown_unit",
            ),
            (
                r#"{"readings":[{"device":"d","variable":"v","value":1,"at_ms":-4}]}"#,
                "wrong_type",
            ),
        ];
        for (body, code) in cases {
            let doc = parse(body).unwrap();
            assert_eq!(parse_readings(&doc).unwrap_err().code, code, "{body}");
        }
    }
}
