//! Frontend tunables: deadlines, caps, shed and rate-limit knobs.

use std::time::Duration;

/// Per-client token-bucket rate limiting (keyed by peer IP).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimitConfig {
    /// Bucket capacity: the burst a client may spend at once.
    pub burst: u32,
    /// Sustained refill rate in requests per second.
    pub per_second: f64,
}

impl Default for RateLimitConfig {
    fn default() -> RateLimitConfig {
        RateLimitConfig {
            burst: 200,
            per_second: 100.0,
        }
    }
}

/// Frontend configuration. Every knob is a robustness boundary; the
/// defaults are sized for a LAN home-server deployment and tests shrink
/// them to provoke the failure paths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApiConfig {
    /// Concurrently open connections. Connection `max_connections + 1`
    /// is answered `503` with `Retry-After` and closed.
    pub max_connections: usize,
    /// Socket read deadline: one `read` may block at most this long.
    pub read_timeout: Duration,
    /// Socket write deadline: a stalled reader cannot hold a write
    /// longer than this.
    pub write_timeout: Duration,
    /// The slow-loris budget: wall time one request may take from first
    /// byte to complete frame, and the keep-alive idle window between
    /// requests.
    pub idle_timeout: Duration,
    /// Cap on request line + headers, in bytes.
    pub max_head_bytes: usize,
    /// Cap on a request body; larger declared lengths are refused
    /// before buffering.
    pub max_body_bytes: usize,
    /// Requests served over one keep-alive connection before the
    /// frontend closes it (resource rotation; 0 = unlimited).
    pub max_requests_per_connection: u64,
    /// Pause after a failed `accept` before retrying, so an fd-exhausted
    /// process degrades to slow acceptance instead of a spin loop.
    pub accept_backoff: Duration,
    /// `Retry-After` seconds advertised on shed (overload, cap, drain)
    /// responses.
    pub retry_after_secs: u64,
    /// Per-client token-bucket rate limit; `None` disables it.
    pub rate_limit: Option<RateLimitConfig>,
    /// Bounded frames queued per event-stream subscriber; a full queue
    /// drops frames (counted) rather than blocking the publisher.
    pub subscriber_queue: usize,
    /// Heartbeat interval on idle event streams (also how often a
    /// subscription notices a draining server).
    pub heartbeat: Duration,
    /// Whether `POST /step` (driving a fleet wave over the wire) is
    /// served. On for simulations, benches and tests; off for
    /// deployments where a scheduler owns the clock.
    pub allow_admin_step: bool,
}

impl Default for ApiConfig {
    fn default() -> ApiConfig {
        ApiConfig {
            max_connections: 256,
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            idle_timeout: Duration::from_millis(10_000),
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
            max_requests_per_connection: 100_000,
            accept_backoff: Duration::from_millis(50),
            retry_after_secs: 1,
            rate_limit: Some(RateLimitConfig::default()),
            subscriber_queue: 256,
            heartbeat: Duration::from_millis(1_000),
            allow_admin_step: true,
        }
    }
}
