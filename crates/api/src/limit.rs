//! Per-client token-bucket rate limiting.

use crate::config::RateLimitConfig;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// One client's bucket.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// A token-bucket limiter keyed by peer IP. `burst` tokens capacity,
/// refilled at `per_second`; each admitted request spends one token.
/// The map is bounded: when it outgrows `MAX_CLIENTS` (4096), buckets
/// at full capacity (i.e. idle clients) are pruned.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

/// Bound on tracked clients before idle buckets are pruned.
const MAX_CLIENTS: usize = 4096;

impl RateLimiter {
    /// Creates a limiter for the given knobs.
    pub fn new(config: RateLimitConfig) -> RateLimiter {
        RateLimiter {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Tries to spend one token for `client`. On refusal, returns the
    /// whole seconds to advertise as `Retry-After` (at least 1).
    pub fn try_admit(&self, client: IpAddr) -> Result<(), u64> {
        self.try_admit_at(client, Instant::now())
    }

    fn try_admit_at(&self, client: IpAddr, now: Instant) -> Result<(), u64> {
        let capacity = f64::from(self.config.burst.max(1));
        let rate = self.config.per_second.max(f64::MIN_POSITIVE);
        let mut buckets = self.buckets.lock().expect("rate limiter lock");
        if buckets.len() >= MAX_CLIENTS && !buckets.contains_key(&client) {
            buckets.retain(|_, b| {
                let refilled =
                    (b.tokens + now.duration_since(b.last).as_secs_f64() * rate).min(capacity);
                refilled < capacity
            });
        }
        let bucket = buckets.entry(client).or_insert(Bucket {
            tokens: capacity,
            last: now,
        });
        bucket.tokens =
            (bucket.tokens + now.duration_since(bucket.last).as_secs_f64() * rate).min(capacity);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            Err((deficit / rate).ceil().max(1.0) as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(127, 0, 0, last))
    }

    #[test]
    fn burst_then_refusal_then_refill() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 3,
            per_second: 2.0,
        });
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(limiter.try_admit_at(ip(1), t0).is_ok());
        }
        let retry = limiter.try_admit_at(ip(1), t0).unwrap_err();
        assert!(retry >= 1);
        // Another client has its own bucket.
        assert!(limiter.try_admit_at(ip(2), t0).is_ok());
        // After a second at 2 rps, two more tokens are available.
        let t1 = t0 + Duration::from_secs(1);
        assert!(limiter.try_admit_at(ip(1), t1).is_ok());
        assert!(limiter.try_admit_at(ip(1), t1).is_ok());
        assert!(limiter.try_admit_at(ip(1), t1).is_err());
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let limiter = RateLimiter::new(RateLimitConfig {
            burst: 2,
            per_second: 1000.0,
        });
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_secs(60);
        assert!(limiter.try_admit_at(ip(3), t0).is_ok());
        // A long idle refills to capacity, not beyond.
        assert!(limiter.try_admit_at(ip(3), t1).is_ok());
        assert!(limiter.try_admit_at(ip(3), t1).is_ok());
        assert!(limiter.try_admit_at(ip(3), t1).is_err());
    }
}
