//! Hostile-input fuzzing for the wire parser: seeded random byte
//! streams, systematic truncations, and byte-flip mutations of valid
//! requests. The contract under test is the robustness headline —
//! every outcome is either a parsed request or a *typed*
//! [`ParseError`]; nothing panics, nothing buffers past its cap.
//!
//! Runs inside the CI determinism matrix: all randomness is seeded,
//! so a failing case replays exactly from the printed seed.

use cadel_api::{ParseError, WireLimits, WireReader};
use cadel_types::Rng;
use std::io::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};

const LIMITS: WireLimits = WireLimits {
    max_head_bytes: 1024,
    max_body_bytes: 4096,
};

/// A well-formed request the mutation cases start from.
const VALID: &[u8] = b"POST /tenants/unit-0000/readings HTTP/1.1\r\n\
Host: cadel\r\n\
Content-Type: application/json\r\n\
Content-Length: 26\r\n\
\r\n\
{\"readings\":[{\"value\":1}]}";

/// Parses one byte stream, classifying the outcome. Panics inside the
/// parser are caught and reported as test failures with the input.
fn parse_outcome(bytes: &[u8]) -> Result<Result<(), ParseError>, String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut reader = WireReader::new(Cursor::new(bytes.to_vec()));
        reader.read_request(&LIMITS, None).map(|_| ())
    }));
    result.map_err(|_| {
        format!(
            "parser panicked on {} bytes: {:?}",
            bytes.len(),
            &bytes[..bytes.len().min(64)]
        )
    })
}

#[test]
fn random_byte_streams_never_panic_and_fail_typed() {
    let mut rng = Rng::new(0xF00D);
    let mut typed = 0usize;
    for case in 0..2_000 {
        let len = rng.below(600) as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            bytes.push((rng.next_u64() & 0xff) as u8);
        }
        match parse_outcome(&bytes) {
            Err(panic) => panic!("case {case}: {panic}"),
            Ok(Err(_)) => typed += 1,
            // A random stream that parses as a request is astronomically
            // unlikely but not wrong.
            Ok(Ok(())) => {}
        }
    }
    assert!(
        typed >= 1_990,
        "random streams should fail typed ({typed}/2000)"
    );
}

#[test]
fn every_truncation_of_a_valid_request_fails_typed() {
    for cut in 0..VALID.len() {
        match parse_outcome(&VALID[..cut]) {
            Err(panic) => panic!("truncation at {cut}: {panic}"),
            Ok(Ok(())) => panic!("truncation at {cut} should not parse"),
            Ok(Err(error)) => {
                // Every truncation is a closed/torn connection — the
                // two prefix-shaped errors — never a misparse.
                assert!(
                    matches!(
                        error,
                        ParseError::ConnectionClosed | ParseError::TornFrame { .. }
                    ),
                    "truncation at {cut}: unexpected error {error:?}"
                );
            }
        }
    }
    // The untruncated request parses.
    assert!(parse_outcome(VALID).expect("no panic").is_ok());
}

#[test]
fn single_byte_flips_never_panic() {
    let mut rng = Rng::new(0xBEEF);
    for case in 0..2_000 {
        let mut bytes = VALID.to_vec();
        let at = rng.below(bytes.len() as u64) as usize;
        bytes[at] ^= (1 + rng.below(255)) as u8;
        if let Err(panic) = parse_outcome(&bytes) {
            panic!("case {case} (flip at {at}): {panic}");
        }
    }
}

#[test]
fn random_splices_of_valid_fragments_never_panic() {
    let mut rng = Rng::new(0xCAFE);
    for case in 0..1_000 {
        let mut bytes = Vec::new();
        for _ in 0..rng.below(6) {
            let a = rng.below(VALID.len() as u64) as usize;
            let b = rng.below(VALID.len() as u64) as usize;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            bytes.extend_from_slice(&VALID[lo..hi]);
        }
        if let Err(panic) = parse_outcome(&bytes) {
            panic!("case {case}: {panic}");
        }
    }
}

#[test]
fn caps_hold_under_hostile_declarations() {
    // A head that never ends is cut at the head cap.
    let mut endless = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
    while endless.len() < 8 * LIMITS.max_head_bytes {
        endless.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    match parse_outcome(&endless).expect("no panic") {
        Err(ParseError::HeadTooLarge { limit }) => assert_eq!(limit, LIMITS.max_head_bytes),
        other => panic!("expected HeadTooLarge, got {other:?}"),
    }

    // A body declared past the cap is refused before buffering.
    let big = b"POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n";
    match parse_outcome(big).expect("no panic") {
        Err(ParseError::BodyTooLarge { length, limit }) => {
            assert_eq!(length, 1_000_000);
            assert_eq!(limit, LIMITS.max_body_bytes);
        }
        other => panic!("expected BodyTooLarge, got {other:?}"),
    }

    // Absurd Content-Length values do not overflow.
    let absurd = b"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n";
    match parse_outcome(absurd).expect("no panic") {
        Err(ParseError::InvalidContentLength | ParseError::BodyTooLarge { .. }) => {}
        other => panic!("expected a typed length error, got {other:?}"),
    }
}
