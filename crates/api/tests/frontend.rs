//! Live-socket integration tests for the hardened frontend: every
//! robustness boundary is provoked over a real TCP connection.

use cadel_api::{subscribe, ApiClient, ApiConfig, ApiServer, RateLimitConfig};
use cadel_fleet::{Fleet, FleetConfig};
use cadel_sim::{tenant_name, unit_tenant_builder};
use cadel_types::json::Json;
use cadel_types::{SimDuration, SimTime};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_minutes(m)
}

fn root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cadel-api-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn unit_fleet(tag: &str, tenants: usize, config: FleetConfig) -> Fleet {
    let mut fleet = Fleet::new(root(tag), config);
    let builder = unit_tenant_builder(None);
    for i in 0..tenants {
        fleet
            .add_tenant_arc(tenant_name(i), builder.clone())
            .expect("tenant builds");
    }
    fleet
}

fn fast_config() -> ApiConfig {
    ApiConfig {
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_millis(800),
        heartbeat: Duration::from_millis(50),
        rate_limit: None,
        ..ApiConfig::default()
    }
}

fn reading(device: &str, variable: &str, value: i64, unit: &str, at: SimTime) -> Json {
    Json::obj(vec![
        ("device", Json::str(device)),
        ("variable", Json::str(variable)),
        ("value", Json::Int(value)),
        ("unit", Json::str(unit)),
        ("at_ms", Json::Int(at.as_millis() as i64)),
    ])
}

fn readings_body(items: Vec<Json>) -> Json {
    Json::obj(vec![("readings", Json::Arr(items))])
}

#[test]
fn routes_health_and_errors() {
    let server = ApiServer::bind(
        "127.0.0.1:0",
        unit_fleet("routes", 1, FleetConfig::default()),
        fast_config(),
    )
    .expect("bind");
    let mut client = ApiClient::connect(server.addr()).expect("connect");

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "ok\n");

    let ready = client.get("/readyz").expect("readyz");
    assert_eq!(ready.status, 200);
    let doc = ready.json().expect("json body");
    assert_eq!(doc.get("ready").and_then(Json::as_bool), Some(true));

    let fleet_health = client.get("/fleet/health").expect("fleet health");
    let doc = fleet_health.json().expect("json body");
    assert_eq!(doc.get("healthy").and_then(Json::as_int), Some(1));

    let tenant = client
        .get("/tenants/unit-0000/health")
        .expect("tenant health");
    assert_eq!(tenant.status, 200);
    let doc = tenant.json().expect("json body");
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("healthy"));

    // Typed misses: unknown tenant, unknown route, malformed body.
    assert_eq!(client.get("/tenants/nope/health").unwrap().status, 404);
    assert_eq!(client.get("/no/such/route").unwrap().status, 404);
    let bad = client
        .post(
            "/tenants/unit-0000/readings",
            &Json::obj(vec![("x", Json::Int(1))]),
        )
        .expect("post");
    assert_eq!(bad.status, 422);

    let rules = client.get("/tenants/unit-0000/rules").expect("rules");
    assert_eq!(rules.status, 200);
    let listing = rules.json().expect("rule export is JSON");
    assert_eq!(
        listing.as_arr().map(<[Json]>::len),
        Some(3),
        "unit tenant exports its three seeded rules"
    );

    let outcome = server.shutdown(Duration::from_secs(5), mins(1));
    assert!(outcome.is_clean(), "{outcome:?}");
}

#[test]
fn readings_fire_rules_and_notify_subscribers() {
    let server = ApiServer::bind(
        "127.0.0.1:0",
        unit_fleet("notify", 1, FleetConfig::default()),
        fast_config(),
    )
    .expect("bind");
    let mut stream =
        subscribe(server.addr(), Some("unit-0000"), Duration::from_secs(5)).expect("subscribe");
    assert!(stream.sid().starts_with("uuid:cadel-"), "{}", stream.sid());

    let mut client = ApiClient::connect(server.addr()).expect("connect");
    let posted = client
        .post(
            "/tenants/unit-0000/readings",
            &readings_body(vec![reading(
                "thermo-0",
                "temperature",
                30,
                "celsius",
                mins(1),
            )]),
        )
        .expect("post readings");
    assert_eq!(posted.status, 202, "{}", posted.text());
    let doc = posted.json().expect("json body");
    assert_eq!(doc.get("accepted").and_then(Json::as_int), Some(1));

    // Drive the wave over the wire and expect the cool rule to fire.
    let stepped = client
        .post(
            "/step",
            &Json::obj(vec![("at_ms", Json::Int(mins(1).as_millis() as i64))]),
        )
        .expect("step");
    assert_eq!(stepped.status, 200, "{}", stepped.text());

    let event = stream
        .next_event()
        .expect("event frame")
        .expect("stream open");
    assert!(
        event.starts_with("NOTIFY") && event.contains("unit-0000") && event.contains("aircon-0"),
        "unexpected frame: {event}"
    );

    // Drain: the subscriber hears GOODBYE before the close.
    let outcome = server.shutdown(Duration::from_secs(5), mins(2));
    assert!(outcome.is_clean(), "{outcome:?}");
    let mut saw_goodbye = false;
    while let Ok(Some(frame)) = stream.next_frame() {
        if frame.starts_with("GOODBYE") {
            saw_goodbye = true;
            break;
        }
    }
    assert!(saw_goodbye, "subscriber should hear GOODBYE on drain");
}

#[test]
fn rule_lifecycle_over_the_wire() {
    let server = ApiServer::bind(
        "127.0.0.1:0",
        unit_fleet("rules", 1, FleetConfig::default()),
        fast_config(),
    )
    .expect("bind");
    let mut client = ApiClient::connect(server.addr()).expect("connect");

    let submitted = client
        .post(
            "/tenants/unit-0000/rules",
            &Json::obj(vec![
                ("user", Json::str("resident")),
                (
                    "sentence",
                    Json::str("If humidity is higher than 80 percent, turn on the lamp."),
                ),
            ]),
        )
        .expect("submit");
    assert!(
        submitted.status == 201 || submitted.status == 409,
        "unexpected: {} {}",
        submitted.status,
        submitted.text()
    );
    let doc = submitted.json().expect("json body");
    let outcome = doc.get("outcome").and_then(Json::as_str).unwrap_or("");

    if outcome == "registered" {
        let id = doc.get("rule").and_then(Json::as_int).expect("rule id");
        // Toggle it off and on, then remove it.
        let toggled = client
            .post(
                &format!("/tenants/unit-0000/rules/{id}/enabled"),
                &Json::obj(vec![("enabled", Json::Bool(false))]),
            )
            .expect("toggle");
        assert_eq!(toggled.status, 200, "{}", toggled.text());
        let removed = client
            .delete(&format!("/tenants/unit-0000/rules/{id}"))
            .expect("remove");
        assert_eq!(removed.status, 200, "{}", removed.text());
        // Removing again is a typed miss.
        let again = client
            .delete(&format!("/tenants/unit-0000/rules/{id}"))
            .expect("remove again");
        assert_eq!(again.status, 404, "{}", again.text());
    }

    // A sentence the language rejects maps to 422, not a hang or 500.
    let garbled = client
        .post(
            "/tenants/unit-0000/rules",
            &Json::obj(vec![
                ("user", Json::str("resident")),
                ("sentence", Json::str("Banana banana banana.")),
            ]),
        )
        .expect("garbled submit");
    assert_eq!(garbled.status, 422, "{}", garbled.text());
    // An unknown user is a typed 404.
    let ghost = client
        .post(
            "/tenants/unit-0000/rules",
            &Json::obj(vec![
                ("user", Json::str("nobody")),
                (
                    "sentence",
                    Json::str("If humidity is higher than 80 percent, turn on the lamp."),
                ),
            ]),
        )
        .expect("ghost submit");
    assert_eq!(ghost.status, 404, "{}", ghost.text());

    drop(server);
}

#[test]
fn hostile_frames_get_typed_refusals_and_service_survives() {
    let server = ApiServer::bind(
        "127.0.0.1:0",
        unit_fleet("hostile", 1, FleetConfig::default()),
        fast_config(),
    )
    .expect("bind");
    let addr = server.addr();

    let send_raw = |bytes: &[u8]| -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let _ = stream.write_all(bytes);
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    };

    // Garbage bytes: typed 400, not a panic.
    let reply = send_raw(b"\xff\xfe\xfdnot http at all\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    // Unsupported method.
    let reply = send_raw(b"BREW /coffee HTTP/1.1\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 405"), "{reply}");
    // Oversized declared body, refused before buffering.
    let reply =
        send_raw(b"POST /tenants/unit-0000/readings HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
    // Oversized head.
    let mut huge = Vec::from(&b"GET /healthz HTTP/1.1\r\n"[..]);
    huge.extend(std::iter::repeat_n(b'a', 9 * 1024));
    let reply = send_raw(&huge);
    assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");
    // Chunked transfer is refused, not misframed.
    let reply = send_raw(b"POST /step HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 501"), "{reply}");
    // Slow loris: a torn head that never completes is answered 408
    // once the idle budget lapses.
    let reply = send_raw(b"GET /healthz HTTP/1.1\r\nHost: partial");
    assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");

    // After all of that, the service still answers cleanly.
    let mut client = ApiClient::connect(addr).expect("connect");
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    let outcome = server.shutdown(Duration::from_secs(5), mins(1));
    assert!(outcome.is_clean(), "{outcome:?}");
}

#[test]
fn rate_limit_and_connection_cap_shed_with_retry_after() {
    let config = ApiConfig {
        max_connections: 2,
        rate_limit: Some(RateLimitConfig {
            burst: 3,
            per_second: 0.5,
        }),
        ..fast_config()
    };
    let server = ApiServer::bind(
        "127.0.0.1:0",
        unit_fleet("limits", 1, FleetConfig::default()),
        config,
    )
    .expect("bind");
    // The subscriber takes one connection slot (and one token) first,
    // before the bucket is exhausted below.
    let _stream = subscribe(server.addr(), None, Duration::from_secs(5)).expect("subscribe");
    let mut client = ApiClient::connect(server.addr()).expect("connect");

    // /healthz is exempt; /fleet/health is not. Tokens refill at 0.5/s,
    // so the burst of 3 (minus the subscription) runs dry quickly.
    let mut limited = None;
    for _ in 0..5 {
        let response = client.get("/fleet/health").expect("request");
        if response.status == 429 {
            limited = Some(response);
            break;
        }
        assert_eq!(response.status, 200);
    }
    let limited = limited.expect("token bucket should refuse within the burst");
    assert!(
        limited.retry_after().is_some(),
        "429 must carry Retry-After"
    );
    assert_eq!(client.get("/healthz").expect("exempt").status, 200);

    // Connection cap: the subscriber holds one slot, the client above
    // the second; the third connection is refused 503.
    let mut third = TcpStream::connect(server.addr()).expect("connect");
    third
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut reply = String::new();
    let _ = third.read_to_string(&mut reply);
    assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
    assert!(
        reply.to_ascii_lowercase().contains("retry-after"),
        "{reply}"
    );

    drop(server);
}

#[test]
fn overload_sheds_with_retry_after_until_stepped() {
    // Tiny inboxes and a low watermark: a handful of distinct-variable
    // readings saturates the fleet.
    let fleet_config = FleetConfig {
        inbox_capacity: 4,
        backpressure_watermark: 0.5,
        ..FleetConfig::default()
    };
    let server = ApiServer::bind(
        "127.0.0.1:0",
        unit_fleet("overload", 1, fleet_config),
        fast_config(),
    )
    .expect("bind");
    let mut client = ApiClient::connect(server.addr()).expect("connect");

    // Non-coalescible entries (distinct variables) fill the inbox.
    let fill = readings_body(
        (0..4)
            .map(|i| reading("thermo-0", &format!("aux-{i}"), i, "celsius", mins(1)))
            .collect(),
    );
    let filled = client
        .post("/tenants/unit-0000/readings", &fill)
        .expect("fill");
    assert_eq!(filled.status, 202, "{}", filled.text());

    // Past the watermark: admission is refused with Retry-After.
    let shed = client
        .post(
            "/tenants/unit-0000/readings",
            &readings_body(vec![reading(
                "thermo-0",
                "temperature",
                30,
                "celsius",
                mins(1),
            )]),
        )
        .expect("shed post");
    assert_eq!(shed.status, 503, "{}", shed.text());
    assert!(
        shed.retry_after().is_some(),
        "503 shed must carry Retry-After"
    );
    let ready = client.get("/readyz").expect("readyz");
    assert_eq!(ready.status, 503, "readyz must reflect overload");

    // One wave drains the backlog; admission recovers.
    server.step_fleet(mins(2));
    let recovered = client
        .post(
            "/tenants/unit-0000/readings",
            &readings_body(vec![reading(
                "thermo-0",
                "temperature",
                22,
                "celsius",
                mins(3),
            )]),
        )
        .expect("recovered post");
    assert_eq!(recovered.status, 202, "{}", recovered.text());

    let outcome = server.shutdown(Duration::from_secs(5), mins(4));
    assert!(outcome.is_clean(), "{outcome:?}");
}

#[test]
fn shutdown_drains_checkpoints_and_persists() {
    let dir = root("drain");
    let mut fleet = Fleet::new(&dir, FleetConfig::default());
    let builder = unit_tenant_builder(None);
    fleet
        .add_tenant_arc(tenant_name(0), builder.clone())
        .expect("tenant builds");
    let server = ApiServer::bind("127.0.0.1:0", fleet, fast_config()).expect("bind");
    let mut client = ApiClient::connect(server.addr()).expect("connect");
    let posted = client
        .post(
            "/tenants/unit-0000/readings",
            &readings_body(vec![reading(
                "thermo-0",
                "temperature",
                30,
                "celsius",
                mins(1),
            )]),
        )
        .expect("post");
    assert_eq!(posted.status, 202);

    // Shutdown must flush the queued reading (firing the cool rule)
    // and checkpoint durably.
    let outcome = server.shutdown(Duration::from_secs(10), mins(1));
    assert!(outcome.is_clean(), "{outcome:?}");
    assert!(outcome.fleet.drained);

    // A fresh fleet over the same root recovers the tenant from its
    // WAL — the admitted work survived the process.
    let mut reopened = Fleet::new(&dir, FleetConfig::default());
    reopened
        .add_tenant_arc(tenant_name(0), builder)
        .expect("tenant rebuilds from WAL");
    let snapshot = reopened
        .server_of(&tenant_name(0))
        .expect("healthy")
        .snapshot_json()
        .to_compact();
    assert!(
        snapshot.contains("aircon-0"),
        "recovered state should know the fired aircon: {snapshot}"
    );
}
