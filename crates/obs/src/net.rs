//! The network-frontend metric family.
//!
//! A socket frontend (`cadel-api`, or any future transport) reports its
//! health through one shared, centrally-declared family so dashboards
//! and tests can rely on the names regardless of which frontend serves
//! the traffic. All handles are the usual gated statics: one relaxed
//! load and a no-op branch while observability is off.
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `api_connections_open` | gauge | currently accepted TCP connections |
//! | `api_connections_total` | counter | connections accepted since boot |
//! | `api_requests_total` | counter | requests parsed and routed |
//! | `api_shed_total` | counter | requests refused for overload (watermark, connection cap, drain) |
//! | `api_rate_limited_total` | counter | requests refused by the per-client token bucket |
//! | `api_parse_errors_total` | counter | connections that produced a typed wire/body parse error |
//! | `api_timeouts_total` | counter | connections dropped by read/write/idle deadlines |
//! | `api_worker_panics_total` | counter | request-handler panics caught by the connection supervisor |
//! | `api_subscribers_open` | gauge | live event-stream subscriptions |
//! | `api_events_dropped_total` | counter | event-stream frames dropped on slow subscribers |
//! | `api_request_ns` | histogram | wall time from request fully parsed to response queued |

use crate::{LazyCounter, LazyGauge, LazyHistogram};

/// Currently open (accepted, not yet closed) connections.
pub static API_CONNECTIONS_OPEN: LazyGauge = LazyGauge::new("api_connections_open");
/// Connections accepted since boot.
pub static API_CONNECTIONS_TOTAL: LazyCounter = LazyCounter::new("api_connections_total");
/// Requests parsed and routed to a handler.
pub static API_REQUESTS_TOTAL: LazyCounter = LazyCounter::new("api_requests_total");
/// Requests refused for overload: fleet backpressure watermark, the
/// connection cap, or a draining server.
pub static API_SHED_TOTAL: LazyCounter = LazyCounter::new("api_shed_total");
/// Requests refused by the per-client token bucket.
pub static API_RATE_LIMITED_TOTAL: LazyCounter = LazyCounter::new("api_rate_limited_total");
/// Connections whose byte stream produced a typed parse error (torn
/// frame, oversized line/body, malformed header or JSON payload).
pub static API_PARSE_ERRORS_TOTAL: LazyCounter = LazyCounter::new("api_parse_errors_total");
/// Connections dropped by a read/write deadline or the slow-loris idle
/// timeout.
pub static API_TIMEOUTS_TOTAL: LazyCounter = LazyCounter::new("api_timeouts_total");
/// Request-handler panics contained by the per-connection supervisor
/// (the connection answers 500 and lives on; nothing escapes).
pub static API_WORKER_PANICS_TOTAL: LazyCounter = LazyCounter::new("api_worker_panics_total");
/// Live event-stream (GENA-like) subscriptions.
pub static API_SUBSCRIBERS_OPEN: LazyGauge = LazyGauge::new("api_subscribers_open");
/// Event-stream frames dropped because a subscriber's bounded queue was
/// full (slow consumer); the subscriber is marked lagged, never the
/// publisher blocked.
pub static API_EVENTS_DROPPED_TOTAL: LazyCounter = LazyCounter::new("api_events_dropped_total");
/// Wall time from request fully parsed to response queued on the socket.
pub static API_REQUEST_NS: LazyHistogram = LazyHistogram::new("api_request_ns");
