//! Structured events, spans and the collector interface.

use std::fmt::Write as _;
use std::time::Instant;

/// Severity of an [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// High-volume pipeline detail (per-step spans).
    Debug,
    /// Normal operational milestones (rule registered, device dispatched).
    Info,
    /// Degradations worth surfacing (AST fallback, dispatch failure).
    Warn,
    /// Hard failures.
    Error,
}

impl Level {
    /// The logfmt label.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A field value attached to an event. Small closed set so sinks can render
/// without reflection.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Text.
    Str(String),
    /// Unsigned integer (ids, counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Duration in nanoseconds (rendered with a unit suffix).
    DurationNs(u64),
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> FieldValue {
        FieldValue::Str(s.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(s: String) -> FieldValue {
        FieldValue::Str(s)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

/// One structured event. Span ends are events whose `elapsed_ns` is set.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Dotted event name, e.g. `engine.step` or `engine.ast_fallback`.
    pub name: &'static str,
    /// Severity.
    pub level: Level,
    /// Wall-clock duration for span-end events, `None` for point events.
    pub elapsed_ns: Option<u64>,
    /// Key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Creates a point event with no fields.
    pub fn new(name: &'static str, level: Level) -> Event {
        Event {
            name,
            level,
            elapsed_ns: None,
            fields: Vec::new(),
        }
    }

    /// Adds a field (builder style).
    pub fn with_field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Whether this event is the end of a span.
    pub fn is_span(&self) -> bool {
        self.elapsed_ns.is_some()
    }
}

/// Receives events from instrumented code. Implementations must be cheap
/// and non-blocking: collectors run inline on the hot paths.
pub trait Collector: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);
}

/// An RAII span: created at the top of a pipeline stage, emits a
/// duration-stamped [`Event`] on drop. When observability is disabled the
/// constructor reads no clock and the drop does nothing.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    level: Level,
    start: Option<Instant>,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// Starts a span at [`Level::Debug`] (the level of per-step detail).
    pub fn new(name: &'static str) -> Span {
        Span::with_level(name, Level::Debug)
    }

    /// Starts a span at an explicit level.
    pub fn with_level(name: &'static str, level: Level) -> Span {
        Span {
            name,
            level,
            start: crate::enabled().then(Instant::now),
            fields: Vec::new(),
        }
    }

    /// Whether the span is live (observability was enabled at creation).
    /// Use to skip building expensive field values.
    pub fn active(&self) -> bool {
        self.start.is_some()
    }

    /// Attaches a field to the span-end event. No-op on inactive spans.
    pub fn add_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::emit(Event {
                name: self.name,
                level: self.level,
                elapsed_ns: Some(elapsed_ns),
                fields: std::mem::take(&mut self.fields),
            });
        }
    }
}

fn push_duration(out: &mut String, ns: u64) {
    if ns >= 1_000_000_000 {
        let _ = write!(out, "{:.3}s", ns as f64 / 1e9);
    } else if ns >= 1_000_000 {
        let _ = write!(out, "{:.3}ms", ns as f64 / 1e6);
    } else if ns >= 1_000 {
        let _ = write!(out, "{:.3}us", ns as f64 / 1e3);
    } else {
        let _ = write!(out, "{ns}ns");
    }
}

fn logfmt_escape(out: &mut String, s: &str) {
    if s.contains([' ', '"', '=']) || s.is_empty() {
        let _ = write!(out, "{s:?}");
    } else {
        out.push_str(s);
    }
}

/// Renders one event as a logfmt line (`level=info event=... k=v ...`),
/// without a trailing newline.
pub fn format_logfmt(event: &Event) -> String {
    let mut out = String::with_capacity(64);
    let _ = write!(out, "level={} event=", event.level.as_str());
    logfmt_escape(&mut out, event.name);
    if let Some(ns) = event.elapsed_ns {
        out.push_str(" elapsed=");
        push_duration(&mut out, ns);
    }
    for (key, value) in &event.fields {
        let _ = write!(out, " {key}=");
        match value {
            FieldValue::Str(s) => logfmt_escape(&mut out, s),
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::DurationNs(ns) => push_duration(&mut out, *ns),
        }
    }
    out
}

fn json_escape(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one event as a single JSON object (one JSON-lines record),
/// without a trailing newline.
pub fn format_json(event: &Event) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(out, "{{\"level\":\"{}\",\"event\":", event.level.as_str());
    json_escape(&mut out, event.name);
    if let Some(ns) = event.elapsed_ns {
        let _ = write!(out, ",\"elapsed_ns\":{ns}");
    }
    for (key, value) in &event.fields {
        out.push(',');
        json_escape(&mut out, key);
        out.push(':');
        match value {
            FieldValue::Str(s) => json_escape(&mut out, s),
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::DurationNs(ns) => {
                let _ = write!(out, "{ns}");
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logfmt_renders_fields_and_escapes() {
        let event = Event::new("upnp.invoke_failed", Level::Warn)
            .with_field("device", "tv lr")
            .with_field("attempts", 3u64)
            .with_field("fatal", false)
            .with_field("took", FieldValue::DurationNs(1_500));
        let line = format_logfmt(&event);
        assert_eq!(
            line,
            "level=warn event=upnp.invoke_failed device=\"tv lr\" attempts=3 fatal=false took=1.500us"
        );
    }

    #[test]
    fn json_renders_valid_records() {
        let event = Event::new("engine.ast_fallback", Level::Warn)
            .with_field("rule", 7u64)
            .with_field("label", "say \"hi\"");
        let line = format_json(&event);
        assert_eq!(
            line,
            "{\"level\":\"warn\",\"event\":\"engine.ast_fallback\",\"rule\":7,\"label\":\"say \\\"hi\\\"\"}"
        );
    }

    // Inactive-span behaviour (no clock read, no emission while disabled)
    // is asserted in `tests/disabled_noop.rs` alongside the other
    // disabled-path guarantees.

    #[test]
    fn duration_formatting_picks_units() {
        let mut s = String::new();
        push_duration(&mut s, 999);
        assert_eq!(s, "999ns");
        s.clear();
        push_duration(&mut s, 2_500_000);
        assert_eq!(s, "2.500ms");
        s.clear();
        push_duration(&mut s, 3_200_000_000);
        assert_eq!(s, "3.200s");
    }
}
