//! # cadel-obs — hand-rolled observability for the CADEL pipeline
//!
//! The framework runs continuously in a home server: events arrive, rules
//! fire, conflicts are arbitrated. Smart-home rule systems are diagnosed
//! through their firing and conflict traces, so every stage of the
//! parse → check → execute pipeline is instrumented with this crate. It is
//! deliberately zero-dependency (the workspace builds fully offline) and
//! splits into two layers:
//!
//! * **Structured events and spans** ([`event`], [`collect`]) — a pluggable
//!   [`Collector`] receives [`Event`]s; [`Span`] is an RAII guard that
//!   emits a duration-stamped event on drop. A ring-buffer in-memory
//!   collector ([`RingCollector`]) serves trace queries, a text sink
//!   ([`TextSink`]) renders logfmt or JSON lines.
//! * **Metrics** ([`mod@metrics`]) — a registry of atomic counters, gauges and
//!   fixed-bucket log-linear latency histograms with p50/p95/p99 summaries
//!   and a Prometheus-style text exposition.
//!
//! # Cost when disabled
//!
//! All instrumentation sites go through the gated handles ([`LazyCounter`],
//! [`LazyGauge`], [`LazyHistogram`], [`Span`], [`Stopwatch`], [`event`]
//! emission via [`emit`]): each checks one relaxed atomic load
//! ([`enabled`]) and takes the no-op branch when no collector is installed,
//! so the hot paths pay a branch and nothing else — no clocks are read, no
//! registry entries are created, no allocation happens. See the
//! `disabled_path_is_noop` test and the `obs_overhead` bench.
//!
//! # Example
//!
//! ```
//! use cadel_obs as obs;
//! use std::sync::Arc;
//!
//! let ring = Arc::new(obs::RingCollector::new(256));
//! obs::install(ring.clone());
//!
//! static FIRINGS: obs::LazyCounter = obs::LazyCounter::new("engine_firings_total");
//! FIRINGS.add(3);
//! {
//!     let mut span = obs::Span::new("engine.step");
//!     span.add_field("firings", obs::FieldValue::U64(3));
//! } // span end event emitted here
//!
//! assert_eq!(ring.events_named("engine.step").len(), 1);
//! assert_eq!(obs::metrics().snapshot().counter("engine_firings_total"), Some(3));
//! obs::shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod event;
pub mod metrics;
pub mod net;
pub mod rollup;

pub use collect::{Fanout, RingCollector, TextFormat, TextSink, TimedEvent};
pub use event::{format_json, format_logfmt, Collector, Event, FieldValue, Level, Span};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, LazyCounter, LazyGauge, LazyHistogram,
    MetricsRegistry, MetricsSnapshot, Stopwatch,
};
pub use rollup::{NoisyNeighbourRollup, TenantLoad};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// The process-wide on/off switch. Relaxed loads of this flag are the only
/// cost instrumentation sites pay while observability is off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed collector, if any. Kept separate from [`ENABLED`] so the
/// hot-path guard stays a single relaxed atomic load.
static COLLECTOR: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);

/// The process-wide metrics registry.
static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// Whether any instrumentation is active. Instrumentation sites call this
/// (directly or through the gated handles) and take the no-op branch when
/// it returns `false`.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a collector and switches instrumentation on. Replaces any
/// previously installed collector.
pub fn install(collector: Arc<dyn Collector>) {
    *COLLECTOR.write().expect("collector lock poisoned") = Some(collector);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Switches instrumentation on without a collector: metrics record, events
/// are dropped. Useful when only the counters/histograms matter.
pub fn enable_metrics_only() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Switches all instrumentation off and drops the installed collector.
/// Metrics already recorded in the global registry are retained.
pub fn shutdown() {
    ENABLED.store(false, Ordering::SeqCst);
    *COLLECTOR.write().expect("collector lock poisoned") = None;
}

/// The process-wide metrics registry all [`LazyCounter`]/[`LazyGauge`]/
/// [`LazyHistogram`] handles bind into.
pub fn metrics() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// A [`MetricsSnapshot`] of the global registry — the programmatic query
/// surface re-exported by `cadel-server`.
pub fn metrics_snapshot() -> MetricsSnapshot {
    metrics().snapshot()
}

/// Sends one event to the installed collector. No-op (beyond one relaxed
/// load) when disabled; events are dropped in metrics-only mode.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    let collector = COLLECTOR.read().expect("collector lock poisoned").clone();
    if let Some(collector) = collector {
        collector.record(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global install/shutdown is process state, so every phase of the
    // lifecycle lives in this single test (unit tests in this binary run
    // concurrently).
    #[test]
    fn install_emit_shutdown_lifecycle() {
        assert!(!enabled());
        // Disabled: emission is dropped without a collector ever seeing it.
        emit(Event::new("dropped", Level::Info));

        let ring = Arc::new(RingCollector::new(8));
        install(ring.clone());
        assert!(enabled());
        emit(Event::new("kept", Level::Info));
        assert_eq!(ring.len(), 1);

        shutdown();
        assert!(!enabled());
        emit(Event::new("dropped again", Level::Info));
        assert_eq!(ring.len(), 1);

        // Metrics-only mode records metrics but drops events.
        enable_metrics_only();
        static C: LazyCounter = LazyCounter::new("obs_lifecycle_test_total");
        C.add(2);
        emit(Event::new("no collector", Level::Info));
        assert_eq!(ring.len(), 1);
        assert_eq!(
            metrics().snapshot().counter("obs_lifecycle_test_total"),
            Some(2)
        );
        shutdown();
    }
}
