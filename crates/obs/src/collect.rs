//! Collectors: a bounded in-memory ring buffer for trace queries and a
//! text sink rendering logfmt or JSON lines.

use crate::event::{format_json, format_logfmt, Collector, Event, Level};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// An [`Event`] with its capture sequence number (monotone per collector,
/// so trace queries can order and diff).
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// 0-based capture index.
    pub seq: u64,
    /// The event.
    pub event: Event,
}

struct RingState {
    events: VecDeque<TimedEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded in-memory collector: keeps the most recent `capacity` events
/// and counts what it had to drop. This is the trace-query backend used by
/// tests and the simulator.
pub struct RingCollector {
    capacity: usize,
    state: Mutex<RingState>,
}

impl RingCollector {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> RingCollector {
        RingCollector {
            capacity: capacity.max(1),
            state: Mutex::new(RingState {
                events: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.state.lock().expect("ring lock").events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("ring lock").dropped
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.state
            .lock()
            .expect("ring lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// The buffered events with the given name, oldest first.
    pub fn events_named(&self, name: &str) -> Vec<TimedEvent> {
        self.state
            .lock()
            .expect("ring lock")
            .events
            .iter()
            .filter(|t| t.event.name == name)
            .cloned()
            .collect()
    }

    /// Clears the buffer (the sequence counter keeps running).
    pub fn clear(&self) {
        self.state.lock().expect("ring lock").events.clear();
    }
}

impl Collector for RingCollector {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("ring lock");
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.events.push_back(TimedEvent {
            seq,
            event: event.clone(),
        });
    }
}

/// Output syntax of a [`TextSink`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TextFormat {
    /// `level=info event=name k=v` lines.
    Logfmt,
    /// One JSON object per line.
    JsonLines,
}

/// A collector that renders each event as one text line into any
/// `Write + Send` target (stdout, a file, a shared buffer in tests).
pub struct TextSink {
    format: TextFormat,
    min_level: Level,
    writer: Mutex<Box<dyn Write + Send>>,
}

impl TextSink {
    /// Creates a sink over an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>, format: TextFormat) -> TextSink {
        TextSink {
            format,
            min_level: Level::Debug,
            writer: Mutex::new(writer),
        }
    }

    /// A logfmt sink onto standard output.
    pub fn stdout() -> TextSink {
        TextSink::new(Box::new(std::io::stdout()), TextFormat::Logfmt)
    }

    /// Drops events below `level` (e.g. keep a live sink readable by
    /// filtering out the per-step `Debug` spans).
    pub fn with_min_level(mut self, level: Level) -> TextSink {
        self.min_level = level;
        self
    }
}

impl Collector for TextSink {
    fn record(&self, event: &Event) {
        if event.level < self.min_level {
            return;
        }
        let line = match self.format {
            TextFormat::Logfmt => format_logfmt(event),
            TextFormat::JsonLines => format_json(event),
        };
        let mut writer = self.writer.lock().expect("sink lock");
        // A sink must never take down the pipeline it observes.
        let _ = writeln!(writer, "{line}");
    }
}

/// Duplicates every event to several collectors (e.g. a ring for queries
/// plus a live logfmt sink).
pub struct Fanout(Vec<std::sync::Arc<dyn Collector>>);

impl Fanout {
    /// Creates a fanout over the given collectors.
    pub fn new(collectors: Vec<std::sync::Arc<dyn Collector>>) -> Fanout {
        Fanout(collectors)
    }
}

impl Collector for Fanout {
    fn record(&self, event: &Event) {
        for c in &self.0 {
            c.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write target tests can read back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let ring = RingCollector::new(2);
        for name in ["a", "b", "c"] {
            ring.record(&Event::new(name, Level::Info));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let events = ring.events();
        assert_eq!(events[0].event.name, "b");
        assert_eq!(events[1].event.name, "c");
        assert_eq!(events[1].seq, 2);
        assert_eq!(ring.events_named("c").len(), 1);
        assert!(ring.events_named("a").is_empty());
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn text_sink_writes_lines_and_filters_levels() {
        let buf = SharedBuf::default();
        let sink =
            TextSink::new(Box::new(buf.clone()), TextFormat::Logfmt).with_min_level(Level::Info);
        sink.record(&Event::new("kept", Level::Warn).with_field("n", 1u64));
        sink.record(&Event::new("filtered", Level::Debug));
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text, "level=warn event=kept n=1\n");

        let jbuf = SharedBuf::default();
        let jsink = TextSink::new(Box::new(jbuf.clone()), TextFormat::JsonLines);
        jsink.record(&Event::new("j", Level::Info));
        let jtext = String::from_utf8(jbuf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(jtext, "{\"level\":\"info\",\"event\":\"j\"}\n");
    }

    #[test]
    fn fanout_duplicates_to_all() {
        let a = Arc::new(RingCollector::new(8));
        let b = Arc::new(RingCollector::new(8));
        let fan = Fanout::new(vec![a.clone(), b.clone()]);
        fan.record(&Event::new("x", Level::Info));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
