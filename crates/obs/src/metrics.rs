//! Atomic counters, gauges and fixed-bucket latency histograms.
//!
//! Two layers:
//!
//! * **Handles** ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s onto
//!   lock-free cells. Their operations are *unconditional* — they work on
//!   any [`MetricsRegistry`] (or standalone, see
//!   [`Histogram::standalone`], which the bench harness uses so bench and
//!   runtime numbers share one bucket scheme).
//! * **Gated statics** ([`LazyCounter`], [`LazyGauge`], [`LazyHistogram`])
//!   are what instrumentation sites declare. Each op first checks
//!   [`crate::enabled`] with one relaxed load and takes the no-op branch
//!   when observability is off; the first enabled op binds the handle into
//!   the global registry.
//!
//! Histograms are log-linear: exact below 16, then 16 linear sub-buckets
//! per power of two (≤ 1/16 relative quantization error), covering the
//! full `u64` range in 976 buckets. Quantiles report the upper bound of
//! the bucket containing the requested rank.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Histogram bucket scheme
// ---------------------------------------------------------------------------

/// Values below this are their own (exact) bucket.
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per power of two above [`LINEAR_MAX`].
const SUB_BUCKETS: usize = 16;
/// Total bucket count: 16 exact + 60 octaves × 16 sub-buckets.
const NUM_BUCKETS: usize = LINEAR_MAX as usize + 60 * SUB_BUCKETS;

/// The bucket index of a value.
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize; // >= 4
    let octave = msb - 4;
    let sub = ((value >> (msb - 4)) & 0xF) as usize;
    LINEAR_MAX as usize + octave * SUB_BUCKETS + sub
}

/// The inclusive upper bound of a bucket.
fn bucket_upper(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        return index as u64;
    }
    let octave = (index - LINEAR_MAX as usize) / SUB_BUCKETS;
    let sub = ((index - LINEAR_MAX as usize) % SUB_BUCKETS) as u64;
    let lower = (LINEAR_MAX + sub) << octave;
    lower + ((1u64 << octave) - 1)
}

// ---------------------------------------------------------------------------
// Cells and handles
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct HistogramCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> HistogramCell {
        HistogramCell {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency/value histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Creates a histogram not bound to any registry. The bench harness
    /// records its samples through this, so bench and runtime latencies
    /// share one bucket scheme and quantile definition.
    pub fn standalone() -> Histogram {
        Histogram(Arc::new(HistogramCell::new()))
    }

    /// Records one value.
    ///
    /// The bucket is bumped before the total count, so a concurrent
    /// [`Histogram::summary`] (which reads the count first) never sees a
    /// count exceeding the bucket sum.
    pub fn observe(&self, value: u64) {
        let cell = &self.0;
        cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(value, Ordering::Relaxed);
        cell.max.fetch_max(value, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A consistent point-in-time summary with quantiles.
    pub fn summary(&self, name: &str) -> HistogramSummary {
        let cell = &self.0;
        // Read count before buckets: observe() bumps buckets first, so the
        // bucket sum is always >= this count and quantile ranks resolve.
        let count = cell.count.load(Ordering::Relaxed);
        let sum = cell.sum.load(Ordering::Relaxed);
        let max = cell.max.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, b) in cell.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                buckets.push((bucket_upper(i), cumulative));
            }
        }
        HistogramSummary {
            name: name.to_owned(),
            count,
            sum,
            max,
            buckets,
        }
    }
}

/// Point-in-time histogram state: cumulative non-empty buckets plus
/// aggregates, with quantiles computed over the buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// `(inclusive upper bound, cumulative count)` for each non-empty
    /// bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSummary {
    /// The total over the bucket distribution (≥ `count` under concurrent
    /// recording; quantiles use this total so they are self-consistent).
    fn bucket_total(&self) -> u64 {
        self.buckets.last().map(|(_, c)| *c).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q · total)`-th smallest sample. Zero when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.bucket_total();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        for (upper, cumulative) in &self.buckets {
            if *cumulative >= rank {
                return (*upper).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics. One process-wide instance lives behind
/// [`crate::metrics()`]; tests construct their own.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<RegistryInner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().expect("metrics lock").counters.get(name) {
            return c.clone();
        }
        let mut inner = self.inner.write().expect("metrics lock");
        inner
            .counters
            .entry(name.to_owned())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.read().expect("metrics lock").gauges.get(name) {
            return g.clone();
        }
        let mut inner = self.inner.write().expect("metrics lock");
        inner
            .gauges
            .entry(name.to_owned())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self
            .inner
            .read()
            .expect("metrics lock")
            .histograms
            .get(name)
        {
            return h.clone();
        }
        let mut inner = self.inner.write().expect("metrics lock");
        inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::standalone)
            .clone()
    }

    /// A point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read().expect("metrics lock");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.value()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.value()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| h.summary(name))
                .collect(),
        }
    }
}

/// A point-in-time copy of a registry's metrics — the query API exposed
/// through `cadel-server`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, name-ordered.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, name-ordered.
    pub histograms: Vec<HistogramSummary>,
}

impl MetricsSnapshot {
    /// The value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The summary of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (counters as `_total` values, histograms as cumulative `_bucket`
    /// series over the non-empty buckets plus `+Inf`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for h in &self.histograms {
            let name = &h.name;
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (upper, cumulative) in &h.buckets {
                let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
            }
            let total = h.bucket_total();
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Gated instrumentation statics
// ---------------------------------------------------------------------------

/// A `static`-friendly counter that binds into the global registry on
/// first *enabled* use. While observability is off, [`LazyCounter::add`]
/// is one relaxed load and a branch.
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    /// Declares a counter by metric name.
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` when enabled; no-op otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| crate::metrics().counter(self.name))
            .add(n);
    }

    /// Increments by one when enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Whether the handle has ever bound into the registry — `false` while
    /// every call so far took the disabled no-op branch.
    pub fn is_bound(&self) -> bool {
        self.cell.get().is_some()
    }
}

/// A `static`-friendly gauge; see [`LazyCounter`] for the gating contract.
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Gauge>,
}

impl LazyGauge {
    /// Declares a gauge by metric name.
    pub const fn new(name: &'static str) -> LazyGauge {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Sets the gauge when enabled; no-op otherwise.
    #[inline]
    pub fn set(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| crate::metrics().gauge(self.name))
            .set(v);
    }

    /// Adds `delta` (may be negative) when enabled; no-op otherwise.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| crate::metrics().gauge(self.name))
            .add(delta);
    }

    /// Whether the handle has ever bound into the registry.
    pub fn is_bound(&self) -> bool {
        self.cell.get().is_some()
    }
}

/// A `static`-friendly histogram; see [`LazyCounter`] for the gating
/// contract.
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Histogram>,
}

impl LazyHistogram {
    /// Declares a histogram by metric name.
    pub const fn new(name: &'static str) -> LazyHistogram {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Records a value when enabled; no-op otherwise.
    #[inline]
    pub fn observe(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell
            .get_or_init(|| crate::metrics().histogram(self.name))
            .observe(value);
    }

    /// Records the elapsed time of a [`Stopwatch`] started while enabled.
    /// A stopwatch started while disabled records nothing.
    #[inline]
    pub fn record(&self, stopwatch: &Stopwatch) {
        if let Some(ns) = stopwatch.elapsed_ns() {
            self.observe(ns);
        }
    }

    /// Whether the handle has ever bound into the registry.
    pub fn is_bound(&self) -> bool {
        self.cell.get().is_some()
    }
}

/// A gated wall-clock timer: reads the clock only when observability is
/// enabled at start, so disabled hot paths never touch `Instant::now`.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts timing when enabled; inert otherwise.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch(crate::enabled().then(Instant::now))
    }

    /// A stopwatch that never ran (for conditional timing paths).
    pub const fn inert() -> Stopwatch {
        Stopwatch(None)
    }

    /// Whether the stopwatch is timing.
    pub fn active(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since start, `None` when inert.
    #[inline]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0
            .map(|start| u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_and_gauges_round_trip() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("requests_total");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("requests_total").value(), 5);
        let g = registry.gauge("queue_depth");
        g.set(7);
        g.add(-2);
        assert_eq!(registry.gauge("queue_depth").value(), 5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("requests_total"), Some(5));
        assert_eq!(snap.gauge("queue_depth"), Some(5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let registry = Arc::new(MetricsRegistry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let registry = Arc::clone(&registry);
                thread::spawn(move || {
                    let c = registry.counter("hammered_total");
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            registry.counter("hammered_total").value(),
            THREADS as u64 * PER_THREAD
        );
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact_below_16_and_tight_above() {
        // Exact region: every value is its own bucket.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
        // Values exactly on a bucket edge land in the bucket whose range
        // starts there, and the bucket bounds bracket the value with at
        // most 1/16 relative width.
        for edge in [16u64, 17, 31, 32, 1024, 1025, 1 << 40, u64::MAX] {
            let idx = bucket_index(edge);
            let upper = bucket_upper(idx);
            assert!(upper >= edge, "upper {upper} < value {edge}");
            // Lower bound of this bucket = upper of previous + 1.
            let lower = if idx == 0 {
                0
            } else {
                bucket_upper(idx - 1) + 1
            };
            assert!(lower <= edge, "lower {lower} > value {edge}");
            assert!(
                (upper - lower) as f64 <= (edge as f64 / 16.0).max(1.0),
                "bucket [{lower}, {upper}] too wide for {edge}"
            );
        }
        // Bucket uppers strictly increase (no overlap, no gaps).
        for i in 1..NUM_BUCKETS {
            assert!(bucket_upper(i) > bucket_upper(i - 1));
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_are_within_bucket_error() {
        let h = Histogram::standalone();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.summary("t");
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // 1/16 log-linear quantization: p50 ∈ [500, 531], p99 ∈ [990, 1052].
        let p50 = s.p50();
        assert!((500..=532).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((990..=1056).contains(&p99), "p99 = {p99}");
        // Quantiles never exceed the recorded max.
        assert!(s.p95() <= 1000);
        assert_eq!(s.quantile(1.0), 1000);
        // Mean is exact (sum and count are exact).
        assert!((s.mean() - 500.5).abs() < f64::EPSILON);
    }

    #[test]
    fn snapshot_while_recording_is_consistent() {
        let registry = Arc::new(MetricsRegistry::new());
        let stop = Arc::new(AtomicU64::new(0));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let h = registry.histogram("live_ns");
                    let c = registry.counter("live_total");
                    let mut v = 1u64 + t;
                    while stop.load(Ordering::Relaxed) == 0 {
                        h.observe(v % 10_000);
                        c.inc();
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                })
            })
            .collect();
        let mut last_count = 0u64;
        for _ in 0..50 {
            let snap = registry.snapshot();
            let h = snap.histogram("live_ns").unwrap();
            // Counts are monotone across snapshots.
            assert!(h.count >= last_count);
            last_count = h.count;
            // The bucket distribution always covers at least `count`
            // samples (buckets are bumped before the count).
            assert!(h.bucket_total() >= h.count);
            // Quantiles resolve on the live distribution without panicking
            // and stay within the observed value range.
            assert!(h.p99() < 16_384);
        }
        stop.store(1, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        let end = registry.snapshot();
        let h = end.histogram("live_ns").unwrap();
        // Quiescent: distribution and count agree exactly.
        assert_eq!(h.bucket_total(), h.count);
        assert_eq!(end.counter("live_total"), Some(h.count));
    }

    #[test]
    fn prometheus_exposition_renders_all_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("engine_steps_total").add(3);
        registry.gauge("engine_heldfor_tracked").set(2);
        let h = registry.histogram("engine_step_duration_ns");
        h.observe(5);
        h.observe(700);
        let text = registry.snapshot().render_prometheus();
        assert!(text.contains("# TYPE engine_steps_total counter"));
        assert!(text.contains("engine_steps_total 3"));
        assert!(text.contains("engine_heldfor_tracked 2"));
        assert!(text.contains("# TYPE engine_step_duration_ns histogram"));
        assert!(text.contains("engine_step_duration_ns_bucket{le=\"5\"} 1"));
        assert!(text.contains("engine_step_duration_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("engine_step_duration_ns_sum 705"));
        assert!(text.contains("engine_step_duration_ns_count 2"));
    }

    // The disabled no-op-branch contract is asserted in
    // `tests/disabled_noop.rs`: it needs the global enabled flag to stay
    // off, which only a dedicated test binary can guarantee.

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::standalone();
        let s = h.summary("empty");
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
