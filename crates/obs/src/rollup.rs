//! Fleet rollups: per-tenant load accounting and noisy-neighbour ranking.
//!
//! A fleet host multiplexes thousands of tenants over one worker pool, so
//! fleet-level aggregates (p99 step latency, total sheds) can hide one
//! tenant consuming the pool. This module accumulates per-tenant
//! contributions — step wall time, firings, sheds, panics — and ranks the
//! heaviest tenants deterministically, for the `fleet` crate's health
//! report and for operators asking "who is eating my workers?".
//!
//! The rollup is plain data, not a global: the owner (one `Fleet`) feeds
//! it and reads it, so no locking or atomics are needed and resets are
//! explicit. Global counters/gauges stay in [`crate::metrics()`].

use std::collections::BTreeMap;

/// Accumulated load attributed to one tenant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantLoad {
    /// Steps executed.
    pub steps: u64,
    /// Host wall time spent inside this tenant's steps, in nanoseconds.
    pub step_nanos: u64,
    /// Rule firings dispatched.
    pub firings: u64,
    /// Inbox entries shed by admission control.
    pub shed: u64,
    /// Panics caught by the supervisor.
    pub panics: u64,
}

impl TenantLoad {
    /// A blame score for noisy-neighbour ranking: wall time dominates,
    /// but a tenant that panics or forces shedding is noisy even when
    /// each of its steps is cheap (the disruption lands on *other*
    /// tenants' latency). Panics and sheds are weighted as fixed time
    /// equivalents — 1 ms per panic, 10 µs per shed entry.
    pub fn score(&self) -> u64 {
        self.step_nanos
            .saturating_add(self.panics.saturating_mul(1_000_000))
            .saturating_add(self.shed.saturating_mul(10_000))
    }
}

/// Per-tenant accumulator with deterministic top-K ranking.
#[derive(Clone, Debug, Default)]
pub struct NoisyNeighbourRollup {
    loads: BTreeMap<String, TenantLoad>,
}

impl NoisyNeighbourRollup {
    /// An empty rollup.
    pub fn new() -> NoisyNeighbourRollup {
        NoisyNeighbourRollup::default()
    }

    /// Records one completed step for `tenant`.
    pub fn note_step(&mut self, tenant: &str, nanos: u64, firings: u64) {
        let load = self.entry(tenant);
        load.steps += 1;
        load.step_nanos = load.step_nanos.saturating_add(nanos);
        load.firings += firings;
    }

    /// Records `count` inbox entries shed for `tenant`.
    pub fn note_shed(&mut self, tenant: &str, count: u64) {
        self.entry(tenant).shed += count;
    }

    /// Records one caught panic for `tenant`.
    pub fn note_panic(&mut self, tenant: &str) {
        self.entry(tenant).panics += 1;
    }

    fn entry(&mut self, tenant: &str) -> &mut TenantLoad {
        if !self.loads.contains_key(tenant) {
            self.loads.insert(tenant.to_owned(), TenantLoad::default());
        }
        self.loads.get_mut(tenant).expect("inserted above")
    }

    /// The accumulated load of one tenant.
    pub fn load(&self, tenant: &str) -> TenantLoad {
        self.loads.get(tenant).copied().unwrap_or_default()
    }

    /// Number of tenants with any recorded load.
    pub fn tenant_count(&self) -> usize {
        self.loads.len()
    }

    /// Total step wall time across all tenants, in nanoseconds.
    pub fn total_step_nanos(&self) -> u64 {
        self.loads
            .values()
            .fold(0u64, |acc, l| acc.saturating_add(l.step_nanos))
    }

    /// The `k` noisiest tenants by [`TenantLoad::score`], descending;
    /// ties break by tenant name ascending so the ranking is
    /// deterministic across runs.
    pub fn top(&self, k: usize) -> Vec<(String, TenantLoad)> {
        let mut ranked: Vec<(String, TenantLoad)> = self
            .loads
            .iter()
            .map(|(name, load)| (name.clone(), *load))
            .collect();
        ranked.sort_by(|a, b| b.1.score().cmp(&a.1.score()).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Renders the top-`k` ranking as one logfmt-ish line per tenant,
    /// with each tenant's share of total step time.
    pub fn render_top(&self, k: usize) -> String {
        let total = self.total_step_nanos().max(1);
        let mut out = String::new();
        for (name, load) in self.top(k) {
            let share = (load.step_nanos as f64 / total as f64) * 100.0;
            out.push_str(&format!(
                "tenant={name} share={share:.1}% steps={} firings={} shed={} panics={}\n",
                load.steps, load.firings, load.shed, load.panics
            ));
        }
        out
    }

    /// Clears all accumulated load (start of a new reporting window).
    pub fn reset(&mut self) {
        self.loads.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_tenant() {
        let mut r = NoisyNeighbourRollup::new();
        r.note_step("t0", 100, 2);
        r.note_step("t0", 50, 0);
        r.note_shed("t0", 3);
        r.note_panic("t1");
        assert_eq!(
            r.load("t0"),
            TenantLoad {
                steps: 2,
                step_nanos: 150,
                firings: 2,
                shed: 3,
                panics: 0,
            }
        );
        assert_eq!(r.load("t1").panics, 1);
        assert_eq!(r.load("missing"), TenantLoad::default());
        assert_eq!(r.tenant_count(), 2);
        assert_eq!(r.total_step_nanos(), 150);
    }

    #[test]
    fn top_ranks_by_score_with_deterministic_ties() {
        let mut r = NoisyNeighbourRollup::new();
        r.note_step("cheap", 10, 0);
        r.note_step("hog", 1_000_000, 1);
        // Panicky tenant: little wall time, but each panic scores 1 ms.
        r.note_step("panicky", 20, 0);
        r.note_panic("panicky");
        r.note_panic("panicky");
        // Tie pair: identical loads rank alphabetically.
        r.note_step("tie-b", 500, 0);
        r.note_step("tie-a", 500, 0);

        let names: Vec<String> = r.top(10).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["panicky", "hog", "tie-a", "tie-b", "cheap"]);
        assert_eq!(r.top(2).len(), 2);

        let rendered = r.render_top(1);
        assert!(rendered.starts_with("tenant=panicky "));
        assert!(rendered.contains("panics=2"));
    }

    #[test]
    fn reset_clears_the_window() {
        let mut r = NoisyNeighbourRollup::new();
        r.note_step("t0", 100, 0);
        r.reset();
        assert_eq!(r.tenant_count(), 0);
        assert!(r.top(5).is_empty());
    }
}
