//! Asserts the disabled-collector overhead contract: with no collector
//! installed, every instrumentation entry point takes the no-op branch —
//! gated handles never bind into the registry, stopwatches and spans never
//! read a clock, and nothing is recorded.
//!
//! This lives in its own test binary so nothing else can flip the
//! process-wide enabled flag underneath the assertions.

use cadel_obs::{LazyCounter, LazyGauge, LazyHistogram, Span, Stopwatch};

static COUNTER: LazyCounter = LazyCounter::new("noop_counter_total");
static GAUGE: LazyGauge = LazyGauge::new("noop_gauge");
static HISTOGRAM: LazyHistogram = LazyHistogram::new("noop_hist_ns");

#[test]
fn disabled_collector_path_takes_the_noop_branch() {
    assert!(!cadel_obs::enabled());

    // Gated metric handles: record nothing and never bind.
    COUNTER.add(10);
    COUNTER.inc();
    GAUGE.set(5);
    HISTOGRAM.observe(123);
    assert!(!COUNTER.is_bound());
    assert!(!GAUGE.is_bound());
    assert!(!HISTOGRAM.is_bound());

    // Stopwatch: inert — no clock was read, so there is nothing to record.
    let sw = Stopwatch::start();
    assert!(!sw.active());
    assert_eq!(sw.elapsed_ns(), None);
    HISTOGRAM.record(&sw);
    assert!(!HISTOGRAM.is_bound());

    // Span: inactive, field building is skipped, drop emits nothing.
    let mut span = Span::new("quiet.span");
    assert!(!span.active());
    span.add_field("ignored", 1u64);
    drop(span);

    // Point-event emission is dropped before touching any collector.
    cadel_obs::emit(cadel_obs::Event::new("dropped", cadel_obs::Level::Info));

    // The global registry never saw any of it.
    let snap = cadel_obs::metrics_snapshot();
    assert_eq!(snap.counter("noop_counter_total"), None);
    assert_eq!(snap.gauge("noop_gauge"), None);
    assert!(snap.histogram("noop_hist_ns").is_none());
}
