//! The virtual device abstraction.

use crate::description::DeviceDescription;
use crate::error::UpnpError;
use crate::event::EventPublisher;
use cadel_types::{SimTime, Value};

/// A simulated UPnP device: something that can describe itself, execute
/// actions, and answer state queries.
///
/// Implementations live in `cadel-devices` (air conditioner, TV, lights,
/// sensors, …). Devices must be thread-safe: the registry shares them
/// behind `Arc`.
pub trait VirtualDevice: Send + Sync {
    /// The device's description document.
    fn description(&self) -> DeviceDescription;

    /// Invokes an action with named arguments; returns named outputs.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownAction`] for actions absent from the
    /// description, [`UpnpError::InvalidArgument`] /
    /// [`UpnpError::RangeViolation`] for bad inputs, and
    /// [`UpnpError::DeviceFault`] for device-specific failures.
    fn invoke(
        &self,
        action: &str,
        args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError>;

    /// Reads the current value of a state variable.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownVariable`] for undeclared variables.
    fn query(&self, variable: &str) -> Result<Value, UpnpError>;

    /// Hands the device its event publisher. Called once at registration;
    /// the default implementation ignores it (for devices that never
    /// publish).
    fn attach(&self, _publisher: EventPublisher) {}

    /// Advances the device's internal simulation to `now` (temperature
    /// drift, timers, …). Default: nothing to simulate.
    fn tick(&self, _now: SimTime) {}
}
