//! UPnP substrate errors.

use cadel_types::{DeviceId, ValueKind};
use std::error::Error;
use std::fmt;

/// Errors returned by the simulated UPnP layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UpnpError {
    /// No device with this UDN is registered.
    UnknownDevice(DeviceId),
    /// A device is already registered under this UDN.
    DuplicateDevice(DeviceId),
    /// The device does not offer the invoked action.
    UnknownAction {
        /// The target device.
        device: DeviceId,
        /// The action name that was not found.
        action: String,
    },
    /// The device has no such state variable.
    UnknownVariable {
        /// The target device.
        device: DeviceId,
        /// The variable name that was not found.
        variable: String,
    },
    /// An action argument had the wrong type.
    InvalidArgument {
        /// The action being invoked.
        action: String,
        /// The offending argument.
        argument: String,
        /// The expected value kind.
        expected: ValueKind,
    },
    /// A value fell outside the variable's allowed range or value list.
    RangeViolation {
        /// The variable.
        variable: String,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The device rejected the command for a device-specific reason.
    DeviceFault(String),
    /// The event subscription id is unknown or already cancelled.
    UnknownSubscription(u64),
}

impl fmt::Display for UpnpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpnpError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            UpnpError::DuplicateDevice(d) => write!(f, "device {d} is already registered"),
            UpnpError::UnknownAction { device, action } => {
                write!(f, "device {device} has no action {action:?}")
            }
            UpnpError::UnknownVariable { device, variable } => {
                write!(f, "device {device} has no state variable {variable:?}")
            }
            UpnpError::InvalidArgument {
                action,
                argument,
                expected,
            } => write!(
                f,
                "argument {argument:?} of action {action:?} expects a {expected:?} value"
            ),
            UpnpError::RangeViolation { variable, detail } => {
                write!(f, "value for {variable:?} out of range: {detail}")
            }
            UpnpError::DeviceFault(msg) => write!(f, "device fault: {msg}"),
            UpnpError::UnknownSubscription(sid) => {
                write!(f, "unknown event subscription {sid}")
            }
        }
    }
}

impl Error for UpnpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<UpnpError>();
        let e = UpnpError::UnknownAction {
            device: DeviceId::new("tv"),
            action: "Fly".into(),
        };
        assert!(e.to_string().contains("Fly"));
    }
}
