//! SSDP discovery simulation.
//!
//! Real UPnP control points discover devices by multicasting an `M-SEARCH`
//! with a search target (`ST`) header and collecting unicast responses
//! that arrive within the `MX` deadline, each device delaying its reply by
//! a random amount in `[0, MX]` to avoid a response storm.
//!
//! This module reproduces those semantics over the in-process
//! [`Registry`]: a [`SsdpClient::search`] matches the same `ST` classes
//! (all, root, UDN, device type, service type) and assigns each responder
//! a deterministic pseudo-random **simulated** delay. The delays do not
//! block the caller — they are returned in the response metadata, and a
//! deadline simply filters out responses that would have missed it. This
//! preserves the *behavioural* shape of SSDP (which devices answer, in
//! what order, what a short MX truncates) while keeping the benchmarked
//! lookup cost purely in the registry, exactly the part the paper's E1
//! experiment times.

use crate::registry::Registry;
use cadel_types::{DeviceId, SimDuration};

/// An SSDP search target (the `ST` header).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchTarget {
    /// `ssdp:all` — every device.
    All,
    /// `upnp:rootdevice` — every root device (all of ours are roots).
    RootDevice,
    /// A specific UDN.
    Udn(DeviceId),
    /// All devices of a device type URN.
    DeviceType(String),
    /// All devices hosting a service type URN.
    ServiceType(String),
}

/// One discovery response.
#[derive(Clone, Debug, PartialEq)]
pub struct SsdpResponse {
    /// The responding device.
    pub udn: DeviceId,
    /// The simulated unicast response delay in `[0, mx]`.
    pub delay: SimDuration,
    /// The simulated description URL (`LOCATION` header).
    pub location: String,
}

/// A simulated SSDP control-point socket over a registry.
#[derive(Clone)]
pub struct SsdpClient {
    registry: Registry,
    /// Seed for deterministic per-device delays.
    seed: u64,
}

impl SsdpClient {
    /// Creates a client over a registry with a deterministic delay seed.
    pub fn new(registry: Registry, seed: u64) -> SsdpClient {
        SsdpClient { registry, seed }
    }

    /// Performs an `M-SEARCH`: returns the devices matching `target`
    /// whose simulated response delay falls within `mx`, sorted by delay
    /// (arrival order on a real network).
    pub fn search(&self, target: &SearchTarget, mx: SimDuration) -> Vec<SsdpResponse> {
        let udns: Vec<DeviceId> = match target {
            SearchTarget::All | SearchTarget::RootDevice => self
                .registry
                .descriptions()
                .into_iter()
                .map(|d| d.udn().clone())
                .collect(),
            SearchTarget::Udn(udn) => {
                if self.registry.description(udn).is_ok() {
                    vec![udn.clone()]
                } else {
                    Vec::new()
                }
            }
            SearchTarget::DeviceType(t) => self.registry.find_by_device_type(t),
            SearchTarget::ServiceType(t) => self.registry.find_by_service_type(t),
        };
        let mut responses: Vec<SsdpResponse> = udns
            .into_iter()
            .map(|udn| {
                let delay = self.delay_for(&udn);
                let location = format!("http://sim.local/{udn}/description.xml");
                SsdpResponse {
                    udn,
                    delay,
                    location,
                }
            })
            .filter(|r| r.delay <= mx)
            .collect();
        responses.sort_by_key(|r| (r.delay, r.udn.clone()));
        responses
    }

    /// Deterministic pseudo-random delay in `[0, 3 s]` (the conventional
    /// SSDP response window) derived from the seed and the UDN
    /// (split-mix style hash). Searches with a shorter MX miss the slower
    /// responders, like on a real network.
    fn delay_for(&self, udn: &DeviceId) -> SimDuration {
        const RESPONSE_WINDOW: SimDuration = SimDuration::from_secs(3);
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in udn.as_str().bytes() {
            h = h.wrapping_add(b as u64);
            h ^= h >> 30;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 27;
            h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
            h ^= h >> 31;
        }
        let span = RESPONSE_WINDOW.as_millis();
        SimDuration::from_millis(h % (span + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::{DeviceDescription, ServiceDescription};
    use crate::device::VirtualDevice;
    use crate::error::UpnpError;
    use cadel_types::{SimTime, Value};
    use std::sync::Arc;

    struct Stub(DeviceDescription);

    impl VirtualDevice for Stub {
        fn description(&self) -> DeviceDescription {
            self.0.clone()
        }
        fn invoke(
            &self,
            action: &str,
            _args: &[(String, Value)],
            _at: SimTime,
        ) -> Result<Vec<(String, Value)>, UpnpError> {
            Err(UpnpError::DeviceFault(action.to_owned()))
        }
        fn query(&self, variable: &str) -> Result<Value, UpnpError> {
            Err(UpnpError::UnknownVariable {
                device: self.0.udn().clone(),
                variable: variable.to_owned(),
            })
        }
    }

    fn fleet(n: usize) -> Registry {
        let registry = Registry::new();
        for i in 0..n {
            let kind = if i % 2 == 0 { "lamp" } else { "sensor" };
            let d = DeviceDescription::new(
                format!("dev-{i}"),
                format!("Device {i}"),
                format!("urn:cadel:device:{kind}:1"),
            )
            .with_service(ServiceDescription::new(
                format!("svc-{i}"),
                format!("urn:cadel:service:{kind}:1"),
            ));
            registry.register(Arc::new(Stub(d))).unwrap();
        }
        registry
    }

    #[test]
    fn search_all_finds_everyone_with_generous_mx() {
        let client = SsdpClient::new(fleet(10), 42);
        let responses = client.search(&SearchTarget::All, SimDuration::from_secs(3));
        assert_eq!(responses.len(), 10);
        // Sorted by simulated arrival.
        for pair in responses.windows(2) {
            assert!(pair[0].delay <= pair[1].delay);
        }
        assert!(responses[0].location.contains("description.xml"));
    }

    #[test]
    fn short_mx_truncates_responses() {
        let client = SsdpClient::new(fleet(50), 42);
        let all = client.search(&SearchTarget::All, SimDuration::from_secs(3));
        let short = client.search(&SearchTarget::All, SimDuration::from_millis(300));
        assert_eq!(all.len(), 50);
        assert!(short.len() < all.len());
        // Every short-MX responder would also answer the long search.
        for r in &short {
            assert!(all.iter().any(|a| a.udn == r.udn));
        }
    }

    #[test]
    fn search_by_udn_and_types() {
        let client = SsdpClient::new(fleet(10), 1);
        let mx = SimDuration::from_secs(3);
        let one = client.search(&SearchTarget::Udn(DeviceId::new("dev-3")), mx);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].udn.as_str(), "dev-3");
        let ghost = client.search(&SearchTarget::Udn(DeviceId::new("dev-99")), mx);
        assert!(ghost.is_empty());
        let lamps = client.search(
            &SearchTarget::DeviceType("urn:cadel:device:lamp:1".into()),
            mx,
        );
        assert_eq!(lamps.len(), 5);
        let sensors = client.search(
            &SearchTarget::ServiceType("urn:cadel:service:sensor:1".into()),
            mx,
        );
        assert_eq!(sensors.len(), 5);
    }

    #[test]
    fn delays_are_deterministic_per_seed() {
        let registry = fleet(5);
        let a = SsdpClient::new(registry.clone(), 7);
        let b = SsdpClient::new(registry.clone(), 7);
        let c = SsdpClient::new(registry, 8);
        let mx = SimDuration::from_secs(3);
        assert_eq!(
            a.search(&SearchTarget::All, mx),
            b.search(&SearchTarget::All, mx)
        );
        // A different seed shuffles delays (with overwhelming likelihood).
        assert_ne!(
            a.search(&SearchTarget::All, mx)
                .iter()
                .map(|r| r.delay)
                .collect::<Vec<_>>(),
            c.search(&SearchTarget::All, mx)
                .iter()
                .map(|r| r.delay)
                .collect::<Vec<_>>()
        );
    }
}
