//! The control point: validated action invocation and state queries.

use crate::description::DeviceDescription;
use crate::error::UpnpError;
use crate::event::Subscription;
use crate::registry::Registry;
use crate::ssdp::{SearchTarget, SsdpClient, SsdpResponse};
use cadel_obs::{Event, LazyCounter, LazyHistogram, Level, Stopwatch};
use cadel_types::{DeviceId, SimDuration, SimTime, Value};

/// Action invocations attempted through any control point.
static INVOKES: LazyCounter = LazyCounter::new("upnp_invokes_total");
/// Invocations that failed (validation or device error).
static INVOKE_FAILURES: LazyCounter = LazyCounter::new("upnp_invoke_failures_total");
/// Wall-clock latency of one invocation, validation included.
static INVOKE_NS: LazyHistogram = LazyHistogram::new("upnp_invoke_duration_ns");

/// A UPnP control point over the simulated network: discovery, action
/// invocation (validated against the device description), state queries
/// and event subscription.
///
/// This is the component the rule execution module drives (paper §4.1:
/// "we use the UPnP library to retrieve sensors and actuators, to obtain
/// data from the sensors, and to interact with actuators").
#[derive(Clone)]
pub struct ControlPoint {
    registry: Registry,
    ssdp: SsdpClient,
}

impl ControlPoint {
    /// Creates a control point over a registry.
    pub fn new(registry: Registry) -> ControlPoint {
        let ssdp = SsdpClient::new(registry.clone(), 0xCADE1);
        ControlPoint { registry, ssdp }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// SSDP discovery with the given search target and MX deadline.
    pub fn discover(&self, target: &SearchTarget, mx: SimDuration) -> Vec<SsdpResponse> {
        self.ssdp.search(target, mx)
    }

    /// Fetches a device's description document.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownDevice`] for unknown UDNs.
    pub fn describe(&self, udn: &DeviceId) -> Result<DeviceDescription, UpnpError> {
        self.registry.description(udn)
    }

    /// Invokes an action on a device after validating it against the
    /// description: the action must exist and every supplied argument must
    /// match a declared input of the right kind.
    ///
    /// # Errors
    ///
    /// * [`UpnpError::UnknownDevice`] / [`UpnpError::UnknownAction`] for
    ///   bad targets,
    /// * [`UpnpError::InvalidArgument`] for undeclared or mistyped
    ///   arguments,
    /// * whatever the device itself raises.
    pub fn invoke(
        &self,
        udn: &DeviceId,
        action: &str,
        args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        let sw = Stopwatch::start();
        INVOKES.inc();
        let result = self.invoke_inner(udn, action, args, at);
        INVOKE_NS.record(&sw);
        if let Err(err) = &result {
            INVOKE_FAILURES.inc();
            if cadel_obs::enabled() {
                cadel_obs::emit(
                    Event::new("upnp.invoke_failed", Level::Warn)
                        .with_field("device", udn.as_str())
                        .with_field("action", action)
                        .with_field("error", err.to_string()),
                );
            }
        }
        result
    }

    fn invoke_inner(
        &self,
        udn: &DeviceId,
        action: &str,
        args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        let description = self.registry.description(udn)?;
        let (_, signature) =
            description
                .find_action(action)
                .ok_or_else(|| UpnpError::UnknownAction {
                    device: udn.clone(),
                    action: action.to_owned(),
                })?;
        for (name, value) in args {
            let spec = signature
                .input(name)
                .ok_or_else(|| UpnpError::InvalidArgument {
                    action: action.to_owned(),
                    argument: name.clone(),
                    expected: value.kind(),
                })?;
            if spec.kind() != value.kind() {
                return Err(UpnpError::InvalidArgument {
                    action: action.to_owned(),
                    argument: name.clone(),
                    expected: spec.kind(),
                });
            }
        }
        let device = self.registry.device(udn)?;
        device.invoke(action, args, at)
    }

    /// Reads a state variable of a device.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownDevice`] or
    /// [`UpnpError::UnknownVariable`].
    pub fn query(&self, udn: &DeviceId, variable: &str) -> Result<Value, UpnpError> {
        let device = self.registry.device(udn)?;
        device.query(variable)
    }

    /// Subscribes to property-change events of one device (GENA
    /// SUBSCRIBE).
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownDevice`] for unknown UDNs.
    pub fn subscribe(&self, udn: &DeviceId) -> Result<Subscription, UpnpError> {
        // Verify the device exists first, like a real SUBSCRIBE would 404.
        self.registry.description(udn)?;
        Ok(self.registry.event_bus().subscribe(Some(udn.clone())))
    }

    /// Subscribes to property changes from every device.
    pub fn subscribe_all(&self) -> Subscription {
        self.registry.event_bus().subscribe(None)
    }

    /// Advances every registered device's simulation clock.
    pub fn tick_all(&self, now: SimTime) {
        for description in self.registry.descriptions() {
            if let Ok(device) = self.registry.device(description.udn()) {
                device.tick(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::{ActionSignature, ArgSpec, ServiceDescription, StateVariableSpec};
    use crate::device::VirtualDevice;
    use crate::event::EventPublisher;
    use cadel_types::{Quantity, Unit, ValueKind};
    use std::sync::Arc;
    use std::sync::Mutex;

    /// A switchable lamp that publishes power changes.
    struct Lamp {
        description: DeviceDescription,
        power: Mutex<bool>,
        publisher: Mutex<Option<EventPublisher>>,
    }

    impl Lamp {
        fn new(udn: &str) -> Arc<Lamp> {
            let description = DeviceDescription::new(udn, "Lamp", "urn:cadel:device:lamp:1")
                .with_service(
                    ServiceDescription::new("sw", "urn:cadel:service:switch:1")
                        .with_action(ActionSignature::new("TurnOn"))
                        .with_action(ActionSignature::new("TurnOff"))
                        .with_action(
                            ActionSignature::new("SetBrightness")
                                .with_arg(ArgSpec::input("level", ValueKind::Number)),
                        )
                        .with_variable(StateVariableSpec::new("power", ValueKind::Bool)),
                );
            Arc::new(Lamp {
                description,
                power: Mutex::new(false),
                publisher: Mutex::new(None),
            })
        }
    }

    impl VirtualDevice for Lamp {
        fn description(&self) -> DeviceDescription {
            self.description.clone()
        }

        fn invoke(
            &self,
            action: &str,
            _args: &[(String, Value)],
            at: SimTime,
        ) -> Result<Vec<(String, Value)>, UpnpError> {
            let value = match action.to_ascii_lowercase().as_str() {
                "turnon" => true,
                "turnoff" => false,
                "setbrightness" => return Ok(vec![]),
                _ => {
                    return Err(UpnpError::UnknownAction {
                        device: self.description.udn().clone(),
                        action: action.to_owned(),
                    })
                }
            };
            *self.power.lock().unwrap() = value;
            if let Some(p) = self.publisher.lock().unwrap().as_ref() {
                p.publish("power", Value::Bool(value), at);
            }
            Ok(vec![])
        }

        fn query(&self, variable: &str) -> Result<Value, UpnpError> {
            if variable.eq_ignore_ascii_case("power") {
                Ok(Value::Bool(*self.power.lock().unwrap()))
            } else {
                Err(UpnpError::UnknownVariable {
                    device: self.description.udn().clone(),
                    variable: variable.to_owned(),
                })
            }
        }

        fn attach(&self, publisher: EventPublisher) {
            *self.publisher.lock().unwrap() = Some(publisher);
        }
    }

    fn setup() -> (ControlPoint, DeviceId) {
        let registry = Registry::new();
        let udn = registry.register(Lamp::new("lamp-1")).unwrap();
        (ControlPoint::new(registry), udn)
    }

    #[test]
    fn invoke_and_query_round_trip() {
        let (cp, udn) = setup();
        assert_eq!(cp.query(&udn, "power").unwrap(), Value::Bool(false));
        cp.invoke(&udn, "TurnOn", &[], SimTime::EPOCH).unwrap();
        assert_eq!(cp.query(&udn, "power").unwrap(), Value::Bool(true));
    }

    #[test]
    fn invoke_validates_action_and_args() {
        let (cp, udn) = setup();
        assert!(matches!(
            cp.invoke(&udn, "SelfDestruct", &[], SimTime::EPOCH),
            Err(UpnpError::UnknownAction { .. })
        ));
        // Wrong argument name.
        let err = cp
            .invoke(
                &udn,
                "SetBrightness",
                &[("wattage".to_owned(), Value::Bool(true))],
                SimTime::EPOCH,
            )
            .unwrap_err();
        assert!(matches!(err, UpnpError::InvalidArgument { .. }));
        // Wrong argument type.
        let err = cp
            .invoke(
                &udn,
                "SetBrightness",
                &[("level".to_owned(), Value::Bool(true))],
                SimTime::EPOCH,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            UpnpError::InvalidArgument {
                expected: ValueKind::Number,
                ..
            }
        ));
        // Correct invocation.
        cp.invoke(
            &udn,
            "SetBrightness",
            &[(
                "level".to_owned(),
                Value::Number(Quantity::from_integer(50, Unit::Percent)),
            )],
            SimTime::EPOCH,
        )
        .unwrap();
    }

    #[test]
    fn events_flow_to_subscribers() {
        let (cp, udn) = setup();
        let sub = cp.subscribe(&udn).unwrap();
        cp.invoke(&udn, "TurnOn", &[], SimTime::from_millis(5))
            .unwrap();
        let changes = sub.drain();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].variable, "power");
        assert_eq!(changes[0].value, Value::Bool(true));
        assert_eq!(changes[0].at, SimTime::from_millis(5));
    }

    #[test]
    fn subscribe_to_missing_device_fails() {
        let (cp, _) = setup();
        assert!(matches!(
            cp.subscribe(&DeviceId::new("ghost")),
            Err(UpnpError::UnknownDevice(_))
        ));
    }

    #[test]
    fn discovery_through_control_point() {
        let (cp, udn) = setup();
        let found = cp.discover(&SearchTarget::All, SimDuration::from_secs(3));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].udn, udn);
    }
}
