//! A simulated UPnP substrate for the CADEL framework.
//!
//! The paper's prototype ran on CyberLink UPnP for Java with 50 *virtual
//! UPnP devices*; this crate is the equivalent substrate, entirely
//! in-process (see DESIGN.md for the substitution argument):
//!
//! * [`DeviceDescription`] / [`ServiceDescription`] — the information real
//!   UPnP publishes as XML description documents (friendly names, device
//!   and service type URNs, action signatures, state variable tables with
//!   allowed ranges).
//! * [`VirtualDevice`] — the trait concrete appliances implement
//!   (`cadel-devices` ships a whole home's worth).
//! * [`Registry`] — registration plus the indexed lookups (by name,
//!   device type, service type, location, keyword) that experiment E1
//!   times.
//! * [`SsdpClient`] — `M-SEARCH` semantics with deterministic simulated
//!   response delays and MX truncation.
//! * [`ControlPoint`] — validated action invocation, state queries,
//!   discovery and GENA-style event subscription over the [`EventBus`].
//!
//! # Example
//!
//! ```
//! use cadel_upnp::{ControlPoint, Registry, SearchTarget};
//! use cadel_types::SimDuration;
//!
//! let registry = Registry::new();
//! let cp = ControlPoint::new(registry);
//! let found = cp.discover(&SearchTarget::All, SimDuration::from_secs(3));
//! assert!(found.is_empty()); // nothing registered yet
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod description;
pub mod device;
pub mod error;
pub mod event;
pub mod fault;
pub mod registry;
pub mod ssdp;

pub use control::ControlPoint;
pub use description::{
    ActionSignature, ArgSpec, DeviceDescription, Direction, ServiceDescription, StateVariableSpec,
};
pub use device::VirtualDevice;
pub use error::UpnpError;
pub use event::{EventBus, EventPublisher, PropertyChange, PublishGate, Subscription};
pub use fault::{FaultKind, FaultPlan, FaultStats, FaultWindow, FaultyDevice};
pub use registry::Registry;
pub use ssdp::{SearchTarget, SsdpClient, SsdpResponse};
