//! GENA-style eventing: property-change notifications over channels.
//!
//! UPnP devices publish state-variable changes to subscribed control
//! points. Here a [`EventBus`] fans property changes out to per-
//! subscription mpsc channels; a subscription may be scoped to one
//! device or observe everything.

use crate::error::UpnpError;
use cadel_types::{DeviceId, SimTime, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::sync::Mutex;

/// One property-change notification.
#[derive(Clone, Debug, PartialEq)]
pub struct PropertyChange {
    /// The device whose variable changed.
    pub device: DeviceId,
    /// The state variable name.
    pub variable: String,
    /// The new value.
    pub value: Value,
    /// Monotonic sequence number (per bus).
    pub seq: u64,
    /// Simulated timestamp of the change.
    pub at: SimTime,
}

#[derive(Debug)]
struct SubscriptionEntry {
    sid: u64,
    scope: Option<DeviceId>,
    sender: Sender<PropertyChange>,
}

/// The shared event bus devices publish through.
#[derive(Clone, Debug, Default)]
pub struct EventBus {
    inner: Arc<BusInner>,
}

#[derive(Debug, Default)]
struct BusInner {
    subscriptions: Mutex<Vec<SubscriptionEntry>>,
    next_sid: AtomicU64,
    next_seq: AtomicU64,
}

/// A live event subscription: the receiving end of the channel plus the
/// subscription id used to cancel it.
#[derive(Debug)]
pub struct Subscription {
    sid: u64,
    receiver: Receiver<PropertyChange>,
    bus: EventBus,
}

impl Subscription {
    /// The subscription id (UPnP "SID").
    pub fn sid(&self) -> u64 {
        self.sid
    }

    /// The channel of notifications.
    pub fn receiver(&self) -> &Receiver<PropertyChange> {
        &self.receiver
    }

    /// Drains all currently queued notifications.
    pub fn drain(&self) -> Vec<PropertyChange> {
        let mut out = Vec::new();
        while let Ok(change) = self.receiver.try_recv() {
            out.push(change);
        }
        out
    }

    /// Cancels the subscription.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownSubscription`] when already cancelled.
    pub fn cancel(self) -> Result<(), UpnpError> {
        self.bus.unsubscribe(self.sid)
    }
}

/// A publish filter: decides per `(variable, value, at)` whether a
/// notification may go out. Used by fault injection to model sensor
/// dropout (see [`crate::FaultyDevice`]); returning `false` drops the
/// change silently.
pub type PublishGate = dyn Fn(&str, &Value, SimTime) -> bool + Send + Sync;

/// The publishing handle handed to virtual devices.
#[derive(Clone)]
pub struct EventPublisher {
    device: DeviceId,
    bus: EventBus,
    gate: Option<Arc<PublishGate>>,
}

impl fmt::Debug for EventPublisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventPublisher")
            .field("device", &self.device)
            .field("gated", &self.gate.is_some())
            .finish()
    }
}

impl EventPublisher {
    /// Publishes a property change for this publisher's device. Dropped
    /// silently when a gate is installed and rejects the change.
    pub fn publish(&self, variable: impl Into<String>, value: Value, at: SimTime) {
        let variable = variable.into();
        if let Some(gate) = &self.gate {
            if !gate(&variable, &value, at) {
                return;
            }
        }
        self.bus
            .publish_change(self.device.clone(), variable, value, at);
    }

    /// Returns this publisher with a gate installed in front of the bus.
    /// Replaces any previous gate.
    pub fn gated(mut self, gate: Arc<PublishGate>) -> EventPublisher {
        self.gate = Some(gate);
        self
    }

    /// The device this publisher speaks for.
    pub fn device(&self) -> &DeviceId {
        &self.device
    }
}

impl EventBus {
    /// Creates a new bus.
    pub fn new() -> EventBus {
        EventBus::default()
    }

    /// Creates a publishing handle for a device.
    pub fn publisher(&self, device: DeviceId) -> EventPublisher {
        EventPublisher {
            device,
            bus: self.clone(),
            gate: None,
        }
    }

    /// Subscribes to changes from one device (`Some`) or from every device
    /// (`None`).
    pub fn subscribe(&self, scope: Option<DeviceId>) -> Subscription {
        let (sender, receiver) = channel();
        let sid = self.inner.next_sid.fetch_add(1, Ordering::Relaxed);
        self.inner
            .subscriptions
            .lock()
            .unwrap()
            .push(SubscriptionEntry { sid, scope, sender });
        Subscription {
            sid,
            receiver,
            bus: self.clone(),
        }
    }

    /// Cancels a subscription by id.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownSubscription`] for an unknown id.
    pub fn unsubscribe(&self, sid: u64) -> Result<(), UpnpError> {
        let mut subs = self.inner.subscriptions.lock().unwrap();
        let before = subs.len();
        subs.retain(|s| s.sid != sid);
        if subs.len() == before {
            return Err(UpnpError::UnknownSubscription(sid));
        }
        Ok(())
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.subscriptions.lock().unwrap().len()
    }

    /// Publishes a change to all matching subscriptions. Disconnected
    /// receivers are pruned.
    pub fn publish_change(&self, device: DeviceId, variable: String, value: Value, at: SimTime) {
        let mut subs = self.inner.subscriptions.lock().unwrap();
        // Assign the seq under the delivery lock: taken outside it, two
        // concurrent publishers could enqueue in the opposite order of
        // their seqs and break the per-bus ordering guarantee.
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let change = PropertyChange {
            device,
            variable,
            value,
            seq,
            at,
        };
        subs.retain(|s| {
            let interested = match &s.scope {
                Some(d) => *d == change.device,
                None => true,
            };
            if !interested {
                return true;
            }
            s.sender.send(change.clone()).is_ok()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::{Quantity, Unit};

    fn publish(bus: &EventBus, device: &str, var: &str, v: i64) {
        bus.publish_change(
            DeviceId::new(device),
            var.to_owned(),
            Value::Number(Quantity::from_integer(v, Unit::Celsius)),
            SimTime::EPOCH,
        );
    }

    #[test]
    fn global_subscription_sees_everything() {
        let bus = EventBus::new();
        let sub = bus.subscribe(None);
        publish(&bus, "a", "temperature", 20);
        publish(&bus, "b", "temperature", 21);
        let changes = sub.drain();
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].device.as_str(), "a");
        assert!(changes[0].seq < changes[1].seq);
    }

    #[test]
    fn scoped_subscription_filters() {
        let bus = EventBus::new();
        let sub = bus.subscribe(Some(DeviceId::new("tv")));
        publish(&bus, "thermo", "temperature", 20);
        publish(&bus, "tv", "power", 1);
        let changes = sub.drain();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].device.as_str(), "tv");
    }

    #[test]
    fn publisher_handle_is_bound_to_device() {
        let bus = EventBus::new();
        let sub = bus.subscribe(None);
        let publisher = bus.publisher(DeviceId::new("lamp"));
        assert_eq!(publisher.device().as_str(), "lamp");
        publisher.publish("power", Value::Bool(true), SimTime::EPOCH);
        let changes = sub.drain();
        assert_eq!(changes[0].device.as_str(), "lamp");
        assert_eq!(changes[0].value, Value::Bool(true));
    }

    #[test]
    fn cancel_removes_subscription() {
        let bus = EventBus::new();
        let sub = bus.subscribe(None);
        assert_eq!(bus.subscription_count(), 1);
        let sid = sub.sid();
        sub.cancel().unwrap();
        assert_eq!(bus.subscription_count(), 0);
        assert_eq!(
            bus.unsubscribe(sid),
            Err(UpnpError::UnknownSubscription(sid))
        );
    }

    #[test]
    fn dropped_receivers_are_pruned_on_publish() {
        let bus = EventBus::new();
        let sub = bus.subscribe(None);
        drop(sub); // receiver gone entirely
        assert_eq!(bus.subscription_count(), 1); // not yet noticed
        publish(&bus, "a", "x", 1);
        assert_eq!(bus.subscription_count(), 0); // pruned at publish time
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let bus = EventBus::new();
        let s1 = bus.subscribe(None);
        let s2 = bus.subscribe(None);
        publish(&bus, "a", "x", 1);
        assert_eq!(s1.drain().len(), 1);
        assert_eq!(s2.drain().len(), 1);
    }
}
