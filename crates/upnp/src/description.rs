//! Device and service description documents.
//!
//! Mirrors the information UPnP exposes through its XML description
//! documents — friendly name, device type URN, services with action
//! signatures and state variable tables — as plain Rust data. The
//! guidance/lookup service of the home server (paper §4.3) is built on
//! these descriptions: retrieving devices by name, type, service, or
//! location, and showing users "what actions are allowed in the device".

use cadel_types::{DeviceId, PlaceId, Rational, ServiceId, Unit, Value, ValueKind};
use std::fmt;

/// Direction of an action argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Direction {
    /// Supplied by the caller.
    In,
    /// Returned by the device.
    Out,
}

/// One argument of an action signature.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArgSpec {
    name: String,
    direction: Direction,
    kind: ValueKind,
}

impl ArgSpec {
    /// Creates an input argument.
    pub fn input(name: impl Into<String>, kind: ValueKind) -> ArgSpec {
        ArgSpec {
            name: name.into(),
            direction: Direction::In,
            kind,
        }
    }

    /// Creates an output argument.
    pub fn output(name: impl Into<String>, kind: ValueKind) -> ArgSpec {
        ArgSpec {
            name: name.into(),
            direction: Direction::Out,
            kind,
        }
    }

    /// The argument name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The expected value kind.
    pub fn kind(&self) -> ValueKind {
        self.kind
    }
}

/// The signature of an invocable action.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ActionSignature {
    name: String,
    args: Vec<ArgSpec>,
}

impl ActionSignature {
    /// Creates an action with no arguments.
    pub fn new(name: impl Into<String>) -> ActionSignature {
        ActionSignature {
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// Adds an argument (builder style).
    #[must_use]
    pub fn with_arg(mut self, arg: ArgSpec) -> ActionSignature {
        self.args.push(arg);
        self
    }

    /// The action name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The argument specs.
    pub fn args(&self) -> &[ArgSpec] {
        &self.args
    }

    /// The input argument with the given name.
    pub fn input(&self, name: &str) -> Option<&ArgSpec> {
        self.args
            .iter()
            .find(|a| a.direction == Direction::In && a.name.eq_ignore_ascii_case(name))
    }
}

/// A state variable exposed by a service.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StateVariableSpec {
    name: String,
    kind: ValueKind,
    unit: Option<Unit>,
    range: Option<(Rational, Rational)>,
    allowed_values: Vec<String>,
    evented: bool,
    default: Option<Value>,
}

impl StateVariableSpec {
    /// Creates a state variable of the given kind.
    pub fn new(name: impl Into<String>, kind: ValueKind) -> StateVariableSpec {
        StateVariableSpec {
            name: name.into(),
            kind,
            unit: None,
            range: None,
            allowed_values: Vec::new(),
            evented: true,
            default: None,
        }
    }

    /// Sets the physical unit (builder style).
    #[must_use]
    pub fn with_unit(mut self, unit: Unit) -> StateVariableSpec {
        self.unit = Some(unit);
        self
    }

    /// Restricts numeric values to `[min, max]`.
    #[must_use]
    pub fn with_range(mut self, min: Rational, max: Rational) -> StateVariableSpec {
        self.range = Some((min, max));
        self
    }

    /// Restricts text values to a list.
    #[must_use]
    pub fn with_allowed_values(
        mut self,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> StateVariableSpec {
        self.allowed_values = values.into_iter().map(Into::into).collect();
        self
    }

    /// Marks the variable as non-evented (no change notifications).
    #[must_use]
    pub fn non_evented(mut self) -> StateVariableSpec {
        self.evented = false;
        self
    }

    /// Sets the initial/default value.
    #[must_use]
    pub fn with_default(mut self, value: Value) -> StateVariableSpec {
        self.default = Some(value);
        self
    }

    /// The variable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value kind.
    pub fn kind(&self) -> ValueKind {
        self.kind
    }

    /// The unit, if declared.
    pub fn unit(&self) -> Option<Unit> {
        self.unit
    }

    /// The allowed numeric range, if declared.
    pub fn range(&self) -> Option<(Rational, Rational)> {
        self.range
    }

    /// The allowed text values, if restricted.
    pub fn allowed_values(&self) -> &[String] {
        &self.allowed_values
    }

    /// Whether value changes are published as events.
    pub fn is_evented(&self) -> bool {
        self.evented
    }

    /// The default value, if declared.
    pub fn default(&self) -> Option<&Value> {
        self.default.as_ref()
    }

    /// Validates a candidate value against kind, range and value list.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the value is not acceptable.
    pub fn validate(&self, value: &Value) -> Result<(), String> {
        if value.kind() != self.kind {
            return Err(format!("expected {:?}, got {:?}", self.kind, value.kind()));
        }
        if let (Some((min, max)), Value::Number(q)) = (&self.range, value) {
            let v = q.canonical_value();
            if v < *min || v > *max {
                return Err(format!("{q} outside [{min}, {max}]"));
            }
        }
        if !self.allowed_values.is_empty() {
            if let Value::Text(t) = value {
                if !self
                    .allowed_values
                    .iter()
                    .any(|a| a.eq_ignore_ascii_case(t))
                {
                    return Err(format!("{t:?} not in allowed value list"));
                }
            }
        }
        Ok(())
    }
}

/// A service hosted by a device: a typed bundle of actions and state
/// variables.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceDescription {
    service_id: ServiceId,
    service_type: String,
    actions: Vec<ActionSignature>,
    state_variables: Vec<StateVariableSpec>,
}

impl ServiceDescription {
    /// Creates a service of the given type URN
    /// (e.g. `urn:cadel:service:thermostat:1`).
    pub fn new(service_id: impl Into<ServiceId>, service_type: impl Into<String>) -> Self {
        ServiceDescription {
            service_id: service_id.into(),
            service_type: service_type.into(),
            actions: Vec::new(),
            state_variables: Vec::new(),
        }
    }

    /// Adds an action (builder style).
    #[must_use]
    pub fn with_action(mut self, action: ActionSignature) -> Self {
        self.actions.push(action);
        self
    }

    /// Adds a state variable (builder style).
    #[must_use]
    pub fn with_variable(mut self, var: StateVariableSpec) -> Self {
        self.state_variables.push(var);
        self
    }

    /// The service id.
    pub fn service_id(&self) -> &ServiceId {
        &self.service_id
    }

    /// The service type URN.
    pub fn service_type(&self) -> &str {
        &self.service_type
    }

    /// The action signatures.
    pub fn actions(&self) -> &[ActionSignature] {
        &self.actions
    }

    /// The state variable table.
    pub fn state_variables(&self) -> &[StateVariableSpec] {
        &self.state_variables
    }

    /// Looks up an action by name, case-insensitive.
    pub fn action(&self, name: &str) -> Option<&ActionSignature> {
        self.actions
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Looks up a state variable by name, case-insensitive.
    pub fn state_variable(&self, name: &str) -> Option<&StateVariableSpec> {
        self.state_variables
            .iter()
            .find(|v| v.name.eq_ignore_ascii_case(name))
    }
}

/// A root device description document.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceDescription {
    udn: DeviceId,
    friendly_name: String,
    device_type: String,
    manufacturer: String,
    location: Option<PlaceId>,
    keywords: Vec<String>,
    services: Vec<ServiceDescription>,
}

impl DeviceDescription {
    /// Creates a description for a device with the given unique device
    /// name (UDN), friendly name and device type URN.
    pub fn new(
        udn: impl Into<DeviceId>,
        friendly_name: impl Into<String>,
        device_type: impl Into<String>,
    ) -> DeviceDescription {
        DeviceDescription {
            udn: udn.into(),
            friendly_name: friendly_name.into(),
            device_type: device_type.into(),
            manufacturer: "CADEL virtual devices".to_owned(),
            location: None,
            keywords: Vec::new(),
            services: Vec::new(),
        }
    }

    /// Sets the physical location (builder style).
    #[must_use]
    pub fn at(mut self, place: impl Into<PlaceId>) -> DeviceDescription {
        self.location = Some(place.into());
        self
    }

    /// Sets the manufacturer string.
    #[must_use]
    pub fn by(mut self, manufacturer: impl Into<String>) -> DeviceDescription {
        self.manufacturer = manufacturer.into();
        self
    }

    /// Adds retrieval keywords ("temperature", "cooling", …) used by the
    /// guidance lookup (paper Fig. 5: retrieval by keyword).
    #[must_use]
    pub fn with_keywords(
        mut self,
        keywords: impl IntoIterator<Item = impl Into<String>>,
    ) -> DeviceDescription {
        self.keywords
            .extend(keywords.into_iter().map(|k| k.into().to_ascii_lowercase()));
        self
    }

    /// Adds a service (builder style).
    #[must_use]
    pub fn with_service(mut self, service: ServiceDescription) -> DeviceDescription {
        self.services.push(service);
        self
    }

    /// The unique device name.
    pub fn udn(&self) -> &DeviceId {
        &self.udn
    }

    /// The human-readable name users retrieve the device by.
    pub fn friendly_name(&self) -> &str {
        &self.friendly_name
    }

    /// The device type URN.
    pub fn device_type(&self) -> &str {
        &self.device_type
    }

    /// The manufacturer string.
    pub fn manufacturer(&self) -> &str {
        &self.manufacturer
    }

    /// Where the device is installed, when known.
    pub fn location(&self) -> Option<&PlaceId> {
        self.location.as_ref()
    }

    /// Retrieval keywords.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// The hosted services.
    pub fn services(&self) -> &[ServiceDescription] {
        &self.services
    }

    /// Finds the service declaring a state variable, with the variable.
    pub fn find_variable(&self, name: &str) -> Option<(&ServiceDescription, &StateVariableSpec)> {
        self.services
            .iter()
            .find_map(|s| s.state_variable(name).map(|v| (s, v)))
    }

    /// Finds the service offering an action, with the signature.
    pub fn find_action(&self, name: &str) -> Option<(&ServiceDescription, &ActionSignature)> {
        self.services
            .iter()
            .find_map(|s| s.action(name).map(|a| (s, a)))
    }

    /// All action names across services (what the guidance UI lists in
    /// Fig. 6's "allowed actions" panel).
    pub fn action_names(&self) -> Vec<&str> {
        self.services
            .iter()
            .flat_map(|s| s.actions.iter().map(|a| a.name.as_str()))
            .collect()
    }
}

impl fmt::Display for DeviceDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.friendly_name, self.udn)?;
        if let Some(loc) = &self.location {
            write!(f, " at {loc}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::Quantity;

    fn thermostat_description() -> DeviceDescription {
        DeviceDescription::new("aircon-1", "Air Conditioner", "urn:cadel:device:aircon:1")
            .at("living room")
            .with_keywords(["temperature", "cooling", "humidity"])
            .with_service(
                ServiceDescription::new("svc-thermo", "urn:cadel:service:thermostat:1")
                    .with_action(ActionSignature::new("TurnOn"))
                    .with_action(
                        ActionSignature::new("SetTemperature")
                            .with_arg(ArgSpec::input("temperature", ValueKind::Number)),
                    )
                    .with_variable(
                        StateVariableSpec::new("setpoint", ValueKind::Number)
                            .with_unit(Unit::Celsius)
                            .with_range(Rational::from_integer(16), Rational::from_integer(32)),
                    )
                    .with_variable(
                        StateVariableSpec::new("mode", ValueKind::Text).with_allowed_values([
                            "cool",
                            "heat",
                            "dehumidify",
                        ]),
                    ),
            )
    }

    #[test]
    fn lookup_paths() {
        let d = thermostat_description();
        assert_eq!(d.friendly_name(), "Air Conditioner");
        assert!(d.find_action("turnon").is_some()); // case-insensitive
        assert!(d.find_action("Explode").is_none());
        let (_, var) = d.find_variable("setpoint").unwrap();
        assert_eq!(var.unit(), Some(Unit::Celsius));
        assert_eq!(d.action_names().len(), 2);
        assert_eq!(d.location().unwrap().as_str(), "living room");
    }

    #[test]
    fn variable_validation_kind() {
        let d = thermostat_description();
        let (_, var) = d.find_variable("setpoint").unwrap();
        assert!(var.validate(&Value::Bool(true)).is_err());
        assert!(var
            .validate(&Value::Number(Quantity::from_integer(25, Unit::Celsius)))
            .is_ok());
    }

    #[test]
    fn variable_validation_range() {
        let d = thermostat_description();
        let (_, var) = d.find_variable("setpoint").unwrap();
        let too_hot = Value::Number(Quantity::from_integer(40, Unit::Celsius));
        assert!(var.validate(&too_hot).is_err());
        // Range checks happen in canonical units: 77°F = 25°C is fine.
        let f = Value::Number(Quantity::from_integer(77, Unit::Fahrenheit));
        assert!(var.validate(&f).is_ok());
    }

    #[test]
    fn variable_validation_allowed_values() {
        let d = thermostat_description();
        let (_, var) = d.find_variable("mode").unwrap();
        assert!(var.validate(&Value::from("COOL")).is_ok());
        assert!(var.validate(&Value::from("party")).is_err());
    }

    #[test]
    fn keywords_are_lowercased() {
        let d = thermostat_description();
        assert!(d.keywords().contains(&"cooling".to_owned()));
    }

    #[test]
    fn action_signature_inputs() {
        let d = thermostat_description();
        let (_, action) = d.find_action("SetTemperature").unwrap();
        assert!(action.input("TEMPERATURE").is_some());
        assert!(action.input("mystery").is_none());
        assert_eq!(action.args()[0].direction(), Direction::In);
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let d = thermostat_description();
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(serde_json::from_str::<DeviceDescription>(&json).unwrap(), d);
    }
}
