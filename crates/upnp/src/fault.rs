//! Deterministic fault injection for virtual devices.
//!
//! Real appliances fail, lag, and drop off the network; the engine's
//! resilience machinery (retries, circuit breakers, staleness policies)
//! needs faults it can be tested against *reproducibly*. [`FaultyDevice`]
//! wraps any [`VirtualDevice`] and injects failures according to a
//! [`FaultPlan`]: a set of sim-time windows during which invocations fail,
//! gain latency, or sensor notifications are dropped. No wall clock is
//! involved — the same plan over the same event schedule produces the
//! same faults every run, and [`FaultPlan::random_transient`] derives a
//! transient-fault schedule from a seed via the workspace SplitMix64
//! generator.

use crate::description::DeviceDescription;
use crate::device::VirtualDevice;
use crate::error::UpnpError;
use crate::event::EventPublisher;
use crate::registry::Registry;
use cadel_obs::{Event as ObsEvent, LazyCounter, Level};
use cadel_types::{DeviceId, Rng, SimDuration, SimTime, Value};
use std::sync::{Arc, Mutex};

static FAULTS_INJECTED: LazyCounter = LazyCounter::new("upnp_faults_injected_total");
static PUBLISHES_DROPPED: LazyCounter = LazyCounter::new("upnp_publishes_dropped_total");
static LATENCY_INJECTED_MS: LazyCounter = LazyCounter::new("upnp_injected_latency_ms_total");

/// What a fault window does to the wrapped device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Invocations fail with [`UpnpError::DeviceFault`].
    Fail,
    /// Invocations take effect this much later (the device applies and
    /// publishes the change at `at + delay`).
    Latency(SimDuration),
    /// The device's property-change notifications are silently dropped
    /// (sensor dropout); invocations still work.
    Dropout,
}

/// One fault window on the sim-time axis: `[from, until)`, or `[from, ∞)`
/// when `until` is `None` (a permanent failure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// What happens during the window.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `None` means the fault never clears.
    pub until: Option<SimTime>,
}

impl FaultWindow {
    fn active_at(&self, at: SimTime) -> bool {
        at >= self.from && self.until.is_none_or(|u| at < u)
    }
}

/// A deterministic fault schedule: a list of [`FaultWindow`]s.
///
/// Plans are immutable once built and shared behind `Arc` by the
/// decorator, so a single plan can drive many devices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan: the wrapped device behaves normally.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a transient failure window `[from, until)`.
    pub fn fail_between(mut self, from: SimTime, until: SimTime) -> FaultPlan {
        self.windows.push(FaultWindow {
            kind: FaultKind::Fail,
            from,
            until: Some(until),
        });
        self
    }

    /// Adds a permanent failure starting at `from`.
    pub fn fail_from(mut self, from: SimTime) -> FaultPlan {
        self.windows.push(FaultWindow {
            kind: FaultKind::Fail,
            from,
            until: None,
        });
        self
    }

    /// Adds a latency window: invocations in `[from, until)` take effect
    /// `extra` later.
    pub fn delay_between(mut self, from: SimTime, until: SimTime, extra: SimDuration) -> FaultPlan {
        self.windows.push(FaultWindow {
            kind: FaultKind::Latency(extra),
            from,
            until: Some(until),
        });
        self
    }

    /// Adds a sensor-dropout window: notifications in `[from, until)` are
    /// silently dropped.
    pub fn drop_sensors_between(mut self, from: SimTime, until: SimTime) -> FaultPlan {
        self.windows.push(FaultWindow {
            kind: FaultKind::Dropout,
            from,
            until: Some(until),
        });
        self
    }

    /// Derives a transient-failure schedule from a seed: the span
    /// `[from, until)` is cut into `slice`-sized pieces, and each piece
    /// independently fails with probability `permille / 1000`. The same
    /// seed always yields the same schedule.
    pub fn random_transient(
        seed: u64,
        from: SimTime,
        until: SimTime,
        slice: SimDuration,
        permille: u64,
    ) -> FaultPlan {
        assert!(!slice.is_zero(), "slice must be non-zero");
        let mut rng = Rng::new(seed);
        let mut plan = FaultPlan::new();
        let mut t = from;
        while t < until {
            let mut end = t + slice;
            if end > until {
                end = until;
            }
            if rng.chance(permille, 1000) {
                plan = plan.fail_between(t, end);
            }
            t = end;
        }
        plan
    }

    /// The windows of this plan, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether an invocation at `at` fails.
    pub fn fails_at(&self, at: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.kind == FaultKind::Fail && w.active_at(at))
    }

    /// Total extra latency active at `at` (overlapping windows add up).
    pub fn extra_latency_at(&self, at: SimTime) -> SimDuration {
        let ms: u64 = self
            .windows
            .iter()
            .filter(|w| w.active_at(at))
            .filter_map(|w| match w.kind {
                FaultKind::Latency(d) => Some(d.as_millis()),
                _ => None,
            })
            .sum();
        SimDuration::from_millis(ms)
    }

    /// Whether notifications at `at` are dropped.
    pub fn drops_sensors_at(&self, at: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.kind == FaultKind::Dropout && w.active_at(at))
    }
}

/// Counters kept by a [`FaultyDevice`]; queryable in tests regardless of
/// whether the global obs layer is enabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Invocations rejected with an injected [`UpnpError::DeviceFault`].
    pub invoke_faults: u64,
    /// Invocations forwarded normally.
    pub invokes_passed: u64,
    /// Invocations forwarded with added latency.
    pub invokes_delayed: u64,
    /// Property-change notifications dropped in dropout windows.
    pub publishes_dropped: u64,
}

/// A decorator that wraps any [`VirtualDevice`] and injects faults per a
/// [`FaultPlan`]. Registered in place of the inner device (see
/// [`FaultyDevice::wrap`]); the description, queries and ticks pass
/// through untouched.
///
/// Fault semantics, all on sim time:
///
/// * **Fail windows** — [`VirtualDevice::invoke`] returns
///   [`UpnpError::DeviceFault`] without touching the inner device.
/// * **Latency windows** — the invocation is forwarded with its timestamp
///   shifted to `at + extra`, so the state change (and any notification
///   the inner device publishes) carries the delayed time.
/// * **Dropout windows** — the inner device's publisher is gated: changes
///   published during the window are silently dropped. Queries still see
///   the live value; only eventing goes dark.
///
/// [`VirtualDevice::query`] takes no timestamp, so fail windows do not
/// apply to it — state reads always reach the inner device.
pub struct FaultyDevice {
    inner: Arc<dyn VirtualDevice>,
    plan: Arc<FaultPlan>,
    stats: Arc<Mutex<FaultStats>>,
}

impl FaultyDevice {
    /// Wraps a device with a fault plan.
    pub fn new(inner: Arc<dyn VirtualDevice>, plan: FaultPlan) -> FaultyDevice {
        FaultyDevice {
            inner,
            plan: Arc::new(plan),
            stats: Arc::new(Mutex::new(FaultStats::default())),
        }
    }

    /// Re-registers an already registered device behind a fault decorator:
    /// looks it up, unregisters it, and registers the wrapped device under
    /// the same UDN (re-attaching a gated publisher to the inner device).
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownDevice`] when `udn` is not registered.
    pub fn wrap(
        registry: &Registry,
        udn: &DeviceId,
        plan: FaultPlan,
    ) -> Result<Arc<FaultyDevice>, UpnpError> {
        let inner = registry.device(udn)?;
        registry.unregister(udn)?;
        let wrapped = Arc::new(FaultyDevice::new(inner, plan));
        registry.register(wrapped.clone())?;
        Ok(wrapped)
    }

    /// The fault plan driving this decorator.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// A snapshot of the injection counters.
    pub fn stats(&self) -> FaultStats {
        self.stats.lock().unwrap().clone()
    }
}

impl VirtualDevice for FaultyDevice {
    fn description(&self) -> DeviceDescription {
        self.inner.description()
    }

    fn invoke(
        &self,
        action: &str,
        args: &[(String, Value)],
        at: SimTime,
    ) -> Result<Vec<(String, Value)>, UpnpError> {
        if self.plan.fails_at(at) {
            self.stats.lock().unwrap().invoke_faults += 1;
            FAULTS_INJECTED.inc();
            if cadel_obs::enabled() {
                cadel_obs::emit(
                    ObsEvent::new("upnp.fault_injected", Level::Debug)
                        .with_field("device", self.inner.description().udn().as_str())
                        .with_field("action", action),
                );
            }
            return Err(UpnpError::DeviceFault(format!(
                "injected fault: {action} at {}",
                at.time_of_day()
            )));
        }
        let extra = self.plan.extra_latency_at(at);
        if extra.is_zero() {
            self.stats.lock().unwrap().invokes_passed += 1;
            self.inner.invoke(action, args, at)
        } else {
            self.stats.lock().unwrap().invokes_delayed += 1;
            LATENCY_INJECTED_MS.add(extra.as_millis());
            self.inner.invoke(action, args, at + extra)
        }
    }

    fn query(&self, variable: &str) -> Result<Value, UpnpError> {
        self.inner.query(variable)
    }

    fn attach(&self, publisher: EventPublisher) {
        let plan = self.plan.clone();
        let stats = self.stats.clone();
        let device = publisher.device().clone();
        let gated = publisher.gated(Arc::new(move |variable: &str, _value: &Value, at| {
            if plan.drops_sensors_at(at) {
                stats.lock().unwrap().publishes_dropped += 1;
                PUBLISHES_DROPPED.inc();
                if cadel_obs::enabled() {
                    cadel_obs::emit(
                        ObsEvent::new("upnp.publish_dropped", Level::Debug)
                            .with_field("device", device.as_str())
                            .with_field("variable", variable),
                    );
                }
                false
            } else {
                true
            }
        }));
        self.inner.attach(gated);
    }

    fn tick(&self, now: SimTime) {
        self.inner.tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBus;
    use std::sync::Mutex as StdMutex;

    fn m(minutes: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_minutes(minutes)
    }

    /// A stub device that records invocation timestamps and republishes
    /// every invocation as a property change.
    struct Probe {
        udn: DeviceId,
        invoked_at: StdMutex<Vec<SimTime>>,
        publisher: StdMutex<Option<EventPublisher>>,
    }

    impl Probe {
        fn new(udn: &str) -> Probe {
            Probe {
                udn: DeviceId::new(udn),
                invoked_at: StdMutex::new(Vec::new()),
                publisher: StdMutex::new(None),
            }
        }
    }

    impl VirtualDevice for Probe {
        fn description(&self) -> DeviceDescription {
            DeviceDescription::new(self.udn.clone(), "probe", "urn:test:device:Probe:1")
        }

        fn invoke(
            &self,
            _action: &str,
            _args: &[(String, Value)],
            at: SimTime,
        ) -> Result<Vec<(String, Value)>, UpnpError> {
            self.invoked_at.lock().unwrap().push(at);
            if let Some(publisher) = self.publisher.lock().unwrap().as_ref() {
                publisher.publish("state", Value::Bool(true), at);
            }
            Ok(Vec::new())
        }

        fn query(&self, _variable: &str) -> Result<Value, UpnpError> {
            Ok(Value::Bool(true))
        }

        fn attach(&self, publisher: EventPublisher) {
            *self.publisher.lock().unwrap() = Some(publisher);
        }
    }

    #[test]
    fn fail_window_rejects_and_clears() {
        let probe = Arc::new(Probe::new("p1"));
        let plan = FaultPlan::new().fail_between(m(10), m(20));
        let faulty = FaultyDevice::new(probe.clone(), plan);

        assert!(faulty.invoke("Do", &[], m(5)).is_ok());
        let err = faulty.invoke("Do", &[], m(10)).unwrap_err();
        assert!(matches!(err, UpnpError::DeviceFault(_)));
        assert!(faulty.invoke("Do", &[], m(20)).is_ok()); // until is exclusive
        let stats = faulty.stats();
        assert_eq!(stats.invoke_faults, 1);
        assert_eq!(stats.invokes_passed, 2);
        // The inner device never saw the faulted call.
        assert_eq!(probe.invoked_at.lock().unwrap().len(), 2);
    }

    #[test]
    fn permanent_failure_never_clears() {
        let plan = FaultPlan::new().fail_from(m(10));
        assert!(!plan.fails_at(m(9)));
        assert!(plan.fails_at(m(10)));
        assert!(plan.fails_at(m(100_000)));
    }

    #[test]
    fn latency_window_shifts_the_timestamp() {
        let probe = Arc::new(Probe::new("p2"));
        let plan = FaultPlan::new().delay_between(m(0), m(10), SimDuration::from_secs(90));
        let faulty = FaultyDevice::new(probe.clone(), plan);
        faulty.invoke("Do", &[], m(1)).unwrap();
        faulty.invoke("Do", &[], m(30)).unwrap();
        let seen = probe.invoked_at.lock().unwrap().clone();
        assert_eq!(seen[0], m(1) + SimDuration::from_secs(90));
        assert_eq!(seen[1], m(30)); // outside the window: untouched
        assert_eq!(faulty.stats().invokes_delayed, 1);
    }

    #[test]
    fn dropout_window_gates_publishes() {
        let bus = EventBus::new();
        let sub = bus.subscribe(None);
        let probe = Arc::new(Probe::new("p3"));
        let plan = FaultPlan::new().drop_sensors_between(m(10), m(20));
        let faulty = FaultyDevice::new(probe, plan);
        faulty.attach(bus.publisher(DeviceId::new("p3")));

        faulty.invoke("Do", &[], m(5)).unwrap(); // publishes
        faulty.invoke("Do", &[], m(15)).unwrap(); // dropped
        faulty.invoke("Do", &[], m(25)).unwrap(); // publishes
        let changes = sub.drain();
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].at, m(5));
        assert_eq!(changes[1].at, m(25));
        assert_eq!(faulty.stats().publishes_dropped, 1);
    }

    #[test]
    fn random_transient_is_seed_deterministic() {
        let a = FaultPlan::random_transient(42, m(0), m(120), SimDuration::from_minutes(5), 200);
        let b = FaultPlan::random_transient(42, m(0), m(120), SimDuration::from_minutes(5), 200);
        let c = FaultPlan::random_transient(43, m(0), m(120), SimDuration::from_minutes(5), 200);
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely for 24 slices at 20%
        assert!(!a.windows().is_empty());
        // Every window stays inside the span and is slice-aligned.
        for w in a.windows() {
            assert!(w.from >= m(0) && w.until.unwrap() <= m(120));
            assert_eq!(w.from.since(m(0)).as_millis() % (5 * 60_000), 0);
        }
        // permille 0 / 1000 are the degenerate plans.
        let never = FaultPlan::random_transient(7, m(0), m(60), SimDuration::from_minutes(5), 0);
        assert!(never.windows().is_empty());
        let always =
            FaultPlan::random_transient(7, m(0), m(60), SimDuration::from_minutes(5), 1000);
        assert_eq!(always.windows().len(), 12);
    }

    #[test]
    fn wrap_replaces_the_registry_entry() {
        let registry = Registry::new();
        let probe = Arc::new(Probe::new("p4"));
        registry.register(probe.clone()).unwrap();
        let udn = DeviceId::new("p4");
        let wrapped =
            FaultyDevice::wrap(&registry, &udn, FaultPlan::new().fail_from(m(0))).unwrap();
        // The registry now resolves to the decorator.
        let resolved = registry.device(&udn).unwrap();
        let err = resolved.invoke("Do", &[], m(1)).unwrap_err();
        assert!(matches!(err, UpnpError::DeviceFault(_)));
        assert_eq!(wrapped.stats().invoke_faults, 1);
        assert!(FaultyDevice::wrap(&registry, &DeviceId::new("nope"), FaultPlan::new()).is_err());
    }
}
