//! The device registry: registration and the indexed lookups behind
//! SSDP search and the guidance service.
//!
//! Experiment E1 of the paper measures "the time for retrieving a
//! specified device by its device name" (and by service name) over 50
//! virtual UPnP devices. Those retrievals are [`Registry::find_by_name`]
//! and [`Registry::find_by_service_type`] here, backed by hash indexes
//! that are maintained on (un)registration.

use crate::description::DeviceDescription;
use crate::device::VirtualDevice;
use crate::error::UpnpError;
use crate::event::EventBus;
use cadel_types::{DeviceId, PlaceId};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::RwLock;

#[derive(Default)]
struct RegistryInner {
    devices: HashMap<DeviceId, Arc<dyn VirtualDevice>>,
    descriptions: HashMap<DeviceId, DeviceDescription>,
    by_name: HashMap<String, Vec<DeviceId>>,
    by_device_type: HashMap<String, Vec<DeviceId>>,
    by_service_type: HashMap<String, Vec<DeviceId>>,
    by_location: HashMap<PlaceId, Vec<DeviceId>>,
    by_keyword: HashMap<String, Vec<DeviceId>>,
}

/// The shared registry of live virtual devices.
///
/// Cloning is cheap (it is an `Arc` handle). All lookups are
/// case-insensitive on names, types and keywords.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RwLock<RegistryInner>>,
    bus: EventBus,
}

impl Registry {
    /// Creates an empty registry with its own event bus.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The event bus devices registered here publish on.
    pub fn event_bus(&self) -> &EventBus {
        &self.bus
    }

    /// Registers a device: caches its description, indexes it, and hands
    /// it an event publisher.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::DuplicateDevice`] when the UDN is taken.
    pub fn register(&self, device: Arc<dyn VirtualDevice>) -> Result<DeviceId, UpnpError> {
        let description = device.description();
        let udn = description.udn().clone();
        let mut inner = self.inner.write().unwrap();
        if inner.devices.contains_key(&udn) {
            return Err(UpnpError::DuplicateDevice(udn));
        }
        inner
            .by_name
            .entry(description.friendly_name().to_ascii_lowercase())
            .or_default()
            .push(udn.clone());
        inner
            .by_device_type
            .entry(description.device_type().to_ascii_lowercase())
            .or_default()
            .push(udn.clone());
        for service in description.services() {
            inner
                .by_service_type
                .entry(service.service_type().to_ascii_lowercase())
                .or_default()
                .push(udn.clone());
        }
        if let Some(place) = description.location() {
            inner
                .by_location
                .entry(place.clone())
                .or_default()
                .push(udn.clone());
        }
        for keyword in description.keywords() {
            inner
                .by_keyword
                .entry(keyword.clone())
                .or_default()
                .push(udn.clone());
        }
        inner.descriptions.insert(udn.clone(), description);
        inner.devices.insert(udn.clone(), device.clone());
        drop(inner);
        device.attach(self.bus.publisher(udn.clone()));
        Ok(udn)
    }

    /// Unregisters a device and removes it from every index.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownDevice`] for unknown UDNs.
    pub fn unregister(&self, udn: &DeviceId) -> Result<(), UpnpError> {
        let mut inner = self.inner.write().unwrap();
        let description = inner
            .descriptions
            .remove(udn)
            .ok_or_else(|| UpnpError::UnknownDevice(udn.clone()))?;
        inner.devices.remove(udn);
        let prune = |map: &mut HashMap<String, Vec<DeviceId>>, key: &str| {
            if let Some(v) = map.get_mut(key) {
                v.retain(|d| d != udn);
                if v.is_empty() {
                    map.remove(key);
                }
            }
        };
        prune(
            &mut inner.by_name,
            &description.friendly_name().to_ascii_lowercase(),
        );
        prune(
            &mut inner.by_device_type,
            &description.device_type().to_ascii_lowercase(),
        );
        for service in description.services() {
            prune(
                &mut inner.by_service_type,
                &service.service_type().to_ascii_lowercase(),
            );
        }
        for keyword in description.keywords() {
            prune(&mut inner.by_keyword, keyword);
        }
        if let Some(place) = description.location() {
            if let Some(v) = inner.by_location.get_mut(place) {
                v.retain(|d| d != udn);
                if v.is_empty() {
                    inner.by_location.remove(place);
                }
            }
        }
        Ok(())
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().devices.len()
    }

    /// Whether no device is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live device handle for a UDN.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownDevice`] for unknown UDNs.
    pub fn device(&self, udn: &DeviceId) -> Result<Arc<dyn VirtualDevice>, UpnpError> {
        self.inner
            .read()
            .unwrap()
            .devices
            .get(udn)
            .cloned()
            .ok_or_else(|| UpnpError::UnknownDevice(udn.clone()))
    }

    /// The cached description for a UDN.
    ///
    /// # Errors
    ///
    /// Returns [`UpnpError::UnknownDevice`] for unknown UDNs.
    pub fn description(&self, udn: &DeviceId) -> Result<DeviceDescription, UpnpError> {
        self.inner
            .read()
            .unwrap()
            .descriptions
            .get(udn)
            .cloned()
            .ok_or_else(|| UpnpError::UnknownDevice(udn.clone()))
    }

    /// All descriptions, unordered.
    pub fn descriptions(&self) -> Vec<DeviceDescription> {
        self.inner
            .read()
            .unwrap()
            .descriptions
            .values()
            .cloned()
            .collect()
    }

    /// Retrieval **by device (friendly) name** — E1's first timed lookup.
    pub fn find_by_name(&self, name: &str) -> Vec<DeviceId> {
        self.inner
            .read()
            .unwrap()
            .by_name
            .get(&name.to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }

    /// Retrieval by device type URN.
    pub fn find_by_device_type(&self, device_type: &str) -> Vec<DeviceId> {
        self.inner
            .read()
            .unwrap()
            .by_device_type
            .get(&device_type.to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }

    /// Retrieval **by service type/name** — E1's second timed lookup.
    pub fn find_by_service_type(&self, service_type: &str) -> Vec<DeviceId> {
        self.inner
            .read()
            .unwrap()
            .by_service_type
            .get(&service_type.to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }

    /// Retrieval by installed location.
    pub fn find_by_location(&self, place: &PlaceId) -> Vec<DeviceId> {
        self.inner
            .read()
            .unwrap()
            .by_location
            .get(place)
            .cloned()
            .unwrap_or_default()
    }

    /// Retrieval by keyword (paper Fig. 5: retrieval item (1)).
    pub fn find_by_keyword(&self, keyword: &str) -> Vec<DeviceId> {
        self.inner
            .read()
            .unwrap()
            .by_keyword
            .get(&keyword.to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::{ServiceDescription, StateVariableSpec};
    use cadel_types::{SimTime, Value, ValueKind};

    /// A minimal test device.
    struct Probe {
        description: DeviceDescription,
    }

    impl Probe {
        fn new(udn: &str, name: &str, place: Option<&str>) -> Arc<Probe> {
            let mut d = DeviceDescription::new(udn, name, "urn:cadel:device:probe:1")
                .with_keywords(["testing"])
                .with_service(
                    ServiceDescription::new(format!("{udn}-svc"), "urn:cadel:service:probe:1")
                        .with_variable(StateVariableSpec::new("value", ValueKind::Bool)),
                );
            if let Some(p) = place {
                d = d.at(p);
            }
            Arc::new(Probe { description: d })
        }
    }

    impl VirtualDevice for Probe {
        fn description(&self) -> DeviceDescription {
            self.description.clone()
        }

        fn invoke(
            &self,
            action: &str,
            _args: &[(String, Value)],
            _at: SimTime,
        ) -> Result<Vec<(String, Value)>, UpnpError> {
            Err(UpnpError::UnknownAction {
                device: self.description.udn().clone(),
                action: action.to_owned(),
            })
        }

        fn query(&self, variable: &str) -> Result<Value, UpnpError> {
            if variable == "value" {
                Ok(Value::Bool(true))
            } else {
                Err(UpnpError::UnknownVariable {
                    device: self.description.udn().clone(),
                    variable: variable.to_owned(),
                })
            }
        }
    }

    #[test]
    fn register_and_lookup_by_every_index() {
        let registry = Registry::new();
        registry
            .register(Probe::new("p1", "Hall Probe", Some("hall")))
            .unwrap();
        registry
            .register(Probe::new("p2", "Kitchen Probe", Some("kitchen")))
            .unwrap();
        assert_eq!(registry.len(), 2);
        assert_eq!(
            registry.find_by_name("hall probe"),
            vec![DeviceId::new("p1")]
        );
        assert_eq!(
            registry
                .find_by_device_type("URN:CADEL:DEVICE:PROBE:1")
                .len(),
            2
        );
        assert_eq!(
            registry
                .find_by_service_type("urn:cadel:service:probe:1")
                .len(),
            2
        );
        assert_eq!(
            registry.find_by_location(&PlaceId::new("kitchen")),
            vec![DeviceId::new("p2")]
        );
        assert_eq!(registry.find_by_keyword("TESTING").len(), 2);
        assert!(registry.find_by_name("toaster").is_empty());
    }

    #[test]
    fn duplicate_udn_is_rejected() {
        let registry = Registry::new();
        registry.register(Probe::new("p1", "A", None)).unwrap();
        let err = registry.register(Probe::new("p1", "B", None)).unwrap_err();
        assert!(matches!(err, UpnpError::DuplicateDevice(_)));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn unregister_cleans_every_index() {
        let registry = Registry::new();
        let udn = registry
            .register(Probe::new("p1", "Hall Probe", Some("hall")))
            .unwrap();
        registry.unregister(&udn).unwrap();
        assert!(registry.is_empty());
        assert!(registry.find_by_name("hall probe").is_empty());
        assert!(registry.find_by_keyword("testing").is_empty());
        assert!(registry.find_by_location(&PlaceId::new("hall")).is_empty());
        assert!(matches!(
            registry.unregister(&udn),
            Err(UpnpError::UnknownDevice(_))
        ));
    }

    #[test]
    fn device_handles_answer_queries() {
        let registry = Registry::new();
        let udn = registry.register(Probe::new("p1", "A", None)).unwrap();
        let device = registry.device(&udn).unwrap();
        assert_eq!(device.query("value").unwrap(), Value::Bool(true));
        assert!(device.query("missing").is_err());
        assert!(registry.device(&DeviceId::new("ghost")).is_err());
    }

    #[test]
    fn same_friendly_name_accumulates() {
        let registry = Registry::new();
        registry
            .register(Probe::new("l1", "Light", Some("hall")))
            .unwrap();
        registry
            .register(Probe::new("l2", "Light", Some("kitchen")))
            .unwrap();
        assert_eq!(registry.find_by_name("light").len(), 2);
        registry.unregister(&DeviceId::new("l1")).unwrap();
        assert_eq!(registry.find_by_name("light"), vec![DeviceId::new("l2")]);
    }
}
