//! Thread-safety of the UPnP substrate: the registry, control point and
//! event bus are shared across the home server's components; this suite
//! exercises them from multiple threads at once.

use cadel_devices::{install_virtual_fleet, LivingRoomHome};
use cadel_types::{DeviceId, Rational, SimTime, Value};
use cadel_upnp::{ControlPoint, Registry};
use std::sync::Arc;
use std::thread;

#[test]
fn registry_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Registry>();
    assert_send_sync::<ControlPoint>();
    assert_send_sync::<cadel_upnp::EventBus>();
}

#[test]
fn concurrent_lookups_during_registration() {
    let registry = Registry::new();
    install_virtual_fleet(&registry, 100);
    let registry = Arc::new(registry);

    let mut handles = Vec::new();
    // Readers hammer the indexes…
    for t in 0..4 {
        let registry = Arc::clone(&registry);
        handles.push(thread::spawn(move || {
            for i in 0..2_000u32 {
                let n = (i + t * 13) % 100;
                let found = registry.find_by_name(&format!("Virtual Device {n}"));
                assert_eq!(found.len(), 1);
            }
        }));
    }
    // …while writers register and unregister a rotating extra fleet.
    for t in 0..2 {
        let registry = Arc::clone(&registry);
        handles.push(thread::spawn(move || {
            for i in 0..200u32 {
                let udn = format!("extra-{t}-{i}");
                let device =
                    cadel_devices::GenericDevice::new(&udn, &format!("Extra {t} {i}"), "gadget");
                registry.register(device).unwrap();
                registry.unregister(&DeviceId::new(udn)).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panicked");
    }
    // The rotating extras are all gone; the base fleet is intact.
    assert_eq!(registry.len(), 100);
}

#[test]
fn concurrent_invocations_and_events() {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let cp = Arc::new(ControlPoint::new(registry));
    let sub = cp.subscribe_all();

    let mut handles = Vec::new();
    // Two threads toggle different devices; one thread drives the sensors.
    {
        let cp = Arc::clone(&cp);
        handles.push(thread::spawn(move || {
            for i in 0..500u64 {
                let action = if i % 2 == 0 { "TurnOn" } else { "TurnOff" };
                cp.invoke(
                    &DeviceId::new("tv-lr"),
                    action,
                    &[],
                    SimTime::from_millis(i),
                )
                .unwrap();
            }
        }));
    }
    {
        let cp = Arc::clone(&cp);
        handles.push(thread::spawn(move || {
            for i in 0..500u64 {
                let action = if i % 2 == 0 { "Dim" } else { "Brighten" };
                cp.invoke(
                    &DeviceId::new("lamp-lr"),
                    action,
                    &[],
                    SimTime::from_millis(i),
                )
                .unwrap();
            }
        }));
    }
    {
        let thermo = home.thermometer.clone();
        handles.push(thread::spawn(move || {
            for i in 0..500u64 {
                thermo
                    .set_reading(
                        Rational::from_integer((i % 30) as i64),
                        SimTime::from_millis(i),
                    )
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panicked");
    }

    // All published events arrived exactly once and in per-bus seq order.
    let changes = sub.drain();
    assert!(!changes.is_empty());
    for pair in changes.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    // Final state is one of the two toggle outcomes, never corrupted.
    let tv_power = cp.query(&DeviceId::new("tv-lr"), "power").unwrap();
    assert!(matches!(tv_power, Value::Bool(_)));
}
