//! Priority orders among conflicting rules.
//!
//! When the conflict check confirms that two registered rules can fire
//! together on one device, the framework asks the users for a priority
//! order (paper Fig. 7). Orders are *context-scoped*: "to the TV, Alan has
//! a higher priority than Tom in the context that Alan got home from work,
//! and at the same time Tom has a higher priority in the context that
//! today is Tom's birthday" (§3.2).
//!
//! Two representations are provided:
//!
//! * [`PriorityStore`] — the paper's simplified interface: per-device
//!   *total orders* (ranked lists), each optionally guarded by a context
//!   condition. Context-scoped orders are consulted before default ones.
//! * [`PriorityGraph`] — the general *partial order* of footnote 1:
//!   pairwise preferences with cycle rejection and topological
//!   linearization.

use crate::error::ConflictError;
use cadel_rule::Condition;
use cadel_types::{DeviceId, RuleId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A ranked list of rules for one device, optionally scoped to a context.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PriorityOrder {
    device: DeviceId,
    context: Option<Condition>,
    ranking: Vec<RuleId>,
    label: Option<String>,
}

impl PriorityOrder {
    /// Creates an unconditional (default) order; highest priority first.
    pub fn new(device: DeviceId, ranking: Vec<RuleId>) -> PriorityOrder {
        PriorityOrder {
            device,
            context: None,
            ranking,
            label: None,
        }
    }

    /// Scopes the order to a context condition (builder style).
    #[must_use]
    pub fn in_context(mut self, context: Condition) -> PriorityOrder {
        self.context = Some(context);
        self
    }

    /// Attaches a human-readable label ("Alan got home from work").
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> PriorityOrder {
        self.label = Some(label.into());
        self
    }

    /// The device this order arbitrates.
    pub fn device(&self) -> &DeviceId {
        &self.device
    }

    /// The guarding context, if any.
    pub fn context(&self) -> Option<&Condition> {
        self.context.as_ref()
    }

    /// The ranking, highest priority first.
    pub fn ranking(&self) -> &[RuleId] {
        &self.ranking
    }

    /// The label, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The position of a rule in the ranking (0 = highest), if ranked.
    pub fn rank_of(&self, rule: RuleId) -> Option<usize> {
        self.ranking.iter().position(|r| *r == rule)
    }
}

impl fmt::Display for PriorityOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "priority on {}: ", self.device)?;
        for (i, r) in self.ranking.iter().enumerate() {
            if i > 0 {
                f.write_str(" > ")?;
            }
            write!(f, "{r}")?;
        }
        if let Some(label) = &self.label {
            write!(f, " (when {label})")?;
        } else if self.context.is_some() {
            f.write_str(" (context-scoped)")?;
        }
        Ok(())
    }
}

/// The outcome of runtime arbitration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// An applicable order selected a winner.
    Winner(RuleId),
    /// No applicable order ranked any candidate — the framework must fall
    /// back to a policy or prompt the users (paper §4.4: "lets users ...
    /// follow or modify the current priority order").
    Unresolved(Vec<RuleId>),
}

impl Resolution {
    /// The winning rule, if resolved.
    pub fn winner(&self) -> Option<RuleId> {
        match self {
            Resolution::Winner(id) => Some(*id),
            Resolution::Unresolved(_) => None,
        }
    }
}

/// The set of registered priority orders.
///
/// Resolution consults context-scoped orders (in registration sequence)
/// before default orders, so a specific agreement ("while Alan just got
/// home") overrides the household default.
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PriorityStore {
    orders: Vec<PriorityOrder>,
}

impl PriorityStore {
    /// Creates an empty store.
    pub fn new() -> PriorityStore {
        PriorityStore::default()
    }

    /// Registers an order; returns its index.
    pub fn add_order(&mut self, order: PriorityOrder) -> usize {
        self.orders.push(order);
        self.orders.len() - 1
    }

    /// Registers the linearization of a pairwise preference graph as an
    /// order for `device` — the bridge from the paper's footnote-1 partial
    /// orders to the total orders the runtime consumes.
    pub fn add_order_from_graph(
        &mut self,
        device: DeviceId,
        graph: &PriorityGraph,
        context: Option<Condition>,
    ) -> usize {
        let mut order = PriorityOrder::new(device, graph.linearize());
        if let Some(context) = context {
            order = order.in_context(context);
        }
        self.add_order(order)
    }

    /// Removes an order by index, if present.
    pub fn remove_order(&mut self, index: usize) -> Option<PriorityOrder> {
        if index < self.orders.len() {
            Some(self.orders.remove(index))
        } else {
            None
        }
    }

    /// All orders, registration sequence.
    pub fn orders(&self) -> &[PriorityOrder] {
        &self.orders
    }

    /// The orders that arbitrate `device`.
    pub fn orders_for_device(&self, device: &DeviceId) -> Vec<&PriorityOrder> {
        self.orders
            .iter()
            .filter(|o| o.device() == device)
            .collect()
    }

    /// Arbitrates among candidate rules that fired simultaneously on
    /// `device`.
    ///
    /// `context_holds` reports whether a guard condition currently holds
    /// (the engine evaluates it against the live context store).
    ///
    /// The first applicable order (context-scoped ones first) that ranks
    /// at least one candidate decides; among ranked candidates the lowest
    /// rank wins. Candidates a deciding order does not mention lose to the
    /// ones it ranks.
    pub fn resolve(
        &self,
        device: &DeviceId,
        candidates: &[RuleId],
        mut context_holds: impl FnMut(&Condition) -> bool,
    ) -> Resolution {
        if candidates.is_empty() {
            return Resolution::Unresolved(Vec::new());
        }
        if candidates.len() == 1 {
            return Resolution::Winner(candidates[0]);
        }
        let scoped = self
            .orders
            .iter()
            .filter(|o| o.device() == device && o.context().is_some());
        let default = self
            .orders
            .iter()
            .filter(|o| o.device() == device && o.context().is_none());
        for order in scoped.chain(default) {
            if let Some(ctx) = order.context() {
                if !context_holds(ctx) {
                    continue;
                }
            }
            let best = candidates
                .iter()
                .filter_map(|c| order.rank_of(*c).map(|rank| (rank, *c)))
                .min();
            if let Some((_, winner)) = best {
                return Resolution::Winner(winner);
            }
        }
        Resolution::Unresolved(candidates.to_vec())
    }
}

/// A partial order of pairwise preferences with cycle rejection
/// (footnote 1 of the paper: "in general, the partial order should be
/// defined among those conflicting rules").
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PriorityGraph {
    /// `edges[a]` contains `b` when `a` outranks `b`.
    edges: BTreeMap<RuleId, BTreeSet<RuleId>>,
}

impl PriorityGraph {
    /// Creates an empty graph.
    pub fn new() -> PriorityGraph {
        PriorityGraph::default()
    }

    /// Records that `winner` outranks `loser`.
    ///
    /// # Errors
    ///
    /// Returns [`ConflictError::PriorityCycle`] when the preference would
    /// make the order cyclic (the graph is left unchanged).
    pub fn add_preference(&mut self, winner: RuleId, loser: RuleId) -> Result<(), ConflictError> {
        if winner == loser || self.outranks(loser, winner) {
            return Err(ConflictError::PriorityCycle {
                a: winner,
                b: loser,
            });
        }
        self.edges.entry(winner).or_default().insert(loser);
        Ok(())
    }

    /// Whether `a` (transitively) outranks `b`.
    pub fn outranks(&self, a: RuleId, b: RuleId) -> bool {
        let mut stack = vec![a];
        let mut seen = BTreeSet::new();
        while let Some(current) = stack.pop() {
            if !seen.insert(current) {
                continue;
            }
            if let Some(next) = self.edges.get(&current) {
                if next.contains(&b) {
                    return true;
                }
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// A total order consistent with the preferences (highest first).
    /// Rules never mentioned do not appear.
    pub fn linearize(&self) -> Vec<RuleId> {
        // Kahn's algorithm over the recorded nodes.
        let mut nodes: BTreeSet<RuleId> = self.edges.keys().copied().collect();
        for targets in self.edges.values() {
            nodes.extend(targets.iter().copied());
        }
        let mut indegree: BTreeMap<RuleId, usize> = nodes.iter().map(|n| (*n, 0)).collect();
        for targets in self.edges.values() {
            for t in targets {
                *indegree.get_mut(t).expect("target is a node") += 1;
            }
        }
        let mut ready: BTreeSet<RuleId> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut out = Vec::with_capacity(nodes.len());
        while let Some(&node) = ready.iter().next() {
            ready.remove(&node);
            out.push(node);
            if let Some(targets) = self.edges.get(&node) {
                for t in targets {
                    let d = indegree.get_mut(t).expect("target is a node");
                    *d -= 1;
                    if *d == 0 {
                        ready.insert(*t);
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), nodes.len(), "graph is acyclic by construction");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_rule::{Atom, EventAtom};

    fn id(n: u64) -> RuleId {
        RuleId::new(n)
    }

    fn ctx(name: &str) -> Condition {
        Condition::Atom(Atom::Event(EventAtom::new("person", name)))
    }

    fn tv() -> DeviceId {
        DeviceId::new("tv")
    }

    #[test]
    fn single_candidate_wins_by_default() {
        let store = PriorityStore::new();
        assert_eq!(
            store.resolve(&tv(), &[id(1)], |_| false),
            Resolution::Winner(id(1))
        );
        assert_eq!(
            store.resolve(&tv(), &[], |_| false),
            Resolution::Unresolved(vec![])
        );
    }

    #[test]
    fn default_order_resolves() {
        let mut store = PriorityStore::new();
        store.add_order(PriorityOrder::new(tv(), vec![id(2), id(1), id(3)]));
        let r = store.resolve(&tv(), &[id(1), id(3)], |_| false);
        assert_eq!(r.winner(), Some(id(1)));
    }

    #[test]
    fn context_scoped_order_overrides_default() {
        // Default: Tom's rule (1) over Alan's (2). But while "alan got home
        // from work" holds, Alan wins — the paper's scenario.
        let mut store = PriorityStore::new();
        store.add_order(PriorityOrder::new(tv(), vec![id(1), id(2)]));
        store.add_order(
            PriorityOrder::new(tv(), vec![id(2), id(1)])
                .in_context(ctx("alan got home from work"))
                .with_label("Alan got home from work"),
        );
        // Context off: default applies.
        let r = store.resolve(&tv(), &[id(1), id(2)], |_| false);
        assert_eq!(r.winner(), Some(id(1)));
        // Context on: scoped order takes precedence.
        let r = store.resolve(&tv(), &[id(1), id(2)], |_| true);
        assert_eq!(r.winner(), Some(id(2)));
    }

    #[test]
    fn scoped_orders_consulted_in_sequence() {
        // Emily's arrival outranks Alan's arrival because it was registered
        // first among the scoped orders whose context holds.
        let mut store = PriorityStore::new();
        store.add_order(
            PriorityOrder::new(tv(), vec![id(3), id(2), id(1)])
                .in_context(ctx("emily got home from shopping")),
        );
        store.add_order(
            PriorityOrder::new(tv(), vec![id(2), id(1)]).in_context(ctx("alan got home from work")),
        );
        let r = store.resolve(&tv(), &[id(1), id(2), id(3)], |_| true);
        assert_eq!(r.winner(), Some(id(3)));
    }

    #[test]
    fn inapplicable_orders_are_skipped() {
        let mut store = PriorityStore::new();
        // Order for a different device.
        store.add_order(PriorityOrder::new(
            DeviceId::new("stereo"),
            vec![id(1), id(2)],
        ));
        // Order that ranks neither candidate.
        store.add_order(PriorityOrder::new(tv(), vec![id(7), id(8)]));
        let r = store.resolve(&tv(), &[id(1), id(2)], |_| true);
        assert_eq!(r, Resolution::Unresolved(vec![id(1), id(2)]));
    }

    #[test]
    fn partially_ranked_candidates() {
        // Order ranks only id(2): ranked candidates beat unranked ones.
        let mut store = PriorityStore::new();
        store.add_order(PriorityOrder::new(tv(), vec![id(2)]));
        let r = store.resolve(&tv(), &[id(1), id(2)], |_| false);
        assert_eq!(r.winner(), Some(id(2)));
    }

    #[test]
    fn order_display() {
        let o = PriorityOrder::new(tv(), vec![id(2), id(1)]).with_label("Alan got home");
        let s = o.to_string();
        assert!(s.contains("rule#2 > rule#1"));
        assert!(s.contains("Alan got home"));
    }

    #[test]
    fn graph_rejects_cycles() {
        let mut g = PriorityGraph::new();
        g.add_preference(id(1), id(2)).unwrap();
        g.add_preference(id(2), id(3)).unwrap();
        // 3 > 1 would close a cycle.
        let err = g.add_preference(id(3), id(1)).unwrap_err();
        assert!(matches!(err, ConflictError::PriorityCycle { .. }));
        // Self-preference is rejected too.
        assert!(g.add_preference(id(5), id(5)).is_err());
        // Graph unchanged: 1 still outranks 3 transitively.
        assert!(g.outranks(id(1), id(3)));
        assert!(!g.outranks(id(3), id(1)));
    }

    #[test]
    fn graph_linearizes_consistently() {
        let mut g = PriorityGraph::new();
        g.add_preference(id(3), id(2)).unwrap();
        g.add_preference(id(2), id(1)).unwrap();
        g.add_preference(id(3), id(1)).unwrap();
        let order = g.linearize();
        assert_eq!(order, vec![id(3), id(2), id(1)]);
    }

    #[test]
    fn graph_linearization_respects_all_edges() {
        let mut g = PriorityGraph::new();
        g.add_preference(id(10), id(1)).unwrap();
        g.add_preference(id(20), id(1)).unwrap();
        g.add_preference(id(10), id(20)).unwrap();
        let order = g.linearize();
        let pos = |r: RuleId| order.iter().position(|x| *x == r).unwrap();
        assert!(pos(id(10)) < pos(id(20)));
        assert!(pos(id(20)) < pos(id(1)));
    }

    #[test]
    fn graph_feeds_the_store() {
        // Pairwise household preferences linearize into a usable order.
        let mut g = PriorityGraph::new();
        g.add_preference(id(3), id(1)).unwrap();
        g.add_preference(id(3), id(2)).unwrap();
        g.add_preference(id(2), id(1)).unwrap();
        let mut store = PriorityStore::new();
        store.add_order_from_graph(tv(), &g, Some(ctx("weekend")));
        let r = store.resolve(&tv(), &[id(1), id(2), id(3)], |_| true);
        assert_eq!(r.winner(), Some(id(3)));
        // Context off: the scoped order does not apply.
        let r = store.resolve(&tv(), &[id(1), id(2), id(3)], |_| false);
        assert!(matches!(r, Resolution::Unresolved(_)));
    }

    #[test]
    #[cfg(feature = "serde")]
    fn store_serde_round_trip() {
        let mut store = PriorityStore::new();
        store.add_order(PriorityOrder::new(tv(), vec![id(1), id(2)]).in_context(ctx("x")));
        let json = serde_json::to_string(&store).unwrap();
        assert_eq!(serde_json::from_str::<PriorityStore>(&json).unwrap(), store);
    }
}
