//! Compatibility of the discrete (non-numeric) atoms of a conjunct.
//!
//! The Simplex solver covers linear inequalities; the remaining atom
//! classes have their own small decision procedures:
//!
//! * **Presence** — a person is in at most one place at a time, and
//!   "nobody at P" excludes both named people and "someone" at P.
//! * **Device state** — one state variable holds one value at a time.
//! * **Time** — all time windows must share a minute of the day; weekday
//!   and date guards must agree (including `date.weekday()`).
//! * **Events** — independent; any set of events may co-occur.
//!
//! These checks make conflict detection *complete enough* for CADEL's atom
//! vocabulary while staying conservative: whenever we are unsure, we
//! answer "compatible", which can only over-report conflicts (the safe
//! direction — the user is asked for a priority that may never be needed).

use cadel_rule::{Atom, Subject};
use cadel_types::{Date, TimeWindow, Value, Weekday};
use std::collections::HashMap;

/// Decides whether the discrete atoms of one or more conjuncts can all
/// hold at the same instant.
///
/// Numeric [`Atom::Constraint`]s are ignored here — callers pair this with
/// a `cadel-simplex` feasibility check over the same atoms.
pub fn discrete_compatible<'a>(atoms: impl IntoIterator<Item = &'a Atom>) -> bool {
    let mut presence: HashMap<String, &str> = HashMap::new(); // person -> place
    let mut nobody_places: Vec<&str> = Vec::new();
    let mut somebody_places: Vec<&str> = Vec::new();
    let mut states: HashMap<(String, String), &Value> = HashMap::new();
    let mut window: Option<TimeWindow> = None;
    let mut weekday: Option<Weekday> = None;
    let mut date: Option<Date> = None;

    for atom in atoms {
        match atom.instantaneous() {
            Atom::Presence(p) => match p.subject() {
                Subject::Person(person) => {
                    let place = p.place().as_str();
                    match presence.insert(person.as_str().to_owned(), place) {
                        Some(prev) if prev != place => return false,
                        _ => {}
                    }
                }
                Subject::Nobody => nobody_places.push(p.place().as_str()),
                Subject::Somebody => somebody_places.push(p.place().as_str()),
            },
            Atom::State(s) => {
                let key = (s.device().as_str().to_owned(), s.variable().to_owned());
                match states.insert(key, s.value()) {
                    Some(prev) if !values_agree(prev, s.value()) => return false,
                    _ => {}
                }
            }
            Atom::Time(w) => {
                window = Some(match window {
                    None => *w,
                    Some(existing) => {
                        if !existing.intersects(*w) {
                            return false;
                        }
                        // Keep both by remembering the tighter check is
                        // pairwise; windows are re-tested against each new
                        // one via the running intersection proxy below.
                        intersect_proxy(existing, *w)
                    }
                });
            }
            Atom::Weekday(w) => match weekday {
                None => weekday = Some(*w),
                Some(existing) if existing != *w => return false,
                Some(_) => {}
            },
            Atom::Date(d) => match date {
                None => date = Some(*d),
                Some(existing) if existing != *d => return false,
                Some(_) => {}
            },
            Atom::Constraint(_) | Atom::Event(_) => {}
            Atom::HeldFor { .. } => unreachable!("instantaneous() strips HeldFor"),
            #[allow(unreachable_patterns)]
            _ => {}
        }
    }

    // nobody(P) excludes any named person or "someone" at P.
    for nobody in &nobody_places {
        if presence.values().any(|place| place == nobody) {
            return false;
        }
        if somebody_places.iter().any(|p| p == nobody) {
            return false;
        }
    }

    // A pinned date must fall on any required weekday.
    if let (Some(w), Some(d)) = (weekday, date) {
        if d.weekday() != w {
            return false;
        }
    }

    true
}

/// Two demanded state values agree when equal; text compares
/// case-insensitively.
fn values_agree(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Text(x), b) => b.text_matches(x),
        _ => a == b,
    }
}

/// A conservative running intersection of two overlapping windows.
///
/// For non-wrapping overlapping windows this is the exact intersection.
/// For wrapping windows the exact intersection may be two disjoint arcs,
/// which `TimeWindow` cannot represent; we keep the *later-starting*
/// window, which preserves soundness of the pairwise `intersects` test in
/// the common cases CADEL rules produce (day-part guards).
fn intersect_proxy(a: TimeWindow, b: TimeWindow) -> TimeWindow {
    if !a.wraps() && !b.wraps() {
        let start = a.start().max(b.start());
        let end = a.end().min(b.end());
        return TimeWindow::new(start, end);
    }
    if a.start() >= b.start() {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_rule::{EventAtom, PresenceAtom, StateAtom};
    use cadel_types::{DayPart, DeviceId, PlaceId, SimDuration, TimeOfDay};

    fn at(person: &str, place: &str) -> Atom {
        Atom::Presence(PresenceAtom::person_at(person, place))
    }

    fn nobody(place: &str) -> Atom {
        Atom::Presence(PresenceAtom::new(Subject::Nobody, PlaceId::new(place)))
    }

    fn somebody(place: &str) -> Atom {
        Atom::Presence(PresenceAtom::new(Subject::Somebody, PlaceId::new(place)))
    }

    fn state(device: &str, var: &str, value: Value) -> Atom {
        Atom::State(StateAtom::new(DeviceId::new(device), var, value))
    }

    fn compatible(atoms: &[Atom]) -> bool {
        discrete_compatible(atoms.iter())
    }

    #[test]
    fn empty_set_is_compatible() {
        assert!(compatible(&[]));
    }

    #[test]
    fn person_cannot_be_in_two_places() {
        assert!(!compatible(&[
            at("tom", "living room"),
            at("tom", "kitchen")
        ]));
        assert!(compatible(&[
            at("tom", "living room"),
            at("alan", "kitchen")
        ]));
        // Same place twice is fine.
        assert!(compatible(&[
            at("tom", "living room"),
            at("tom", "living room")
        ]));
    }

    #[test]
    fn nobody_excludes_everyone() {
        assert!(!compatible(&[nobody("hall"), at("tom", "hall")]));
        assert!(!compatible(&[nobody("hall"), somebody("hall")]));
        assert!(compatible(&[nobody("hall"), at("tom", "living room")]));
        assert!(compatible(&[nobody("hall"), somebody("living room")]));
    }

    #[test]
    fn state_variables_hold_one_value() {
        assert!(!compatible(&[
            state("tv", "power", Value::Bool(true)),
            state("tv", "power", Value::Bool(false)),
        ]));
        assert!(compatible(&[
            state("tv", "power", Value::Bool(true)),
            state("tv", "power", Value::Bool(true)),
        ]));
        // Different variables on the same device are independent.
        assert!(compatible(&[
            state("tv", "power", Value::Bool(true)),
            state("tv", "channel", Value::from("4")),
        ]));
    }

    #[test]
    fn text_states_match_case_insensitively() {
        assert!(compatible(&[
            state("tv", "program", Value::from("Baseball Game")),
            state("tv", "program", Value::from("baseball game")),
        ]));
        assert!(!compatible(&[
            state("tv", "program", Value::from("baseball game")),
            state("tv", "program", Value::from("movie")),
        ]));
    }

    #[test]
    fn disjoint_time_windows_are_incompatible() {
        let evening = Atom::Time(DayPart::Evening.window());
        let morning = Atom::Time(DayPart::Morning.window());
        assert!(!compatible(&[evening.clone(), morning]));
        assert!(compatible(&[evening.clone(), evening]));
    }

    #[test]
    fn overlapping_windows_chain() {
        let a = Atom::Time(TimeWindow::new(
            TimeOfDay::hm(10, 0).unwrap(),
            TimeOfDay::hm(14, 0).unwrap(),
        ));
        let b = Atom::Time(TimeWindow::new(
            TimeOfDay::hm(12, 0).unwrap(),
            TimeOfDay::hm(16, 0).unwrap(),
        ));
        let c = Atom::Time(TimeWindow::new(
            TimeOfDay::hm(13, 0).unwrap(),
            TimeOfDay::hm(18, 0).unwrap(),
        ));
        assert!(compatible(&[a.clone(), b.clone(), c]));
        // a ∩ b = [12,14) which misses [15,16).
        let late = Atom::Time(TimeWindow::new(
            TimeOfDay::hm(15, 0).unwrap(),
            TimeOfDay::hm(16, 0).unwrap(),
        ));
        assert!(!compatible(&[a, b, late]));
    }

    #[test]
    fn weekday_and_date_guards() {
        let monday = Atom::Weekday(Weekday::Monday);
        let tuesday = Atom::Weekday(Weekday::Tuesday);
        assert!(!compatible(&[monday.clone(), tuesday]));
        // 2005-06-06 was a Monday.
        let date = Atom::Date(Date::new(2005, 6, 6).unwrap());
        assert!(compatible(&[monday.clone(), date.clone()]));
        let sunday = Atom::Weekday(Weekday::Sunday);
        assert!(!compatible(&[sunday, date.clone()]));
        let other_date = Atom::Date(Date::new(2005, 6, 7).unwrap());
        assert!(!compatible(&[date, other_date]));
    }

    #[test]
    fn events_never_clash() {
        let a = Atom::Event(EventAtom::new("tv-guide", "baseball game"));
        let b = Atom::Event(EventAtom::new("tv-guide", "movie"));
        assert!(compatible(&[a, b]));
    }

    #[test]
    fn held_for_uses_inner_atom() {
        let h1 = Atom::held_for(at("tom", "living room"), SimDuration::from_minutes(5));
        let h2 = Atom::held_for(at("tom", "kitchen"), SimDuration::from_minutes(5));
        assert!(!compatible(&[h1.clone(), h2]));
        assert!(compatible(&[h1]));
    }
}
