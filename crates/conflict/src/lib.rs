//! Consistency checking, conflict detection and priority management —
//! the paper's §4.4 "Consistency and Conflict Check Module".
//!
//! Three responsibilities:
//!
//! 1. **Inconsistency check** ([`check_consistency`]): when a rule is
//!    registered, decide whether its condition can hold at all. A condition
//!    whose every disjunct is unsatisfiable (numerically, via
//!    `cadel-simplex`, or discretely — e.g. the same person demanded in two
//!    rooms at once) is rejected so the user can fix it.
//! 2. **Conflict detection** ([`check_conflict`], [`find_conflicts`]): a
//!    new rule conflicts with an existing one when (a) both target the same
//!    device with *different* actions and (b) their conditions can hold
//!    *simultaneously*. Detection extracts same-device rules through the
//!    [`RuleDb`](cadel_rule::RuleDb) index and solves the concatenated
//!    constraint systems — exactly the procedure timed in experiment E2.
//! 3. **Priority management** ([`PriorityStore`], [`PriorityGraph`]): when
//!    a conflict is confirmed, users rank the conflicting rules; rankings
//!    may be *context-scoped* ("Alan outranks Tom **when Alan got home from
//!    work**; Tom outranks Alan **when today is Tom's birthday**" — §3.2).
//!    The engine consults the store at runtime to arbitrate simultaneous
//!    firings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod checker;
pub mod discrete;
pub mod error;
pub mod priority;

pub use check::{check_conflict, check_consistency, find_conflicts, Conflict, ConsistencyReport};
pub use checker::ConflictChecker;
pub use discrete::discrete_compatible;
pub use error::ConflictError;
pub use priority::{PriorityGraph, PriorityOrder, PriorityStore, Resolution};
