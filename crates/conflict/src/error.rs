//! Errors of the consistency/conflict layer.

use cadel_rule::RuleError;
use cadel_simplex::SolveError;
use cadel_types::RuleId;
use std::error::Error;
use std::fmt;

/// Errors raised while checking rules or managing priorities.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConflictError {
    /// The rule layer reported a problem (dimension mismatch, DNF blowup).
    Rule(RuleError),
    /// The satisfiability solver failed (overflow, pivot limit).
    Solve(SolveError),
    /// Registering a pairwise preference would create a cycle, so no
    /// consistent priority order exists.
    PriorityCycle {
        /// A rule on the cycle.
        a: RuleId,
        /// The other endpoint of the closing edge.
        b: RuleId,
    },
}

impl fmt::Display for ConflictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictError::Rule(e) => write!(f, "rule error: {e}"),
            ConflictError::Solve(e) => write!(f, "solver error: {e}"),
            ConflictError::PriorityCycle { a, b } => {
                write!(f, "priority preference {a} over {b} would create a cycle")
            }
        }
    }
}

impl Error for ConflictError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConflictError::Rule(e) => Some(e),
            ConflictError::Solve(e) => Some(e),
            ConflictError::PriorityCycle { .. } => None,
        }
    }
}

impl From<RuleError> for ConflictError {
    fn from(e: RuleError) -> Self {
        ConflictError::Rule(e)
    }
}

impl From<SolveError> for ConflictError {
    fn from(e: SolveError) -> Self {
        ConflictError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ConflictError>();
    }

    #[test]
    fn sources_chain() {
        let e = ConflictError::from(SolveError::Overflow);
        assert!(e.source().is_some());
        let e = ConflictError::PriorityCycle {
            a: RuleId::new(1),
            b: RuleId::new(2),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("cycle"));
    }
}
