//! Incremental conflict detection over precompiled rule programs.
//!
//! [`find_conflicts`](crate::find_conflicts) recompiles every constraint
//! system from the AST on each call. At registration time that cost is paid
//! once per *pair* of same-device rules, every time any rule is added — the
//! E2 workload grows quadratically. [`ConflictChecker`] removes both
//! redundancies:
//!
//! * **Precompiled systems.** When the [`RuleDb`] holds a compiled
//!   [`RuleProgram`](cadel_ir::RuleProgram) for a rule (the normal case),
//!   its per-conjunct constraint systems are reused as-is; joining two
//!   conjuncts is a variable-remap ([`merge_conjuncts`]) instead of two
//!   AST walks through a fresh `VarPool`.
//! * **Memoized verdicts.** Pairwise results are cached under
//!   `(rule, revision, rule, revision)`. The database stamps a fresh
//!   revision whenever a rule is (re)stored, so a cache hit is always
//!   current; re-registering a changed rule naturally misses.
//!
//! Rules without a program (a compile failure, e.g. a dimension clash
//! inside one rule) fall back to the AST path of
//! [`check_conflict`](crate::check_conflict), so the checker's verdicts
//! match the plain functions on every input.

use crate::check::Conflict;
use crate::discrete::discrete_compatible;
use crate::error::ConflictError;
use cadel_ir::{merge_conjuncts, CompiledConjunct};
use cadel_obs::{LazyCounter, LazyHistogram, Stopwatch};
use cadel_rule::{compile_conjuncts, Rule, RuleDb, RuleError};
use cadel_simplex::{solve, Solution};
use cadel_types::RuleId;
use std::collections::HashMap;

/// Conflict scans (one per [`ConflictChecker::find_conflicts`] call).
static CHECKS: LazyCounter = LazyCounter::new("conflict_checks_total");
/// Same-device rule pairs considered across all scans.
static PAIR_CHECKS: LazyCounter = LazyCounter::new("conflict_pair_checks_total");
/// Pairs answered from the memo cache.
static MEMO_HITS: LazyCounter = LazyCounter::new("conflict_memo_hits_total");
/// Pairs that had to be computed (solver or AST path).
static MEMO_MISSES: LazyCounter = LazyCounter::new("conflict_memo_misses_total");
/// Computed pair verdicts that found a conflict.
static PAIRS_CONFLICTING: LazyCounter = LazyCounter::new("conflict_pairs_conflicting_total");
/// Wall-clock latency of one whole scan.
static CHECK_NS: LazyHistogram = LazyHistogram::new("conflict_check_duration_ns");

/// A conflict detector that reuses precompiled constraint systems and
/// memoizes pairwise verdicts across registrations.
///
/// Hold one checker alongside the [`RuleDb`] whose rules it checks; the
/// cache is keyed by the database's per-artifact revision stamps, so it
/// stays correct across removals and re-inserts without explicit
/// invalidation. Stale entries (for revisions no longer in the database)
/// are retained until [`ConflictChecker::clear`] is called.
#[derive(Clone, Debug, Default)]
pub struct ConflictChecker {
    cache: HashMap<(RuleId, u64, RuleId, u64), Option<Conflict>>,
}

impl ConflictChecker {
    /// Creates a checker with an empty verdict cache.
    pub fn new() -> ConflictChecker {
        ConflictChecker::default()
    }

    /// Number of memoized pairwise verdicts.
    pub fn cached_pairs(&self) -> usize {
        self.cache.len()
    }

    /// Drops all memoized verdicts.
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    /// Finds every enabled same-device rule in `db` that conflicts with
    /// `probe` — the compiled equivalent of
    /// [`find_conflicts`](crate::find_conflicts), with identical results.
    ///
    /// The probe's constraint systems are taken from the database when the
    /// probe is already stored there unchanged (enabling memoization), and
    /// compiled once for the whole scan otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`ConflictError`] on solver overflow or dimension mismatch.
    pub fn find_conflicts(
        &mut self,
        db: &RuleDb,
        probe: &Rule,
    ) -> Result<Vec<Conflict>, ConflictError> {
        let sw = Stopwatch::start();
        CHECKS.inc();
        let result = self.find_conflicts_inner(db, probe);
        CHECK_NS.record(&sw);
        result
    }

    fn find_conflicts_inner(
        &mut self,
        db: &RuleDb,
        probe: &Rule,
    ) -> Result<Vec<Conflict>, ConflictError> {
        // The probe is cacheable only when the database holds this exact
        // rule: its revision then keys the verdict. An unstored (or
        // since-modified) probe gets a one-shot compilation instead.
        let probe_rev = match db.get(probe.id()) {
            Some(stored) if stored == probe => db.revision(probe.id()),
            _ => None,
        };
        let probe_compiled: Option<Vec<CompiledConjunct>> = match probe_rev {
            Some(_) => None, // use the stored program directly
            None => compile_conjuncts(probe).ok(),
        };
        let probe_conjuncts: Option<&[CompiledConjunct]> = match probe_rev {
            Some(_) => db.program(probe.id()).map(|p| p.conjuncts()),
            None => probe_compiled.as_deref(),
        };

        let mut conflicts = Vec::new();
        for existing in db.rules_for_device(probe.action().device()) {
            if existing.id() == probe.id() || !existing.is_enabled() {
                continue;
            }
            let existing_rev = db.revision(existing.id());
            PAIR_CHECKS.inc();
            let key = match (probe_rev, existing_rev) {
                (Some(pr), Some(er)) => Some((probe.id(), pr, existing.id(), er)),
                _ => None,
            };
            if let Some(key) = key {
                if let Some(verdict) = self.cache.get(&key) {
                    MEMO_HITS.inc();
                    conflicts.extend(verdict.clone());
                    continue;
                }
            }
            MEMO_MISSES.inc();
            let verdict = match (probe_conjuncts, db.program(existing.id())) {
                (Some(pc), Some(program)) => {
                    check_conflict_compiled(probe, pc, existing, program.conjuncts())?
                }
                // Either side failed to compile: AST fallback.
                _ => crate::check::check_conflict(probe, existing)?,
            };
            if verdict.is_some() {
                PAIRS_CONFLICTING.inc();
            }
            if let Some(key) = key {
                self.cache.insert(key, verdict.clone());
            }
            conflicts.extend(verdict);
        }
        Ok(conflicts)
    }
}

/// Pairwise conflict check over precompiled conjunct systems; semantics
/// identical to [`check_conflict`](crate::check_conflict).
///
/// `a_sys` / `b_sys` must be the compiled systems of `a` / `b`, aligned
/// index-for-index with each rule's DNF (as produced by
/// [`compile_conjuncts`] or stored in a [`RuleProgram`](cadel_ir::RuleProgram)).
fn check_conflict_compiled(
    a: &Rule,
    a_sys: &[CompiledConjunct],
    b: &Rule,
    b_sys: &[CompiledConjunct],
) -> Result<Option<Conflict>, ConflictError> {
    if !a.action().conflicts_with(b.action()) {
        return Ok(None);
    }
    debug_assert_eq!(a.dnf().conjuncts().len(), a_sys.len());
    debug_assert_eq!(b.dnf().conjuncts().len(), b_sys.len());
    for (i, (ca, ca_sys)) in a.dnf().conjuncts().iter().zip(a_sys).enumerate() {
        for (j, (cb, cb_sys)) in b.dnf().conjuncts().iter().zip(b_sys).enumerate() {
            let atoms = ca.atoms().iter().chain(cb.atoms().iter());
            if !discrete_compatible(atoms) {
                continue;
            }
            // The merge unifies shared sensors exactly like a shared
            // VarPool would, with a's variables first — so the witness
            // ordering matches the AST path.
            let (system, keys) = merge_conjuncts(ca_sys, cb_sys).map_err(RuleError::from)?;
            if let Solution::Feasible(assignment) = solve(&system)? {
                let witness = keys
                    .into_iter()
                    .zip(assignment.iter())
                    .map(|(key, value)| (key, *value))
                    .collect();
                return Ok(Some(Conflict::new(a.id(), b.id(), i, j, witness)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::find_conflicts;
    use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Verb};
    use cadel_simplex::RelOp;
    use cadel_types::{DeviceId, PersonId, Quantity, SensorKey, Unit};

    fn temp(op: RelOp, n: i64) -> Condition {
        Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo"), "temperature"),
            op,
            Quantity::from_integer(n, Unit::Celsius),
        )))
    }

    fn humid(op: RelOp, n: i64) -> Condition {
        Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("hygro"), "humidity"),
            op,
            Quantity::from_integer(n, Unit::Percent),
        )))
    }

    fn aircon_at(owner: &str, setpoint: i64, cond: Condition, id: u64) -> Rule {
        Rule::builder(PersonId::new(owner))
            .condition(cond)
            .action(
                ActionSpec::new(DeviceId::new("aircon"), Verb::TurnOn).with_setting(
                    "temperature",
                    Quantity::from_integer(setpoint, Unit::Celsius),
                ),
            )
            .build(RuleId::new(id))
            .unwrap()
    }

    fn paper_db() -> RuleDb {
        let mut db = RuleDb::new();
        db.insert(aircon_at(
            "alan",
            24,
            temp(RelOp::Gt, 25).and(humid(RelOp::Gt, 60)),
            100,
        ))
        .unwrap();
        db.insert(aircon_at(
            "emily",
            27,
            temp(RelOp::Gt, 29).and(humid(RelOp::Gt, 75)),
            101,
        ))
        .unwrap();
        db.insert(aircon_at("x", 20, temp(RelOp::Lt, 0), 102))
            .unwrap();
        db
    }

    #[test]
    fn checker_agrees_with_plain_find_conflicts() {
        let db = paper_db();
        let tom = aircon_at(
            "tom",
            25,
            temp(RelOp::Gt, 26).and(humid(RelOp::Gt, 65)),
            200,
        );
        let plain = find_conflicts(&db, &tom).unwrap();
        let compiled = ConflictChecker::new().find_conflicts(&db, &tom).unwrap();
        assert_eq!(plain, compiled);
        let partners: Vec<u64> = compiled.iter().map(|c| c.rule_b().raw()).collect();
        assert_eq!(partners, vec![100, 101]);
        // Witness ordering and content match the shared-VarPool path too.
        assert_eq!(plain[0].witness(), compiled[0].witness());
        assert_eq!(compiled[0].witness().len(), 2);
    }

    #[test]
    fn unstored_probe_is_not_cached() {
        let db = paper_db();
        let tom = aircon_at(
            "tom",
            25,
            temp(RelOp::Gt, 26).and(humid(RelOp::Gt, 65)),
            200,
        );
        let mut checker = ConflictChecker::new();
        checker.find_conflicts(&db, &tom).unwrap();
        assert_eq!(checker.cached_pairs(), 0);
    }

    #[test]
    fn stored_probe_memoizes_and_replays() {
        let mut db = paper_db();
        let tom = aircon_at(
            "tom",
            25,
            temp(RelOp::Gt, 26).and(humid(RelOp::Gt, 65)),
            200,
        );
        db.insert(tom.clone()).unwrap();
        let mut checker = ConflictChecker::new();
        let first = checker.find_conflicts(&db, &tom).unwrap();
        assert_eq!(checker.cached_pairs(), 3); // one verdict per partner
        let second = checker.find_conflicts(&db, &tom).unwrap();
        assert_eq!(first, second);
        assert_eq!(checker.cached_pairs(), 3); // pure replay, no growth
    }

    #[test]
    fn reinserting_a_changed_rule_misses_the_cache() {
        let mut db = paper_db();
        let tom = aircon_at(
            "tom",
            25,
            temp(RelOp::Gt, 26).and(humid(RelOp::Gt, 65)),
            200,
        );
        db.insert(tom.clone()).unwrap();
        let mut checker = ConflictChecker::new();
        assert_eq!(checker.find_conflicts(&db, &tom).unwrap().len(), 2);

        // Replace Tom's rule with a condition disjoint from every stored
        // band (t>25, t>29, t<0): the fresh revision keys new cache
        // entries and the verdicts flip.
        let mild_tom = aircon_at("tom", 25, temp(RelOp::Gt, 10).and(temp(RelOp::Lt, 20)), 200);
        db.remove(RuleId::new(200)).unwrap();
        db.insert(mild_tom.clone()).unwrap();
        assert!(checker.find_conflicts(&db, &mild_tom).unwrap().is_empty());
        checker.clear();
        assert_eq!(checker.cached_pairs(), 0);
    }

    #[test]
    fn uncompilable_rules_fall_back_to_the_ast_path() {
        // A rule whose condition clashes dimensions never gets a program,
        // so the pair goes through plain check_conflict.
        let mut db = RuleDb::new();
        let clash = Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("multi"), "reading"),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        )))
        .and(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("multi"), "reading"),
            RelOp::Gt,
            Quantity::from_integer(60, Unit::Percent),
        ))));
        db.insert(aircon_at("alan", 24, clash, 100)).unwrap();
        assert!(db.program(RuleId::new(100)).is_none());

        let tom = aircon_at("tom", 25, temp(RelOp::Gt, 26), 200);
        let mut checker = ConflictChecker::new();
        // Plain path errors on the dimension clash; so must the checker.
        assert!(find_conflicts(&db, &tom).is_err());
        assert!(checker.find_conflicts(&db, &tom).is_err());
    }
}
