//! Registration-time consistency and conflict checks (paper §4.4).

use crate::discrete::discrete_compatible;
use crate::error::ConflictError;
use cadel_rule::{Rule, RuleDb, VarPool};
use cadel_simplex::{solve, Solution};
use cadel_types::{Rational, RuleId, SensorKey};
use std::fmt;

/// The outcome of checking a single rule's own condition.
#[derive(Clone, Debug, PartialEq)]
pub struct ConsistencyReport {
    satisfiable: bool,
    dead_conjuncts: Vec<usize>,
    total_conjuncts: usize,
}

impl ConsistencyReport {
    /// Whether the condition can hold at all. An inconsistent rule should
    /// be bounced back to the user ("the module warns the user to modify
    /// the condition").
    pub fn is_satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// Indices (into the DNF) of disjuncts that can never hold. A rule can
    /// be satisfiable overall yet contain dead branches worth warning
    /// about.
    pub fn dead_conjuncts(&self) -> &[usize] {
        &self.dead_conjuncts
    }

    /// Total number of DNF disjuncts examined.
    pub fn total_conjuncts(&self) -> usize {
        self.total_conjuncts
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.satisfiable {
            if self.dead_conjuncts.is_empty() {
                write!(f, "consistent ({} disjunct(s))", self.total_conjuncts)
            } else {
                write!(
                    f,
                    "consistent, but {} of {} disjunct(s) can never hold",
                    self.dead_conjuncts.len(),
                    self.total_conjuncts
                )
            }
        } else {
            write!(f, "inconsistent: the condition can never hold")
        }
    }
}

/// Checks whether a rule's condition is satisfiable (the *inconsistency
/// check* run at registration).
///
/// Each DNF disjunct is tested independently: its numeric atoms go through
/// the simplex, its discrete atoms through [`discrete_compatible`]. The
/// rule is consistent when at least one disjunct passes both.
///
/// # Errors
///
/// Returns [`ConflictError`] on solver overflow or dimension mismatch.
pub fn check_consistency(rule: &Rule) -> Result<ConsistencyReport, ConflictError> {
    let conjuncts = rule.dnf().conjuncts();
    let mut dead = Vec::new();
    for (i, conjunct) in conjuncts.iter().enumerate() {
        let mut pool = VarPool::new();
        let system = pool.conjunct_constraints(conjunct)?;
        let numeric_ok = solve(&system)?.is_feasible();
        let discrete_ok = discrete_compatible(conjunct.atoms().iter());
        if !(numeric_ok && discrete_ok) {
            dead.push(i);
        }
    }
    Ok(ConsistencyReport {
        satisfiable: dead.len() < conjuncts.len(),
        dead_conjuncts: dead,
        total_conjuncts: conjuncts.len(),
    })
}

/// Evidence that two rules conflict: which disjuncts can co-fire and a
/// concrete sensor assignment under which both conditions hold.
#[derive(Clone, Debug, PartialEq)]
pub struct Conflict {
    rule_a: RuleId,
    rule_b: RuleId,
    conjunct_a: usize,
    conjunct_b: usize,
    witness: Vec<(SensorKey, Rational)>,
}

impl Conflict {
    /// Assembles a conflict record (shared with the compiled-path checker).
    pub(crate) fn new(
        rule_a: RuleId,
        rule_b: RuleId,
        conjunct_a: usize,
        conjunct_b: usize,
        witness: Vec<(SensorKey, Rational)>,
    ) -> Conflict {
        Conflict {
            rule_a,
            rule_b,
            conjunct_a,
            conjunct_b,
            witness,
        }
    }

    /// The first rule (the one being registered, in [`find_conflicts`]).
    pub fn rule_a(&self) -> RuleId {
        self.rule_a
    }

    /// The existing rule it conflicts with.
    pub fn rule_b(&self) -> RuleId {
        self.rule_b
    }

    /// The index of the co-satisfiable disjunct of rule A.
    pub fn conjunct_a(&self) -> usize {
        self.conjunct_a
    }

    /// The index of the co-satisfiable disjunct of rule B.
    pub fn conjunct_b(&self) -> usize {
        self.conjunct_b
    }

    /// A sensor assignment (in canonical units) under which both
    /// conditions hold simultaneously — shown to the user when prompting
    /// for a priority.
    pub fn witness(&self) -> &[(SensorKey, Rational)] {
        &self.witness
    }
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} conflicts with {}", self.rule_a, self.rule_b)?;
        if !self.witness.is_empty() {
            f.write_str(" (e.g. when ")?;
            for (i, (key, value)) in self.witness.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{key} = {value}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// Checks whether two rules conflict: same device, different actions, and
/// co-satisfiable conditions.
///
/// Returns `None` when they cannot conflict; otherwise the first
/// co-satisfiable disjunct pair with a witness.
///
/// # Errors
///
/// Returns [`ConflictError`] on solver overflow or dimension mismatch.
pub fn check_conflict(a: &Rule, b: &Rule) -> Result<Option<Conflict>, ConflictError> {
    if !a.action().conflicts_with(b.action()) {
        return Ok(None);
    }
    for (i, ca) in a.dnf().conjuncts().iter().enumerate() {
        for (j, cb) in b.dnf().conjuncts().iter().enumerate() {
            // Discrete compatibility over the union of atoms.
            let atoms = ca.atoms().iter().chain(cb.atoms().iter());
            if !discrete_compatible(atoms) {
                continue;
            }
            // Joint numeric feasibility: one shared pool so common sensors
            // become the same variable.
            let mut pool = VarPool::new();
            let mut system = pool.conjunct_constraints(ca)?;
            system.extend(pool.conjunct_constraints(cb)?);
            if let Solution::Feasible(assignment) = solve(&system)? {
                let witness = assignment
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, value)| {
                        pool.key_for(cadel_simplex::VarId::new(idx as u32))
                            .map(|key| (key.clone(), *value))
                    })
                    .collect();
                return Ok(Some(Conflict {
                    rule_a: a.id(),
                    rule_b: b.id(),
                    conjunct_a: i,
                    conjunct_b: j,
                    witness,
                }));
            }
        }
    }
    Ok(None)
}

/// Finds every existing rule the new rule conflicts with — the full
/// registration-time procedure of §4.4 and the workload of experiment E2:
///
/// 1. extract same-device rules through the database index,
/// 2. for each, build the concatenated inequality system,
/// 3. decide feasibility.
///
/// Disabled rules and the rule itself (when already stored) are skipped.
///
/// # Errors
///
/// Returns [`ConflictError`] on solver overflow or dimension mismatch.
pub fn find_conflicts(db: &RuleDb, new_rule: &Rule) -> Result<Vec<Conflict>, ConflictError> {
    let mut conflicts = Vec::new();
    for existing in db.rules_for_device(new_rule.action().device()) {
        if existing.id() == new_rule.id() || !existing.is_enabled() {
            continue;
        }
        if let Some(conflict) = check_conflict(new_rule, existing)? {
            conflicts.push(conflict);
        }
    }
    Ok(conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, EventAtom, PresenceAtom, Verb};
    use cadel_simplex::RelOp;
    use cadel_types::{DeviceId, PersonId, Quantity, Unit};

    fn temp(op: RelOp, n: i64) -> Condition {
        Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo"), "temperature"),
            op,
            Quantity::from_integer(n, Unit::Celsius),
        )))
    }

    fn humid(op: RelOp, n: i64) -> Condition {
        Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("hygro"), "humidity"),
            op,
            Quantity::from_integer(n, Unit::Percent),
        )))
    }

    fn aircon_at(owner: &str, setpoint: i64, cond: Condition, id: u64) -> Rule {
        Rule::builder(PersonId::new(owner))
            .condition(cond)
            .action(
                ActionSpec::new(DeviceId::new("aircon"), Verb::TurnOn).with_setting(
                    "temperature",
                    Quantity::from_integer(setpoint, Unit::Celsius),
                ),
            )
            .build(RuleId::new(id))
            .unwrap()
    }

    #[test]
    fn consistent_rule_passes() {
        let rule = aircon_at("tom", 25, temp(RelOp::Gt, 26).and(humid(RelOp::Gt, 65)), 1);
        let report = check_consistency(&rule).unwrap();
        assert!(report.is_satisfiable());
        assert!(report.dead_conjuncts().is_empty());
        assert!(report.to_string().contains("consistent"));
    }

    #[test]
    fn numerically_impossible_rule_is_flagged() {
        // temperature > 30 and temperature < 20: can never hold.
        let rule = aircon_at("tom", 25, temp(RelOp::Gt, 30).and(temp(RelOp::Lt, 20)), 1);
        let report = check_consistency(&rule).unwrap();
        assert!(!report.is_satisfiable());
        assert_eq!(report.dead_conjuncts(), &[0]);
        assert!(report.to_string().contains("never hold"));
    }

    #[test]
    fn discretely_impossible_rule_is_flagged() {
        let cond = Condition::Atom(Atom::Presence(PresenceAtom::person_at("tom", "kitchen"))).and(
            Condition::Atom(Atom::Presence(PresenceAtom::person_at(
                "tom",
                "living room",
            ))),
        );
        let rule = aircon_at("tom", 25, cond, 1);
        assert!(!check_consistency(&rule).unwrap().is_satisfiable());
    }

    #[test]
    fn dead_branch_is_reported_but_rule_stays_consistent() {
        let dead = temp(RelOp::Gt, 30).and(temp(RelOp::Lt, 20));
        let alive = temp(RelOp::Gt, 26);
        let rule = aircon_at("tom", 25, dead.or(alive), 1);
        let report = check_consistency(&rule).unwrap();
        assert!(report.is_satisfiable());
        assert_eq!(report.dead_conjuncts(), &[0]);
        assert_eq!(report.total_conjuncts(), 2);
    }

    #[test]
    fn paper_aircon_example_conflicts() {
        // Tom: t>26 ∧ h>65 → 25°C; Alan: t>25 ∧ h>60 → 24°C.
        let tom = aircon_at("tom", 25, temp(RelOp::Gt, 26).and(humid(RelOp::Gt, 65)), 1);
        let alan = aircon_at("alan", 24, temp(RelOp::Gt, 25).and(humid(RelOp::Gt, 60)), 2);
        let conflict = check_conflict(&tom, &alan)
            .unwrap()
            .expect("should conflict");
        assert_eq!(conflict.rule_a(), RuleId::new(1));
        assert_eq!(conflict.rule_b(), RuleId::new(2));
        // The witness names both sensors with values satisfying all four
        // inequalities.
        assert_eq!(conflict.witness().len(), 2);
        let display = conflict.to_string();
        assert!(display.contains("conflicts with"));
    }

    #[test]
    fn same_action_is_not_a_conflict() {
        // Identical setpoints: both rules want the same thing.
        let tom = aircon_at("tom", 25, temp(RelOp::Gt, 26), 1);
        let alan = aircon_at("alan", 25, temp(RelOp::Gt, 25), 2);
        assert!(check_conflict(&tom, &alan).unwrap().is_none());
    }

    #[test]
    fn disjoint_conditions_do_not_conflict() {
        // Tom's rule fires below 10°C, Alan's above 30°C.
        let tom = aircon_at("tom", 25, temp(RelOp::Lt, 10), 1);
        let alan = aircon_at("alan", 24, temp(RelOp::Gt, 30), 2);
        assert!(check_conflict(&tom, &alan).unwrap().is_none());
    }

    #[test]
    fn discretely_disjoint_conditions_do_not_conflict() {
        // Emily-watching-TV-in-living-room vs nobody-in-living-room.
        let a = Rule::builder(PersonId::new("emily"))
            .condition(Condition::Atom(Atom::Presence(PresenceAtom::person_at(
                "emily",
                "living room",
            ))))
            .action(ActionSpec::new(DeviceId::new("tv"), Verb::TurnOn))
            .build(RuleId::new(1))
            .unwrap();
        let b = Rule::builder(PersonId::new("alan"))
            .condition(Condition::Atom(Atom::Presence(PresenceAtom::new(
                cadel_rule::Subject::Nobody,
                cadel_types::PlaceId::new("living room"),
            ))))
            .action(ActionSpec::new(DeviceId::new("tv"), Verb::TurnOff))
            .build(RuleId::new(2))
            .unwrap();
        assert!(check_conflict(&a, &b).unwrap().is_none());
    }

    #[test]
    fn disjunctive_conditions_check_all_pairs() {
        // A fires on (impossible) or (t>26); B fires on (t<30).
        let a = aircon_at(
            "tom",
            25,
            temp(RelOp::Gt, 50)
                .and(temp(RelOp::Lt, 40))
                .or(temp(RelOp::Gt, 26)),
            1,
        );
        let b = aircon_at("alan", 24, temp(RelOp::Lt, 30), 2);
        let conflict = check_conflict(&a, &b).unwrap().expect("should conflict");
        assert_eq!(conflict.conjunct_a(), 1); // the live disjunct
        assert_eq!(conflict.conjunct_b(), 0);
    }

    #[test]
    fn find_conflicts_scans_only_same_device() {
        let mut db = RuleDb::new();
        // 20 rules on the stereo, 3 on the aircon; one aircon rule overlaps.
        for i in 0..20 {
            db.insert(
                Rule::builder(PersonId::new("x"))
                    .condition(Condition::Atom(Atom::Event(EventAtom::new(
                        "e",
                        format!("{i}"),
                    ))))
                    .action(ActionSpec::new(DeviceId::new("stereo"), Verb::Play))
                    .build(RuleId::new(i))
                    .unwrap(),
            )
            .unwrap();
        }
        db.insert(aircon_at(
            "alan",
            24,
            temp(RelOp::Gt, 25).and(humid(RelOp::Gt, 60)),
            100,
        ))
        .unwrap();
        db.insert(aircon_at(
            "emily",
            27,
            temp(RelOp::Gt, 29).and(humid(RelOp::Gt, 75)),
            101,
        ))
        .unwrap();
        db.insert(aircon_at("x", 20, temp(RelOp::Lt, 0), 102))
            .unwrap();

        let tom = aircon_at(
            "tom",
            25,
            temp(RelOp::Gt, 26).and(humid(RelOp::Gt, 65)),
            200,
        );
        let conflicts = find_conflicts(&db, &tom).unwrap();
        // Tom conflicts with Alan (overlap) and Emily (29< t allows both),
        // but not with the sub-zero rule.
        let partners: Vec<u64> = conflicts.iter().map(|c| c.rule_b().raw()).collect();
        assert_eq!(partners, vec![100, 101]);
    }

    #[test]
    fn find_conflicts_skips_disabled_and_self() {
        let mut db = RuleDb::new();
        let alan = aircon_at("alan", 24, temp(RelOp::Gt, 25), 1).with_enabled(false);
        db.insert(alan).unwrap();
        let tom = aircon_at("tom", 25, temp(RelOp::Gt, 26), 2);
        db.insert(tom.clone()).unwrap();
        // Alan is disabled; Tom does not conflict with himself.
        assert!(find_conflicts(&db, &tom).unwrap().is_empty());
    }
}
