//! Property tests over the conflict checker's core guarantees.

// Requires the `proptest` feature (and its dev-dependency); the default
// build is offline and compiles this file to nothing.
#![cfg(feature = "proptest")]

use cadel_conflict::{check_conflict, check_consistency};
use cadel_rule::{
    ActionSpec, Atom, Condition, ConstraintAtom, EventAtom, PresenceAtom, Rule, Verb,
};
use cadel_simplex::RelOp;
use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, Unit};
use proptest::prelude::*;

fn arb_relop() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        Just(RelOp::Lt),
        Just(RelOp::Le),
        Just(RelOp::Gt),
        Just(RelOp::Ge),
        Just(RelOp::Eq),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        // Numeric constraints over 3 shared sensors.
        (0u32..3, arb_relop(), -10i64..40).prop_map(|(s, op, t)| {
            Atom::Constraint(ConstraintAtom::new(
                SensorKey::new(DeviceId::new(format!("sensor-{s}")), "reading"),
                op,
                Quantity::from_integer(t, Unit::Celsius),
            ))
        }),
        // Presence of 2 people over 2 places.
        (0u32..2, 0u32..2).prop_map(|(p, r)| {
            Atom::Presence(PresenceAtom::person_at(
                format!("person-{p}"),
                format!("room-{r}"),
            ))
        }),
        // Events on a shared channel.
        (0u32..3).prop_map(|e| Atom::Event(EventAtom::new("chan", format!("event-{e}")))),
    ]
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    proptest::collection::vec(arb_atom(), 1..4).prop_flat_map(|atoms| {
        (Just(atoms), proptest::bool::ANY).prop_map(|(atoms, use_or)| {
            let mut iter = atoms.into_iter().map(Condition::Atom);
            let first = iter.next().expect("at least one atom");
            iter.fold(first, |acc, c| if use_or { acc.or(c) } else { acc.and(c) })
        })
    })
}

fn arb_rule(id: u64) -> impl Strategy<Value = Rule> {
    (arb_condition(), 0u32..2, 0i64..3).prop_map(move |(condition, verb, setpoint)| {
        let verb = if verb == 0 {
            Verb::TurnOn
        } else {
            Verb::TurnOff
        };
        Rule::builder(PersonId::new(format!("user-{id}")))
            .condition(condition)
            .action(
                ActionSpec::new(DeviceId::new("shared-device"), verb).with_setting(
                    "temperature",
                    Quantity::from_integer(20 + setpoint, Unit::Celsius),
                ),
            )
            .build(RuleId::new(id))
            .expect("generated rules are simple enough to build")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The conflict verdict is symmetric: whether two rules can collide
    /// does not depend on which one is "being registered".
    #[test]
    fn conflict_verdict_is_symmetric(a in arb_rule(1), b in arb_rule(2)) {
        let ab = check_conflict(&a, &b).unwrap().is_some();
        let ba = check_conflict(&b, &a).unwrap().is_some();
        prop_assert_eq!(ab, ba);
    }

    /// A rule never conflicts with an exact copy of itself under a new id
    /// and owner (identical actions are compatible by §4.4).
    #[test]
    fn rule_never_conflicts_with_its_clone(a in arb_rule(1)) {
        let clone = a.clone().reassigned(RuleId::new(99), PersonId::new("other"));
        prop_assert!(check_conflict(&a, &clone).unwrap().is_none());
    }

    /// Conflicting rules are individually consistent: a conflict requires
    /// both conditions to hold somewhere, so each must be satisfiable.
    #[test]
    fn conflicts_imply_consistency(a in arb_rule(1), b in arb_rule(2)) {
        if check_conflict(&a, &b).unwrap().is_some() {
            prop_assert!(check_consistency(&a).unwrap().is_satisfiable());
            prop_assert!(check_consistency(&b).unwrap().is_satisfiable());
        }
    }

    /// An inconsistent rule conflicts with nothing.
    #[test]
    fn inconsistent_rules_conflict_with_nothing(b in arb_rule(2)) {
        let impossible = Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("sensor-0"), "reading"),
            RelOp::Gt,
            Quantity::from_integer(50, Unit::Celsius),
        )))
        .and(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("sensor-0"), "reading"),
            RelOp::Lt,
            Quantity::from_integer(-50, Unit::Celsius),
        ))));
        let a = Rule::builder(PersonId::new("x"))
            .condition(impossible)
            .action(ActionSpec::new(DeviceId::new("shared-device"), Verb::TurnOn))
            .build(RuleId::new(1))
            .unwrap();
        prop_assert!(!check_consistency(&a).unwrap().is_satisfiable());
        prop_assert!(check_conflict(&a, &b).unwrap().is_none());
    }

    /// Widening a threshold can only preserve or create conflicts, never
    /// remove them (monotonicity of satisfiability in the bound).
    #[test]
    fn loosening_a_lower_bound_preserves_conflicts(
        b in arb_rule(2),
        tight in 0i64..30,
        slack in 1i64..10,
    ) {
        let make = |threshold: i64| {
            Rule::builder(PersonId::new("x"))
                .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                    SensorKey::new(DeviceId::new("sensor-0"), "reading"),
                    RelOp::Gt,
                    Quantity::from_integer(threshold, Unit::Celsius),
                ))))
                .action(ActionSpec::new(DeviceId::new("shared-device"), Verb::TurnOn)
                    .with_setting("temperature", Quantity::from_integer(99, Unit::Celsius)))
                .build(RuleId::new(1))
                .unwrap()
        };
        let tight_rule = make(tight);
        let loose_rule = make(tight - slack);
        if check_conflict(&tight_rule, &b).unwrap().is_some() {
            prop_assert!(check_conflict(&loose_rule, &b).unwrap().is_some());
        }
    }
}
