//! Resilience-layer benchmarks.
//!
//! * **R1 (fault-rate throughput)** — a 240-minute simulated window with
//!   an alternating trigger, run against a healthy air conditioner and
//!   against seeded transient fault rates of 5% and 20%. Each iteration
//!   builds a fresh world and replays the whole window, so the number
//!   includes retry scheduling, backoff bookkeeping, breaker trips, and
//!   dead-letter handling that faults drag in.
//! * **R2 (freshness-bound overhead)** — the cost a `max_age` freshness
//!   policy adds to an idle step: staleness can flip a rule without any
//!   sensor event, so each write arms a per-sensor deadline in the
//!   trigger index's freshness heap (no more full-scan fallback).

use cadel_bench::timing::{run, section};
use cadel_devices::LivingRoomHome;
use cadel_engine::{Engine, FreshnessMode, FreshnessPolicy};
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_simplex::RelOp;
use cadel_types::{
    DeviceId, PersonId, Quantity, Rational, RuleId, SensorKey, SimDuration, SimTime, Unit,
};
use cadel_upnp::{ControlPoint, FaultPlan, FaultyDevice, Registry};
use std::hint::black_box;

const WINDOW_MINUTES: u64 = 240;

fn hot_rule(id: u64) -> Rule {
    Rule::builder(PersonId::new("bench"))
        .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        ))))
        .action(ActionSpec::new(DeviceId::new("aircon-lr"), Verb::TurnOn))
        .build(RuleId::new(id))
        .unwrap()
}

/// One fresh world per window: the living-room fleet, optionally with a
/// seeded transient fault plan on the air conditioner covering the whole
/// window, and a single hot-rule the alternating trigger keeps toggling.
fn world(permille: u64) -> (Engine, LivingRoomHome) {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    if permille > 0 {
        FaultyDevice::wrap(
            &registry,
            &DeviceId::new("aircon-lr"),
            FaultPlan::random_transient(
                0xBEEF,
                SimTime::EPOCH,
                SimTime::EPOCH + SimDuration::from_minutes(WINDOW_MINUTES + 1),
                SimDuration::from_minutes(1),
                permille,
            ),
        )
        .unwrap();
    }
    let mut engine = Engine::new(ControlPoint::new(registry));
    engine.add_rule(hot_rule(1)).unwrap();
    (engine, home)
}

/// Replays the window: the temperature flips across the threshold every
/// minute, so every other step produces a rising edge and a dispatch
/// attempt (which may fail, retry, or trip the breaker under faults).
fn run_window(permille: u64) -> usize {
    let (mut engine, home) = world(permille);
    let mut firings = 0;
    for minute in 1..=WINDOW_MINUTES {
        let at = SimTime::EPOCH + SimDuration::from_minutes(minute);
        let celsius = if minute % 2 == 0 { 30 } else { 20 };
        home.thermometer
            .set_reading(Rational::from_integer(celsius), at)
            .unwrap();
        firings += engine.step(at).firings.len();
    }
    firings
}

/// R2 fleet: `n` indexed rules, each on its own sensor, no events during
/// the measured steps.
fn idle_engine(n: u64, max_age: Option<SimDuration>) -> Engine {
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    engine.context_mut().set_freshness_policy(FreshnessPolicy {
        mode: FreshnessMode::FailClosed,
        max_age,
    });
    for i in 0..n {
        let sensor = SensorKey::new(DeviceId::new(format!("sensor-{i}")), "reading");
        let rule = Rule::builder(PersonId::new("bench"))
            .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                sensor,
                RelOp::Gt,
                Quantity::from_integer(50, Unit::Celsius),
            ))))
            .action(ActionSpec::new(
                DeviceId::new(format!("device-{i}")),
                Verb::TurnOn,
            ))
            .build(RuleId::new(i))
            .unwrap();
        engine.add_rule(rule).unwrap();
    }
    engine.step(SimTime::from_millis(1));
    engine
}

fn main() {
    section("r1_fault_rate_window (240 one-minute steps, alternating trigger)");
    for (label, permille) in [("healthy/0%", 0u64), ("faulty/5%", 50), ("faulty/20%", 200)] {
        let m = run(&format!("resilience_window/{label}"), || {
            black_box(run_window(permille))
        });
        let per_step = m.median_ns() / WINDOW_MINUTES as f64;
        println!(
            "{:<58} {:>10.0} ns/step {:>12.0} steps/s",
            format!("resilience_window/{label}/per-step"),
            per_step,
            1e9 / per_step
        );
    }

    section("r2_idle_step_with_freshness_policy (deadline heap vs no bound)");
    for n in [1_000u64, 10_000] {
        for (label, max_age) in [
            ("no-max-age", None),
            ("max-age-set", Some(SimDuration::from_minutes(10))),
        ] {
            let mut engine = idle_engine(n, max_age);
            let mut seq = 2u64;
            run(&format!("freshness_idle/{label}/{n}"), || {
                seq += 1;
                black_box(engine.step(SimTime::from_millis(seq)).is_empty())
            });
        }
    }
}
