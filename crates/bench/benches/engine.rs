//! Engine-step benchmarks.
//!
//! * **A3 (ablation)** — trigger indexing: one sensor event against the
//!   index vs the index-less full scan, and the cost of an idle tick.
//! * **IR** — compiled rule programs vs the AST interpreter. Every rule
//!   watches one shared sensor (so each event makes all of them
//!   candidates) through a condition mixing event atoms (string-heavy in
//!   the interpreter) and numeric constraints; 1 in 50 rules actually
//!   flips on the alternating reading.

use cadel_bench::timing::{run, section};
use cadel_engine::Engine;
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, EventAtom, Rule, Verb};
use cadel_simplex::RelOp;
use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, SimTime, Unit, Value};
use cadel_upnp::{ControlPoint, EventBus, Registry};
use std::hint::black_box;

fn constraint(sensor: &SensorKey, op: RelOp, n: i64) -> Condition {
    Condition::Atom(Atom::Constraint(ConstraintAtom::new(
        sensor.clone(),
        op,
        Quantity::from_integer(n, Unit::Celsius),
    )))
}

/// A3 fleet: each rule watches its own sensor; the event only touches
/// `sensor-0`.
fn a3_engine(n: u64, use_index: bool) -> Engine {
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    engine.set_use_trigger_index(use_index);
    for i in 0..n {
        let sensor = SensorKey::new(DeviceId::new(format!("sensor-{i}")), "reading");
        let rule = Rule::builder(PersonId::new("bench"))
            .condition(constraint(&sensor, RelOp::Gt, 50))
            .action(ActionSpec::new(
                DeviceId::new(format!("device-{i}")),
                Verb::TurnOn,
            ))
            .build(RuleId::new(i))
            .unwrap();
        engine.add_rule(rule).unwrap();
    }
    engine.step(SimTime::from_millis(1)); // settle the initial pass
    engine
}

/// IR fleet: every rule watches the shared sensor, so a reading change
/// re-evaluates all `n` conditions. Two always-true event atoms and an
/// always-true bound pad each condition with the work compilation
/// removes; the final threshold is crossable only for 1 rule in 50.
fn ir_engine(n: u64, compiled: bool) -> Engine {
    let shared = SensorKey::new(DeviceId::new("sensor-shared"), "reading");
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    engine.set_use_compiled(compiled);
    engine
        .context_mut()
        .set_persistent_event("bench", "always-on");
    engine
        .context_mut()
        .set_persistent_event("bench", "still-on");
    for i in 0..n {
        let threshold = if i % 50 == 0 { 50 } else { 10_000 };
        let condition = Condition::Atom(Atom::Event(EventAtom::new("bench", "always-on")))
            .and(constraint(&shared, RelOp::Gt, -1_000))
            .and(Condition::Atom(Atom::Event(EventAtom::new(
                "bench", "still-on",
            ))))
            .and(constraint(&shared, RelOp::Gt, threshold));
        let rule = Rule::builder(PersonId::new("bench"))
            .condition(condition)
            .action(ActionSpec::new(
                DeviceId::new(format!("device-{i}")),
                Verb::TurnOn,
            ))
            .build(RuleId::new(i))
            .unwrap();
        engine.add_rule(rule).unwrap();
    }
    engine.step(SimTime::from_millis(1));
    engine
}

fn publish_reading(bus: &EventBus, device: &str, seq: u64, value: i64) {
    bus.publish_change(
        DeviceId::new(device),
        "reading".to_owned(),
        Value::Number(Quantity::from_integer(value, Unit::Celsius)),
        SimTime::from_millis(seq),
    );
}

fn main() {
    section("a3_step_after_one_sensor_event (indexed vs full scan)");
    for n in [100u64, 1_000, 10_000] {
        for (label, use_index) in [("indexed", true), ("full-scan", false)] {
            let mut engine = a3_engine(n, use_index);
            let bus = engine.control().registry().event_bus().clone();
            let mut seq = 2u64;
            run(&format!("a3_step/{label}/{n}"), || {
                // Alternate below/above threshold so the watched rule
                // keeps toggling (worst case: the rule stays live).
                seq += 1;
                let value = if seq.is_multiple_of(2) { 30 } else { 70 };
                publish_reading(&bus, "sensor-0", seq, value);
                black_box(engine.step(SimTime::from_millis(seq)).firings.len())
            });
        }
    }

    section("a3_idle_step (no events)");
    for n in [1_000u64, 10_000] {
        for (label, use_index) in [("indexed", true), ("full-scan", false)] {
            let mut engine = a3_engine(n, use_index);
            let mut seq = 2u64;
            run(&format!("a3_idle/{label}/{n}"), || {
                seq += 1;
                black_box(engine.step(SimTime::from_millis(seq)).is_empty())
            });
        }
    }

    section("ir_step_all_candidates (compiled vs interpreted)");
    for n in [10u64, 100, 1_000] {
        let mut ratio = [0.0f64; 2];
        for (slot, (label, compiled)) in [("interpreted", false), ("compiled", true)]
            .iter()
            .enumerate()
        {
            let mut engine = ir_engine(n, *compiled);
            let bus = engine.control().registry().event_bus().clone();
            let mut seq = 2u64;
            let m = run(&format!("ir_step/{label}/{n}"), || {
                seq += 1;
                let value = if seq.is_multiple_of(2) { 30 } else { 70 };
                publish_reading(&bus, "sensor-shared", seq, value);
                black_box(engine.step(SimTime::from_millis(seq)).firings.len())
            });
            ratio[slot] = m.median_ns();
        }
        println!(
            "{:<58} {:>13.2}x",
            format!("ir_step/speedup(interpreted/compiled)/{n}"),
            ratio[0] / ratio[1]
        );
    }
}
