//! **A3 (ablation)** — trigger indexing in the rule execution module.
//!
//! The engine maps each sensor key / place / event channel to the rules
//! that mention it, so one sensor event re-evaluates a handful of rules
//! instead of the whole database. This ablation sweeps the rule count and
//! compares a step with the index against the index-less full scan.

use cadel_engine::Engine;
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_simplex::RelOp;
use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, SimTime, Unit, Value};
use cadel_upnp::{ControlPoint, EventBus, Registry};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Builds an engine with `n` rules, each watching its own sensor, plus one
/// rule watching the "hot" sensor that the benchmark's event touches.
fn engine_with_rules(n: u64, use_index: bool) -> Engine {
    let registry = Registry::new();
    let mut engine = Engine::new(ControlPoint::new(registry));
    engine.set_use_trigger_index(use_index);
    for i in 0..n {
        let sensor = SensorKey::new(DeviceId::new(format!("sensor-{i}")), "reading");
        let rule = Rule::builder(PersonId::new("bench"))
            .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                sensor,
                RelOp::Gt,
                Quantity::from_integer(50, Unit::Celsius),
            ))))
            .action(ActionSpec::new(
                DeviceId::new(format!("device-{i}")),
                Verb::TurnOn,
            ))
            .build(RuleId::new(i))
            .unwrap();
        engine.add_rule(rule).unwrap();
    }
    // Settle the initial evaluation pass so steady-state steps are
    // measured.
    engine.step(SimTime::from_millis(1));
    engine
}

fn publish_reading(bus: &EventBus, seq: u64, value: i64) {
    bus.publish_change(
        DeviceId::new("sensor-0"),
        "reading".to_owned(),
        Value::Number(Quantity::from_integer(value, Unit::Celsius)),
        SimTime::from_millis(seq),
    );
}

fn bench_step_after_one_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_step_after_one_sensor_event");
    group.sample_size(20);
    for n in [100u64, 1_000, 10_000] {
        for (label, use_index) in [("indexed", true), ("full-scan", false)] {
            let mut engine = engine_with_rules(n, use_index);
            let bus = engine.control().registry().event_bus().clone();
            let mut seq = 2u64;
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &n,
                |b, _| {
                    b.iter(|| {
                        // Alternate below/above threshold so the watched
                        // rule keeps toggling (worst case for the index:
                        // the rule stays live).
                        seq += 1;
                        let value = if seq % 2 == 0 { 30 } else { 70 };
                        publish_reading(&bus, seq, value);
                        let report = engine.step(SimTime::from_millis(seq));
                        black_box(report.firings.len())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_idle_step(c: &mut Criterion) {
    // No events at all: the index makes an idle tick nearly free.
    let mut group = c.benchmark_group("a3_idle_step");
    group.sample_size(20);
    for n in [1_000u64, 10_000] {
        for (label, use_index) in [("indexed", true), ("full-scan", false)] {
            let mut engine = engine_with_rules(n, use_index);
            let mut seq = 2u64;
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    seq += 1;
                    let report = engine.step(SimTime::from_millis(seq));
                    black_box(report.is_empty())
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_step_after_one_event, bench_idle_step
}
criterion_main!(benches);
