//! Durable-store benchmarks.
//!
//! * **S1 (append throughput)** — appending a representative
//!   `rule_registered` record (framing + CRC + compact JSON encoding) to
//!   the write-ahead log, buffered and with a per-record fdatasync. The
//!   buffered number is what the server pays inline on every durable
//!   mutation; the synced number is the worst-case durability knob
//!   ([`cadel_store::Store::set_sync_on_append`]).
//! * **S2 (recovery replay)** — reopening a 1,000-rule log: once as a raw
//!   [`cadel_store::Store::open`] scan (framing, checksum, JSON parse)
//!   and once as a full [`HomeServer::open_at`] recovery over a fresh
//!   world (record decode, conflict-free insert, IR recompile, trigger
//!   index rebuild).

use cadel_bench::timing::{run, section};
use cadel_devices::LivingRoomHome;
use cadel_rule::codec::rule_to_json;
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_server::HomeServer;
use cadel_simplex::RelOp;
use cadel_store::Store;
use cadel_types::json::Json;
use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, Topology, Unit};
use cadel_upnp::{ControlPoint, Registry};
use std::hint::black_box;
use std::path::{Path, PathBuf};

const REPLAY_RULES: u64 = 1_000;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cadel-bench-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_rule(i: u64) -> Rule {
    let devices = [
        "aircon-lr",
        "tv-lr",
        "lamp-lr",
        "stereo",
        "fluorescent",
        "vcr-lr",
    ];
    Rule::builder(PersonId::new("bench"))
        .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(15 + (i % 20) as i64, Unit::Celsius),
        ))))
        .action(ActionSpec::new(
            DeviceId::new(devices[(i % devices.len() as u64) as usize]),
            Verb::TurnOn,
        ))
        .build(RuleId::new(i + 1))
        .unwrap()
}

/// A record shaped like the server's `rule_registered` WAL entry.
fn record(i: u64) -> Json {
    Json::obj(vec![
        ("type", Json::str("rule_registered")),
        ("rule", rule_to_json(&bench_rule(i))),
    ])
}

fn fresh_world() -> (ControlPoint, Topology) {
    let registry = Registry::new();
    LivingRoomHome::install(&registry);
    let mut t = Topology::new("home");
    t.add_floor("first floor").unwrap();
    t.add_room("living room", "first floor").unwrap();
    t.add_room("hall", "first floor").unwrap();
    (ControlPoint::new(registry), t)
}

/// Writes the S2 workload once: a log holding one user and 1,000 rule
/// registrations, exactly what a server that never compacted would leave
/// behind.
fn build_replay_log(dir: &Path) {
    let (control, topology) = fresh_world();
    let (mut server, _) = HomeServer::open_at(control, topology, dir).unwrap();
    server.add_user("Bench").unwrap();
    for i in 0..REPLAY_RULES {
        server.register_rule(bench_rule(i)).unwrap();
    }
    server.sync().unwrap();
}

fn main() {
    section("s1_wal_append (rule_registered record: frame + crc32 + compact json)");
    {
        let dir = temp_dir("append");
        let (mut store, _) = Store::open(&dir).unwrap();
        let doc = record(0);
        let bytes = doc.to_compact().len() + 8;
        let m = run("wal_append/buffered", || {
            store.append(black_box(&doc)).unwrap();
        });
        let per_append = m.median_ns();
        println!(
            "{:<58} {:>10} B/record {:>12.1} MB/s",
            "wal_append/buffered/throughput",
            bytes,
            bytes as f64 / per_append * 1e9 / 1e6
        );

        let dir = temp_dir("append-sync");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.set_sync_on_append(true);
        run("wal_append/fdatasync-each", || {
            store.append(black_box(&doc)).unwrap();
        });
    }

    section("s2_recovery_replay (1,000-rule log)");
    {
        let dir = temp_dir("replay");
        build_replay_log(&dir);

        run("recovery/store_scan_only", || {
            let (_store, recovered) = Store::open(black_box(&dir)).unwrap();
            black_box(recovered.records.len())
        });

        let m = run("recovery/full_server_open_at", || {
            let (control, topology) = fresh_world();
            let (server, report) = HomeServer::open_at(control, topology, black_box(&dir)).unwrap();
            assert_eq!(report.records_replayed, REPLAY_RULES + 1);
            black_box(server.engine().rules().len())
        });
        println!(
            "{:<58} {:>10.2} ms/recovery {:>9.1} rules/ms",
            "recovery/full_server_open_at/total",
            m.median_ns() / 1e6,
            REPLAY_RULES as f64 / (m.median_ns() / 1e6)
        );
    }
}
