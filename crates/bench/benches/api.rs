//! L-series: the hardened network frontend over a live TCP socket.
//!
//! * **L1** — wire admission throughput and latency: a keep-alive
//!   client posts sensor-reading batches into a unit-tenant fleet
//!   through `cadel-api` and drives fleet waves over the wire. Reports
//!   per-batch admission latency, the admission→firing round trip
//!   (post a triggering reading, then a wave, both over TCP), and a
//!   sustained readings/sec figure from a timed soak.
//! * **L2** — overload shedding under chaos: a saturated fleet (tiny
//!   inboxes, low watermark) sheds with `503` + `Retry-After` while a
//!   background chaos thread throws torn frames, garbage and
//!   slow-loris drips at the same listener. Reports the shed-path and
//!   health-probe latency under bombardment plus the end-of-run
//!   frontend counters for `EXPERIMENTS.md`.
//!
//! `CADEL_BENCH_SMOKE=1` shrinks scale for CI.

use cadel::api::{ApiClient, ApiConfig, ApiServer};
use cadel::fleet::{Fleet, FleetConfig};
use cadel::sim::netchaos::{inject, NetChaos};
use cadel::sim::{tenant_name, unit_tenant_builder};
use cadel::types::json::Json;
use cadel::types::{SimDuration, SimTime};
use cadel_bench::timing::{run, section};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_minutes(m)
}

fn bench_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cadel-bench-api-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bind_server(tag: &str, tenants: usize, fleet_config: FleetConfig) -> ApiServer {
    let mut fleet = Fleet::new(bench_root(tag), fleet_config);
    let builder = unit_tenant_builder(None);
    for i in 0..tenants {
        fleet
            .add_tenant_arc(tenant_name(i), builder.clone())
            .expect("fresh fleet");
    }
    ApiServer::bind(
        "127.0.0.1:0",
        fleet,
        ApiConfig {
            // One local client; per-IP limiting would throttle the
            // bench itself. A tight idle budget makes slow-loris and
            // garbage connections churn in ~150ms instead of squatting
            // on their worker for seconds.
            rate_limit: None,
            read_timeout: Duration::from_millis(50),
            idle_timeout: Duration::from_millis(150),
            ..ApiConfig::default()
        },
    )
    .expect("bind")
}

/// A batch of `size` readings with distinct variables, so every entry
/// enqueues on first sight; repeated batches coalesce onto the same
/// slots, which keeps inboxes bounded across long measurement loops.
fn batch_body(size: usize, base: i64, at: SimTime) -> Json {
    Json::obj(vec![(
        "readings",
        Json::Arr(
            (0..size)
                .map(|i| {
                    Json::obj(vec![
                        ("device", Json::str("thermo-0")),
                        ("variable", Json::str(format!("aux-{i}"))),
                        ("value", Json::Int(base + i as i64)),
                        ("unit", Json::str("celsius")),
                        ("at_ms", Json::Int(at.as_millis() as i64)),
                    ])
                })
                .collect(),
        ),
    )])
}

fn temperature_body(value: i64, at: SimTime) -> Json {
    Json::obj(vec![(
        "readings",
        Json::Arr(vec![Json::obj(vec![
            ("device", Json::str("thermo-0")),
            ("variable", Json::str("temperature")),
            ("value", Json::Int(value)),
            ("unit", Json::str("celsius")),
            ("at_ms", Json::Int(at.as_millis() as i64)),
        ])]),
    )])
}

fn step_body(at: SimTime) -> Json {
    Json::obj(vec![("at_ms", Json::Int(at.as_millis() as i64))])
}

fn main() {
    cadel::obs::enable_metrics_only();
    let smoke = std::env::var("CADEL_BENCH_SMOKE").is_ok();
    let tenants: usize = if smoke { 4 } else { 16 };

    // ---------------------------------------------------------------- L1
    section("l1_wire_admission (live TCP, keep-alive client)");
    {
        let server = bind_server("l1", tenants, FleetConfig::default());
        let mut client = ApiClient::connect(server.addr()).expect("connect");
        let mut tick = 0u64;

        // Per-batch admission latency (10 readings per POST), with a
        // wire-driven wave every 64 posts so inboxes never pile up.
        let batch = 10usize;
        let mut posts = 0u64;
        let m = run(&format!("l1_post/batch-{batch}"), || {
            posts += 1;
            if posts.is_multiple_of(64) {
                tick += 1;
                let stepped = client.post("/step", &step_body(mins(tick))).expect("step");
                assert_eq!(stepped.status, 200);
            }
            let tenant = tenant_name((posts % tenants as u64) as usize);
            let response = client
                .post(
                    &format!("/tenants/{tenant}/readings"),
                    &batch_body(batch, 20, mins(tick + 1)),
                )
                .expect("post");
            assert_eq!(response.status, 202, "{}", response.text());
            black_box(response.status)
        });
        println!(
            "  l1 admission rate: {:.0} readings/sec (batch of {batch} per POST)",
            batch as f64 / (m.median_ns() / 1e9)
        );

        // Admission→firing round trip: one triggering reading, one wave,
        // both over the wire; alternating trigger/release so the cool
        // rule genuinely re-fires.
        let mut hot = true;
        let m = run("l1_admit_to_fire (POST reading + POST /step)", || {
            tick += 1;
            let value = if hot { 30 } else { 20 };
            hot = !hot;
            let posted = client
                .post(
                    &format!("/tenants/{}/readings", tenant_name(0)),
                    &temperature_body(value, mins(tick)),
                )
                .expect("post");
            assert_eq!(posted.status, 202);
            let stepped = client.post("/step", &step_body(mins(tick))).expect("step");
            assert_eq!(stepped.status, 200);
            black_box(stepped.status)
        });
        println!(
            "  l1 admission→firing round trip: {:.1} µs median",
            m.median_ns() / 1e3
        );

        // Sustained throughput soak: post as fast as the wire allows for
        // a fixed window, waving every 32 posts.
        let window = if smoke {
            Duration::from_millis(200)
        } else {
            Duration::from_secs(2)
        };
        let started = Instant::now();
        let mut readings_posted = 0u64;
        let mut posts = 0u64;
        while started.elapsed() < window {
            posts += 1;
            if posts.is_multiple_of(32) {
                tick += 1;
                let _ = client.post("/step", &step_body(mins(tick)));
            }
            let tenant = tenant_name((posts % tenants as u64) as usize);
            let response = client
                .post(
                    &format!("/tenants/{tenant}/readings"),
                    &batch_body(16, 20, mins(tick + 1)),
                )
                .expect("post");
            assert_eq!(response.status, 202);
            readings_posted += 16;
        }
        let rate = readings_posted as f64 / started.elapsed().as_secs_f64();
        println!(
            "  l1 sustained: {readings_posted} readings in {:.2}s = {rate:.0} readings/sec",
            started.elapsed().as_secs_f64()
        );

        drop(client);
        let outcome = server.shutdown(Duration::from_secs(10), mins(tick + 2));
        assert!(outcome.is_clean(), "{outcome:?}");
    }

    // ---------------------------------------------------------------- L2
    section("l2_overload_shedding (chaos bombardment in the background)");
    {
        let server = bind_server(
            "l2",
            tenants,
            FleetConfig {
                inbox_capacity: 8,
                backpressure_watermark: 0.5,
                ..FleetConfig::default()
            },
        );
        let addr = server.addr();
        let mut client = ApiClient::connect(addr).expect("connect");

        // Saturate the fleet past its watermark.
        for i in 0..tenants {
            let response = client
                .post(
                    &format!("/tenants/{}/readings", tenant_name(i)),
                    &batch_body(8, 20, mins(1)),
                )
                .expect("fill");
            assert!(
                response.status == 202 || response.status == 503,
                "{}",
                response.text()
            );
        }

        // Background chaos: a small pool of hostile clients against the
        // same listener for the whole measurement, aimed at a ghost
        // tenant so even a completed parse cannot mutate state. Several
        // threads because each fault occupies its victim worker for up
        // to the idle budget.
        let stop = Arc::new(AtomicBool::new(false));
        let chaos_pool: Vec<_> = (0..4u64)
            .map(|worker| {
                let chaos_stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut netchaos = NetChaos::new(0x4c32_4c32 + worker);
                    let request = b"POST /tenants/chaos-ghost/readings HTTP/1.1\r\n\
                        Content-Length: 17\r\n\r\n{\"readings\":[{}]}"
                        .to_vec();
                    let mut injected = 0usize;
                    while !chaos_stop.load(Ordering::Relaxed) {
                        let fault = netchaos.pick(request.len());
                        if inject(&mut netchaos, addr, &request, &fault).is_err() {
                            break;
                        }
                        injected += 1;
                    }
                    injected
                })
            })
            .collect();

        // Shed-path latency: refused with Retry-After, measured while
        // the chaos thread hammers the listener.
        let m = run("l2_shed_503 (overloaded POST, chaos in background)", || {
            let response = client
                .post(
                    &format!("/tenants/{}/readings", tenant_name(0)),
                    &batch_body(4, 20, mins(2)),
                )
                .expect("shed post");
            assert_eq!(response.status, 503, "{}", response.text());
            assert!(
                response.retry_after().is_some(),
                "shed must advertise Retry-After"
            );
            black_box(response.status)
        });
        println!("  l2 shed path: {:.1} µs median", m.median_ns() / 1e3);

        // Health probes stay fast for healthy clients during the
        // bombardment: hostile connections do not starve the service.
        let m = run("l2_healthz_under_chaos", || {
            let response = client.get("/healthz").expect("healthz");
            assert_eq!(response.status, 200);
            black_box(response.status)
        });
        println!(
            "  l2 health probe under chaos: {:.1} µs median",
            m.median_ns() / 1e3
        );

        stop.store(true, Ordering::Relaxed);
        let injected: usize = chaos_pool
            .into_iter()
            .map(|t| t.join().expect("chaos thread"))
            .sum();
        println!("  l2 hostile connections injected: {injected}");

        // One wave drains the backlog; admission recovers immediately.
        server.step_fleet(mins(3));
        let recovered = client
            .post(
                &format!("/tenants/{}/readings", tenant_name(0)),
                &batch_body(4, 20, mins(4)),
            )
            .expect("recovered post");
        assert_eq!(recovered.status, 202, "{}", recovered.text());

        let metrics = cadel::obs::metrics_snapshot();
        println!(
            "  l2 counters: requests={} shed={} parse_errors={} timeouts={} worker_panics={}",
            metrics.counter("api_requests_total").unwrap_or(0),
            metrics.counter("api_shed_total").unwrap_or(0),
            metrics.counter("api_parse_errors_total").unwrap_or(0),
            metrics.counter("api_timeouts_total").unwrap_or(0),
            metrics.counter("api_worker_panics_total").unwrap_or(0),
        );

        drop(client);
        let outcome = server.shutdown(Duration::from_secs(10), mins(5));
        assert!(outcome.is_clean(), "{outcome:?}");
    }
}
