//! **E2 — "Time for Detecting Conflicting Rules"** (paper §5).
//!
//! The paper's workload: 10,000 registered rules, 100 of them on the same
//! device as the new rule, each condition a conjunction of two
//! inequalities, so registration evaluates 100 four-inequality systems.
//! Reported numbers: extraction ≤ 10 ms; the 100 satisfiability checks
//! ≈ 0.2 ms total.
//!
//! Series regenerated here:
//! * `e2_extract_same_device` — the database extraction step, over a
//!   database-size sweep (the paper's 10,000 point included);
//! * `e2_solve_100x4` — the paper's "logical product of four inequalities
//!    … 100 times" micro-measurement;
//! * `e2_full_check` — the complete `find_conflicts` registration check,
//!   sweeping the same-device count.

use cadel_bench::{e2_database, e2_probe, two_inequality_condition, SHARED_DEVICE};
use cadel_conflict::find_conflicts;
use cadel_rule::VarPool;
use cadel_simplex::is_satisfiable;
use cadel_types::DeviceId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_extract_same_device");
    for total in [1_000u64, 10_000, 50_000] {
        let db = e2_database(total, 100);
        let device = DeviceId::new(SHARED_DEVICE);
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |b, _| {
            b.iter(|| {
                let rules = db.rules_for_device(black_box(&device));
                assert_eq!(rules.len(), 100);
                rules.len()
            })
        });
    }
    group.finish();
}

fn bench_solver_100x4(c: &mut Criterion) {
    // Prebuild the 100 four-inequality systems exactly as the conflict
    // checker would: probe condition ∧ stored condition, shared pool.
    let db = e2_database(10_000, 100);
    let probe = e2_probe();
    let probe_conjunct = &probe.dnf().conjuncts()[0];
    let systems: Vec<Vec<cadel_simplex::Constraint>> = db
        .rules_for_device(&DeviceId::new(SHARED_DEVICE))
        .iter()
        .map(|rule| {
            let mut pool = VarPool::new();
            let mut system = pool.conjunct_constraints(probe_conjunct).unwrap();
            system.extend(
                pool.conjunct_constraints(&rule.dnf().conjuncts()[0])
                    .unwrap(),
            );
            assert_eq!(system.len(), 4);
            system
        })
        .collect();

    c.bench_function("e2_solve_100x4_inequalities", |b| {
        b.iter(|| {
            let mut feasible = 0u32;
            for system in &systems {
                if is_satisfiable(black_box(system)).unwrap() {
                    feasible += 1;
                }
            }
            assert_eq!(feasible, 100);
            feasible
        })
    });
}

fn bench_full_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_full_conflict_check");
    group.sample_size(20);
    // Sweep the same-device count at the paper's database size.
    for same_device in [10u64, 100, 500] {
        let db = e2_database(10_000, same_device);
        let probe = e2_probe();
        group.bench_with_input(
            BenchmarkId::from_parameter(same_device),
            &same_device,
            |b, &m| {
                b.iter(|| {
                    let conflicts = find_conflicts(black_box(&db), black_box(&probe)).unwrap();
                    assert_eq!(conflicts.len() as u64, m);
                    conflicts.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_registration_pipeline(c: &mut Criterion) {
    // Consistency check + conflict check, the paper's whole
    // registration-time cost, at the E2 point.
    let db = e2_database(10_000, 100);
    c.bench_function("e2_registration_checks_total", |b| {
        b.iter(|| {
            let probe = e2_probe();
            let report = cadel_conflict::check_consistency(black_box(&probe)).unwrap();
            assert!(report.is_satisfiable());
            let conflicts = find_conflicts(black_box(&db), &probe).unwrap();
            assert_eq!(conflicts.len(), 100);
            conflicts.len()
        })
    });
    // Reference point: a self-consistency check alone.
    c.bench_function("e2_consistency_check_single_rule", |b| {
        let condition = two_inequality_condition(26, 65);
        let rule = cadel_rule::Rule::builder(cadel_types::PersonId::new("x"))
            .condition(condition)
            .action(cadel_rule::ActionSpec::new(
                DeviceId::new("dev"),
                cadel_rule::Verb::TurnOn,
            ))
            .build(cadel_types::RuleId::new(1))
            .unwrap();
        b.iter(|| cadel_conflict::check_consistency(black_box(&rule)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_extraction, bench_solver_100x4, bench_full_check, bench_registration_pipeline
}
criterion_main!(benches);
