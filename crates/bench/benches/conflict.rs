//! **E2 — "Time for Detecting Conflicting Rules"** (paper §5), plus the
//! compiled-checker series.
//!
//! The paper's workload: 10,000 registered rules, 100 of them on the same
//! device as the new rule, each condition a conjunction of two
//! inequalities, so registration evaluates 100 four-inequality systems.
//! Reported numbers: extraction ≤ 10 ms; the 100 satisfiability checks
//! ≈ 0.2 ms total.
//!
//! Series:
//! * `e2_extract` — the database extraction step over a size sweep;
//! * `e2_solve_100x4` — the paper's "logical product of four inequalities
//!   … 100 times" micro-measurement;
//! * `e2_full_check` — `find_conflicts` (AST path, recompiles every
//!   system per call) over the same-device sweep;
//! * `ir_checker` — [`ConflictChecker`] on the same workloads: *cold*
//!   (fresh cache, reusing the database's precompiled systems) and *warm*
//!   (memoized verdict replay keyed by rule revisions).

use cadel_bench::timing::{run, section};
use cadel_bench::{e2_database, e2_probe, two_inequality_condition, SHARED_DEVICE};
use cadel_conflict::{find_conflicts, ConflictChecker};
use cadel_rule::VarPool;
use cadel_simplex::is_satisfiable;
use cadel_types::DeviceId;
use std::hint::black_box;

fn main() {
    section("e2_extract_same_device (database index)");
    for total in [1_000u64, 10_000, 50_000] {
        let db = e2_database(total, 100);
        let device = DeviceId::new(SHARED_DEVICE);
        run(&format!("e2_extract/{total}"), || {
            let rules = db.rules_for_device(black_box(&device));
            assert_eq!(rules.len(), 100);
            rules.len()
        });
    }

    section("e2_solve_100x4_inequalities (paper's micro-measurement)");
    {
        // Prebuild the 100 four-inequality systems exactly as the AST
        // conflict checker would: probe ∧ stored, one shared pool.
        let db = e2_database(10_000, 100);
        let probe = e2_probe();
        let probe_conjunct = &probe.dnf().conjuncts()[0];
        let systems: Vec<Vec<cadel_simplex::Constraint>> = db
            .rules_for_device(&DeviceId::new(SHARED_DEVICE))
            .iter()
            .map(|rule| {
                let mut pool = VarPool::new();
                let mut system = pool.conjunct_constraints(probe_conjunct).unwrap();
                system.extend(
                    pool.conjunct_constraints(&rule.dnf().conjuncts()[0])
                        .unwrap(),
                );
                assert_eq!(system.len(), 4);
                system
            })
            .collect();
        run("e2_solve_100x4", || {
            let mut feasible = 0u32;
            for system in &systems {
                if is_satisfiable(black_box(system)).unwrap() {
                    feasible += 1;
                }
            }
            assert_eq!(feasible, 100);
            feasible
        });
    }

    section("e2_full_conflict_check (AST vs compiled checker, 10k rules)");
    for same_device in [10u64, 100, 1_000] {
        let db = e2_database(10_000, same_device);
        let probe = e2_probe();
        run(&format!("e2_full_check/ast/{same_device}"), || {
            let conflicts = find_conflicts(black_box(&db), black_box(&probe)).unwrap();
            assert_eq!(conflicts.len() as u64, same_device);
            conflicts.len()
        });
        // Cold: a fresh cache every call — measures precompiled-system
        // reuse alone (the probe is unstored, so nothing memoizes).
        run(&format!("e2_full_check/ir-cold/{same_device}"), || {
            let mut checker = ConflictChecker::new();
            let conflicts = checker
                .find_conflicts(black_box(&db), black_box(&probe))
                .unwrap();
            assert_eq!(conflicts.len() as u64, same_device);
            conflicts.len()
        });
        // Warm: the probe is stored, so verdicts replay from the
        // revision-keyed cache after the first call.
        let mut db = db;
        db.insert(probe.clone()).unwrap();
        let mut checker = ConflictChecker::new();
        run(&format!("e2_full_check/ir-warm/{same_device}"), || {
            let conflicts = checker
                .find_conflicts(black_box(&db), black_box(&probe))
                .unwrap();
            assert_eq!(conflicts.len() as u64, same_device);
            conflicts.len()
        });
    }

    section("e2_registration_checks_total (consistency + conflicts)");
    {
        let db = e2_database(10_000, 100);
        run("e2_registration/ast", || {
            let probe = e2_probe();
            let report = cadel_conflict::check_consistency(black_box(&probe)).unwrap();
            assert!(report.is_satisfiable());
            let conflicts = find_conflicts(black_box(&db), &probe).unwrap();
            assert_eq!(conflicts.len(), 100);
            conflicts.len()
        });
        let condition = two_inequality_condition(26, 65);
        let rule = cadel_rule::Rule::builder(cadel_types::PersonId::new("x"))
            .condition(condition)
            .action(cadel_rule::ActionSpec::new(
                DeviceId::new("dev"),
                cadel_rule::Verb::TurnOn,
            ))
            .build(cadel_types::RuleId::new(1))
            .unwrap();
        run("e2_consistency_single_rule", || {
            cadel_conflict::check_consistency(black_box(&rule)).unwrap()
        });
    }
}
