//! P-series: the sharded engine step.
//!
//! * **P1** — parallel rule evaluation: one step over a fleet where every
//!   rule is a candidate (all watch one shared sensor), swept across
//!   `eval_threads`. Conditions carry several constraint atoms plus a
//!   `held for` dwell so there is real per-rule work to shard.
//! * **P2** — ingest coalescing: a step whose batch carries many
//!   redundant readings of the same sensors, with last-write-wins
//!   coalescing on vs off.
//!
//! `CADEL_BENCH_SMOKE=1` shrinks both to CI-smoke size.

use cadel_bench::timing::{run, section};
use cadel_engine::Engine;
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_simplex::RelOp;
use cadel_types::{
    DeviceId, PersonId, Quantity, RuleId, SensorKey, SimDuration, SimTime, Unit, Value,
};
use cadel_upnp::{ControlPoint, EventBus, Registry};
use std::hint::black_box;

fn constraint(sensor: &SensorKey, op: RelOp, n: i64) -> Condition {
    Condition::Atom(Atom::Constraint(ConstraintAtom::new(
        sensor.clone(),
        op,
        Quantity::from_integer(n, Unit::Celsius),
    )))
}

/// P1 fleet: every rule watches the shared sensor (so one reading makes
/// all of them candidates) through a condition of four bounds and a
/// dwell clause; 1 rule in 50 can actually flip on the alternating
/// reading.
fn p1_engine(n: u64, threads: usize) -> Engine {
    let shared = SensorKey::new(DeviceId::new("sensor-shared"), "reading");
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    engine.set_eval_threads(threads);
    for i in 0..n {
        let threshold = if i % 50 == 0 { 50 } else { 10_000 };
        let condition = constraint(&shared, RelOp::Gt, -1_000)
            .and(constraint(&shared, RelOp::Lt, 1_000_000))
            .and(Condition::Atom(Atom::held_for(
                Atom::Constraint(ConstraintAtom::new(
                    shared.clone(),
                    RelOp::Gt,
                    Quantity::from_integer(-2_000, Unit::Celsius),
                )),
                SimDuration::from_millis(1),
            )))
            .and(constraint(&shared, RelOp::Gt, threshold));
        let rule = Rule::builder(PersonId::new("bench"))
            .condition(condition)
            .action(ActionSpec::new(
                DeviceId::new(format!("device-{i}")),
                Verb::TurnOn,
            ))
            .build(RuleId::new(i))
            .unwrap();
        engine.add_rule(rule).unwrap();
    }
    engine.step(SimTime::from_millis(1));
    engine
}

/// P2 fleet: `rules` rules spread over `sensors` sensors.
fn p2_engine(rules: u64, sensors: u64, coalesce: bool) -> Engine {
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    engine.set_coalesce_events(coalesce);
    for i in 0..rules {
        let sensor = SensorKey::new(DeviceId::new(format!("sensor-{}", i % sensors)), "reading");
        let rule = Rule::builder(PersonId::new("bench"))
            .condition(constraint(&sensor, RelOp::Gt, 50))
            .action(ActionSpec::new(
                DeviceId::new(format!("device-{i}")),
                Verb::TurnOn,
            ))
            .build(RuleId::new(i))
            .unwrap();
        engine.add_rule(rule).unwrap();
    }
    engine.step(SimTime::from_millis(1));
    engine
}

fn publish_reading(bus: &EventBus, device: &str, seq: u64, value: i64) {
    bus.publish_change(
        DeviceId::new(device),
        "reading".to_owned(),
        Value::Number(Quantity::from_integer(value, Unit::Celsius)),
        SimTime::from_millis(seq),
    );
}

fn main() {
    let smoke = std::env::var("CADEL_BENCH_SMOKE").is_ok();
    let p1_rules: u64 = if smoke { 1_000 } else { 10_000 };
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    section("p1_parallel_step (all rules candidates, eval_threads sweep)");
    for &threads in thread_counts {
        let mut engine = p1_engine(p1_rules, threads);
        let bus = engine.control().registry().event_bus().clone();
        let mut seq = 2u64;
        run(&format!("p1_step/threads-{threads}/{p1_rules}"), || {
            seq += 1;
            let value = if seq.is_multiple_of(2) { 30 } else { 70 };
            publish_reading(&bus, "sensor-shared", seq, value);
            black_box(engine.step(SimTime::from_millis(seq)).firings.len())
        });
    }

    let (p2_rules, p2_sensors, repeats) = if smoke { (200, 8, 8) } else { (1_000, 8, 16) };
    section("p2_coalesced_ingest (redundant same-sensor readings per batch)");
    for (label, coalesce) in [("coalesced", true), ("verbatim", false)] {
        let mut engine = p2_engine(p2_rules, p2_sensors, coalesce);
        let bus = engine.control().registry().event_bus().clone();
        let mut seq = 2u64;
        run(
            &format!("p2_step/{label}/{p2_sensors}x{repeats}-changes"),
            || {
                seq += 1;
                // Each sensor publishes `repeats` times; only the last
                // value per sensor is observable after the batch.
                for s in 0..p2_sensors {
                    for r in 0..repeats {
                        let value = if (seq + r).is_multiple_of(2) { 30 } else { 70 };
                        publish_reading(&bus, &format!("sensor-{s}"), seq, value);
                    }
                }
                black_box(engine.step(SimTime::from_millis(seq)).firings.len())
            },
        );
    }
}
