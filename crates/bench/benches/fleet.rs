//! FL-series: the supervised multi-tenant fleet runtime.
//!
//! * **FL1** — wave throughput: one `step_ready` wave over a fleet of
//!   unit tenants (each a full durable `HomeServer` with three rules and
//!   its own WAL segment), swept across worker counts. Each wave
//!   delivers every tenant's sensor batch, steps every tenant, and
//!   group-syncs the stepped WALs.
//! * **FL2** — supervision overhead under chaos: the same wave with a
//!   slice of tenants whose rule-evaluation hook panics every time it is
//!   re-armed, so each iteration pays catch_unwind quarantine plus a
//!   WAL restart for the faulted slice. The healthy-slice cost versus
//!   FL1 is the isolation overhead; the end-of-run health counters and
//!   noisy-neighbour rollup are printed for `EXPERIMENTS.md`.
//!
//! `CADEL_BENCH_SMOKE=1` shrinks the fleets to CI-smoke size.

use cadel::fleet::{Fleet, FleetConfig};
use cadel::sim::{tenant_name, unit_tenant_builder, FleetTraffic};
use cadel::types::{SimDuration, SimTime};
use cadel_bench::timing::{run, section};
use std::hint::black_box;
use std::path::PathBuf;

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_minutes(m)
}

fn bench_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cadel-bench-fleet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_fleet(root: &PathBuf, tenants: usize, workers: usize) -> Fleet {
    let mut fleet = Fleet::new(
        root,
        FleetConfig {
            workers,
            checkpoint_every: 16,
            ..FleetConfig::default()
        },
    );
    let builder = unit_tenant_builder(None);
    for i in 0..tenants {
        fleet
            .add_tenant_arc(tenant_name(i), builder.clone())
            .expect("fresh fleet");
    }
    fleet
}

/// One full wave: deliver every tenant's batch, step, group-sync.
fn wave(fleet: &mut Fleet, traffic: &mut FleetTraffic, tick: u64) -> usize {
    let at = mins(tick);
    for (i, batch) in traffic.tick(at).into_iter().enumerate() {
        for ingress in batch {
            let _ = fleet.offer_at(i, ingress);
        }
    }
    fleet.step_ready(at).stepped()
}

fn main() {
    let smoke = std::env::var("CADEL_BENCH_SMOKE").is_ok();
    let tenants: usize = if smoke { 24 } else { 192 };
    let worker_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };

    section("fl1_wave_throughput (tenants stepped + group-synced per wave)");
    for &workers in worker_counts {
        let root = bench_root(&format!("fl1-w{workers}"));
        let mut fleet = build_fleet(&root, tenants, workers);
        let mut traffic = FleetTraffic::new(tenants, 7);
        let mut tick = 0u64;
        run(
            &format!("fl1_wave/workers-{workers}/{tenants}-tenants"),
            || {
                tick += 1;
                black_box(wave(&mut fleet, &mut traffic, tick))
            },
        );
        assert_eq!(fleet.health().healthy, tenants, "FL1 must stay fault-free");
        drop(fleet);
        let _ = std::fs::remove_dir_all(&root);
    }

    // FL2: every 12th tenant detonates whenever its hook is re-armed, so
    // each iteration quarantines and WAL-restarts that slice while the
    // rest of the fleet proceeds.
    section("fl2_chaos_wave (panic + quarantine + WAL restart per wave)");
    // The injected panics are caught by the supervisor; keep the default
    // hook from spraying backtraces over the measurements.
    std::panic::set_hook(Box::new(|_| {}));
    let workers = if smoke { 4 } else { 8 };
    for fault_every in [0usize, 12] {
        let root = bench_root(&format!("fl2-f{fault_every}"));
        let mut fleet = build_fleet(&root, tenants, workers);
        let mut traffic = FleetTraffic::new(tenants, 7);
        let mut tick = 0u64;
        let label = if fault_every == 0 {
            format!("fl2_wave/no-faults/{tenants}-tenants")
        } else {
            format!("fl2_wave/1-in-{fault_every}-panicking/{tenants}-tenants")
        };
        run(&label, || {
            if fault_every != 0 {
                for i in (0..tenants).step_by(fault_every) {
                    // Healthy again after last wave's restart: re-arm.
                    if let Some(server) = fleet.server_mut_of(&tenant_name(i)) {
                        server
                            .engine_mut()
                            .set_eval_hook(Some(Box::new(|_, _| panic!("fl2 chaos"))));
                    }
                }
            }
            tick += 1;
            black_box(wave(&mut fleet, &mut traffic, tick))
        });
        let health = fleet.health();
        println!(
            "  fl2 health: healthy={} quarantined={} panics={} restarts={} shed={}",
            health.healthy, health.quarantined, health.panics, health.restarts, health.shed
        );
        if fault_every != 0 {
            assert!(health.panics > 0, "FL2 chaos slice never panicked");
            assert!(health.restarts > 0, "FL2 never restarted a tenant");
            println!("  noisiest tenants:");
            for line in fleet.render_noisy(3).lines() {
                println!("    {line}");
            }
        }
        drop(fleet);
        let _ = std::fs::remove_dir_all(&root);
    }
    let _ = std::panic::take_hook();
}
