//! **A2 (ablation)** — rule-object compilation vs interpretation.
//!
//! The paper stresses that CADEL descriptions are compiled once into rule
//! objects instead of being re-interpreted at runtime (§4.1/§4.3). This
//! ablation measures the front-end costs that compilation pays once:
//! tokenization, parsing, and full compilation to rule objects (and, with
//! the IR pipeline, all the way to [`cadel::ir::RuleProgram`]s) — versus
//! the per-evaluation cost of an already-compiled rule (what the engine
//! pays on every event).

use cadel::ir::Interner;
use cadel_bench::cadel_sentences;
use cadel_bench::timing::{run, section};
use cadel_engine::{ContextStore, Evaluator, HeldTracker};
use cadel_lang::ast::Command;
use cadel_lang::{parse_command, Compiler, Dictionary, Lexicon, MapResolver};
use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, SimTime, Unit, Value};
use std::hint::black_box;

fn resolver() -> MapResolver {
    let mut r = MapResolver::new();
    r.add_person("tom")
        .add_person("alan")
        .add_place("living room")
        .add_place("hall")
        .add_device("air conditioner", "aircon-lr", None)
        .add_device("tv", "tv-lr", None)
        .add_device("stereo", "stereo-lr", None)
        .add_device("video recorder", "vcr-lr", None)
        .add_device("fan", "fan-1", None)
        .add_device("alarm", "alarm-1", None)
        .add_device("entrance door", "door-1", None)
        .add_device("light", "light-hall", Some("hall"))
        .add_sensor(
            "temperature",
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            None,
            Unit::Celsius,
        )
        .add_sensor(
            "humidity",
            SensorKey::new(DeviceId::new("hygro-lr"), "humidity"),
            None,
            Unit::Percent,
        )
        .add_ambient(
            "hall",
            "illuminance",
            SensorKey::new(DeviceId::new("lux-hall"), "illuminance"),
            Unit::Lux,
        );
    r
}

fn main() {
    let lexicon = Lexicon::english();
    let dictionary = Dictionary::new();
    let resolver = resolver();
    let compiler = Compiler::new(&resolver, &dictionary, PersonId::new("tom"));

    section("a2_front_end (256-sentence corpus)");
    let corpus = cadel_sentences(256);
    let bytes: usize = corpus.iter().map(String::len).sum();
    println!("corpus: {} sentences, {} bytes", corpus.len(), bytes);
    run("a2_front_end/tokenize_corpus", || {
        for s in &corpus {
            black_box(cadel_lang::token::tokenize(s).unwrap());
        }
    });
    run("a2_front_end/parse_corpus", || {
        for s in &corpus {
            black_box(parse_command(s, &lexicon, &dictionary).unwrap());
        }
    });

    section("a2_compile (pre-parsed corpus)");
    // Pre-parse so the measurements isolate compilation.
    let parsed: Vec<Command> = corpus
        .iter()
        .map(|s| parse_command(s, &lexicon, &dictionary).unwrap())
        .collect();
    run("a2_compile_corpus_to_rule_objects", || {
        let mut id = 0u64;
        for cmd in &parsed {
            if let Command::Rule(sentence) = cmd {
                let rule = compiler
                    .compile_rule(black_box(sentence))
                    .unwrap()
                    .build(RuleId::new(id))
                    .unwrap();
                black_box(rule);
                id += 1;
            }
        }
    });
    // One step further: lower each rule to its executable IR program too
    // (the full sentence → rule object → RuleProgram pipeline).
    run("a2_compile_corpus_to_ir_programs", || {
        let mut interner = Interner::new();
        let mut id = 0u64;
        for cmd in &parsed {
            if let Command::Rule(sentence) = cmd {
                let (rule, program) = compiler
                    .compile_rule_program(black_box(sentence), RuleId::new(id), &mut interner)
                    .unwrap();
                black_box((rule, program));
                id += 1;
            }
        }
    });

    section("a2_evaluation (compiled rule vs per-evaluation interpretation)");
    // The payoff of compilation: evaluating a compiled rule object against
    // the live context, the cost paid on every sensor event.
    let sentence_text = "If humidity is higher than 60 percent and temperature is higher than \
         26 degrees, turn on the air conditioner with 25 degrees of temperature setting.";
    let cmd = parse_command(sentence_text, &lexicon, &dictionary).unwrap();
    let Command::Rule(sentence) = cmd else {
        panic!("expected a rule")
    };
    let rule = compiler
        .compile_rule(&sentence)
        .unwrap()
        .build(RuleId::new(1))
        .unwrap();

    let mut ctx = ContextStore::default();
    ctx.set_now(SimTime::from_millis(1));
    ctx.set_value(
        SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
        Value::Number(Quantity::from_integer(28, Unit::Celsius)),
    );
    ctx.set_value(
        SensorKey::new(DeviceId::new("hygro-lr"), "humidity"),
        Value::Number(Quantity::from_integer(70, Unit::Percent)),
    );
    let mut held = HeldTracker::new();

    run("a2_evaluate_compiled_rule", || {
        let mut ev = Evaluator::new(&ctx, &mut held);
        assert!(ev.condition_holds(black_box(rule.condition())));
    });

    // The "interpretation" alternative the paper rejects: re-parsing and
    // re-compiling the sentence on every evaluation.
    run("a2_interpret_sentence_per_evaluation", || {
        let cmd = parse_command(black_box(sentence_text), &lexicon, &dictionary).unwrap();
        let Command::Rule(sentence) = cmd else {
            panic!("expected a rule")
        };
        let rule = compiler
            .compile_rule(&sentence)
            .unwrap()
            .build(RuleId::new(1))
            .unwrap();
        let mut ev = Evaluator::new(&ctx, &mut held);
        assert!(ev.condition_holds(rule.condition()));
    });
}
