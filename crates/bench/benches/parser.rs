//! **A2 (ablation)** — rule-object compilation vs interpretation.
//!
//! The paper stresses that CADEL descriptions are compiled once into rule
//! objects instead of being re-interpreted at runtime (§4.1/§4.3). This
//! ablation measures the front-end costs that compilation pays once:
//! tokenization, parsing, and full compilation to rule objects — versus
//! the per-evaluation cost of an already-compiled rule (what the engine
//! pays on every event).

use cadel_bench::cadel_sentences;
use cadel_engine::{ContextStore, Evaluator, HeldTracker};
use cadel_lang::ast::Command;
use cadel_lang::{parse_command, Compiler, Dictionary, Lexicon, MapResolver};
use cadel_types::{
    DeviceId, PersonId, Quantity, RuleId, SensorKey, SimTime, Unit, Value,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn resolver() -> MapResolver {
    let mut r = MapResolver::new();
    r.add_person("tom")
        .add_person("alan")
        .add_place("living room")
        .add_place("hall")
        .add_device("air conditioner", "aircon-lr", None)
        .add_device("tv", "tv-lr", None)
        .add_device("stereo", "stereo-lr", None)
        .add_device("video recorder", "vcr-lr", None)
        .add_device("fan", "fan-1", None)
        .add_device("alarm", "alarm-1", None)
        .add_device("entrance door", "door-1", None)
        .add_device("light", "light-hall", Some("hall"))
        .add_sensor(
            "temperature",
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            None,
            Unit::Celsius,
        )
        .add_sensor(
            "humidity",
            SensorKey::new(DeviceId::new("hygro-lr"), "humidity"),
            None,
            Unit::Percent,
        )
        .add_ambient(
            "hall",
            "illuminance",
            SensorKey::new(DeviceId::new("lux-hall"), "illuminance"),
            Unit::Lux,
        );
    r
}

fn bench_tokenize_and_parse(c: &mut Criterion) {
    let lexicon = Lexicon::english();
    let dictionary = Dictionary::new();
    let corpus = cadel_sentences(256);
    let bytes: usize = corpus.iter().map(String::len).sum();

    let mut group = c.benchmark_group("a2_front_end");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("tokenize_corpus", |b| {
        b.iter(|| {
            for s in &corpus {
                black_box(cadel_lang::token::tokenize(s).unwrap());
            }
        })
    });
    group.bench_function("parse_corpus", |b| {
        b.iter(|| {
            for s in &corpus {
                black_box(parse_command(s, &lexicon, &dictionary).unwrap());
            }
        })
    });
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let lexicon = Lexicon::english();
    let dictionary = Dictionary::new();
    let resolver = resolver();
    let compiler = Compiler::new(&resolver, &dictionary, PersonId::new("tom"));
    // Pre-parse so the measurement isolates compilation.
    let parsed: Vec<Command> = cadel_sentences(256)
        .iter()
        .map(|s| parse_command(s, &lexicon, &dictionary).unwrap())
        .collect();

    c.bench_function("a2_compile_corpus_to_rule_objects", |b| {
        b.iter(|| {
            let mut id = 0u64;
            for cmd in &parsed {
                if let Command::Rule(sentence) = cmd {
                    let rule = compiler
                        .compile_rule(black_box(sentence))
                        .unwrap()
                        .build(RuleId::new(id))
                        .unwrap();
                    black_box(rule);
                    id += 1;
                }
            }
        })
    });
}

fn bench_compiled_rule_evaluation(c: &mut Criterion) {
    // The payoff of compilation: evaluating a compiled rule object against
    // the live context, the cost paid on every sensor event.
    let lexicon = Lexicon::english();
    let dictionary = Dictionary::new();
    let resolver = resolver();
    let compiler = Compiler::new(&resolver, &dictionary, PersonId::new("tom"));
    let cmd = parse_command(
        "If humidity is higher than 60 percent and temperature is higher than \
         26 degrees, turn on the air conditioner with 25 degrees of temperature setting.",
        &lexicon,
        &dictionary,
    )
    .unwrap();
    let Command::Rule(sentence) = cmd else {
        panic!("expected a rule")
    };
    let rule = compiler
        .compile_rule(&sentence)
        .unwrap()
        .build(RuleId::new(1))
        .unwrap();

    let mut ctx = ContextStore::default();
    ctx.set_now(SimTime::from_millis(1));
    ctx.set_value(
        SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
        Value::Number(Quantity::from_integer(28, Unit::Celsius)),
    );
    ctx.set_value(
        SensorKey::new(DeviceId::new("hygro-lr"), "humidity"),
        Value::Number(Quantity::from_integer(70, Unit::Percent)),
    );
    let mut held = HeldTracker::new();

    c.bench_function("a2_evaluate_compiled_rule", |b| {
        b.iter(|| {
            let mut ev = Evaluator::new(&ctx, &mut held);
            assert!(ev.condition_holds(black_box(rule.condition())));
        })
    });

    // The "interpretation" alternative the paper rejects: re-parsing and
    // re-compiling the sentence on every evaluation.
    c.bench_function("a2_interpret_sentence_per_evaluation", |b| {
        b.iter(|| {
            let cmd = parse_command(
                black_box(
                    "If humidity is higher than 60 percent and temperature is higher than \
                     26 degrees, turn on the air conditioner with 25 degrees of temperature setting.",
                ),
                &lexicon,
                &dictionary,
            )
            .unwrap();
            let Command::Rule(sentence) = cmd else {
                panic!("expected a rule")
            };
            let rule = compiler
                .compile_rule(&sentence)
                .unwrap()
                .build(RuleId::new(1))
                .unwrap();
            let mut ev = Evaluator::new(&ctx, &mut held);
            assert!(ev.condition_holds(rule.condition()));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_tokenize_and_parse, bench_compile, bench_compiled_rule_evaluation
}
criterion_main!(benches);
