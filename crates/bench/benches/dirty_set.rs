//! P-series continued: dirty-set incremental evaluation.
//!
//! * **P3** — dirty-set scaling: one step over fleets of 10k/100k/1M
//!   rules where each rule watches its own sensor, swept across dirty
//!   sets of 1/16/256 sensors. With the slot-keyed trigger index a
//!   step's cost tracks the dirty set, not the fleet size — the
//!   100k-rule/1-sensor step should sit within a small factor of the
//!   1k-rule one.
//! * **P4** — the ablation: the same fleet and dirty set with the
//!   trigger index on vs off (`set_use_trigger_index(false)` scans every
//!   rule), swept across `eval_threads` — full scans get faster with
//!   more threads, the dirty-set step barely notices because there is
//!   almost nothing left to shard.
//!
//! `CADEL_BENCH_SMOKE=1` shrinks the fleets to CI-smoke size.

use cadel_bench::timing::{run, section};
use cadel_engine::Engine;
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_simplex::RelOp;
use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, SimTime, Unit, Value};
use cadel_upnp::{ControlPoint, EventBus, Registry};
use std::hint::black_box;

/// One rule per sensor: `sensor-i > 50 → turn on device-i`. A reading
/// for sensor `i` dirties exactly one rule.
fn fleet(n: u64) -> Engine {
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    for i in 0..n {
        let sensor = SensorKey::new(DeviceId::new(format!("sensor-{i}")), "reading");
        let rule = Rule::builder(PersonId::new("bench"))
            .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                sensor,
                RelOp::Gt,
                Quantity::from_integer(50, Unit::Celsius),
            ))))
            .action(ActionSpec::new(
                DeviceId::new(format!("device-{i}")),
                Verb::TurnOn,
            ))
            .build(RuleId::new(i))
            .unwrap();
        engine.add_rule(rule).unwrap();
    }
    // Settle the pending set: every rule commits its first verdict here.
    engine.step(SimTime::from_millis(1));
    engine
}

fn publish_reading(bus: &EventBus, sensor: u64, seq: u64, value: i64) {
    bus.publish_change(
        DeviceId::new(format!("sensor-{sensor}")),
        "reading".to_owned(),
        Value::Number(Quantity::from_integer(value, Unit::Celsius)),
        SimTime::from_millis(seq),
    );
}

/// One benchmark case: publish `dirty` readings (alternating above/below
/// the threshold so the touched rules genuinely flip) and take one step.
fn step_case(engine: &mut Engine, label: &str, dirty: u64) {
    let bus = engine.control().registry().event_bus().clone();
    let mut seq = 2u64;
    run(label, || {
        seq += 1;
        let value = if seq.is_multiple_of(2) { 30 } else { 70 };
        for s in 0..dirty {
            publish_reading(&bus, s, seq, value);
        }
        black_box(engine.step(SimTime::from_millis(seq)).firings.len())
    });
}

fn main() {
    let smoke = std::env::var("CADEL_BENCH_SMOKE").is_ok();
    let fleet_sizes: &[u64] = if smoke {
        &[1_000, 5_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let dirty_sizes: &[u64] = if smoke { &[1, 16] } else { &[1, 16, 256] };

    section("p3_dirty_set_scaling (per-step cost vs fleet size and dirty set)");
    for &n in fleet_sizes {
        let mut engine = fleet(n);
        for &dirty in dirty_sizes {
            step_case(
                &mut engine,
                &format!("p3_step/rules-{n}/dirty-{dirty}"),
                dirty,
            );
        }
    }

    let (p4_rules, p4_dirty) = if smoke { (5_000, 16) } else { (100_000, 16) };
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 8] };
    section("p4_full_scan_ablation (trigger index on vs off, eval_threads sweep)");
    for (label, trigger) in [("dirty", true), ("fullscan", false)] {
        for &threads in thread_counts {
            let mut engine = fleet(p4_rules);
            engine.set_use_trigger_index(trigger);
            engine.set_eval_threads(threads);
            step_case(
                &mut engine,
                &format!("p4_step/{label}/threads-{threads}/rules-{p4_rules}"),
                p4_dirty,
            );
        }
    }
}
