//! **A1 (ablation)** — solver strategy: interval fast path vs full
//! simplex.
//!
//! The paper used a general Simplex library even though home-automation
//! conditions are almost always univariate. This ablation quantifies the
//! design choice DESIGN.md calls out: `cadel-simplex` routes univariate
//! systems to exact interval intersection and keeps the tableau for the
//! general case. Series: feasibility time vs constraint count for both
//! strategies on the same univariate systems, plus multi-variable tableau
//! scaling and the infeasible (early-exit) case.

use cadel_simplex::{
    solve_intervals, solve_simplex, Constraint, LinExpr, RelOp, VarId,
};
use cadel_types::Rational;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A feasible univariate system: interleaved lower/upper bounds on `vars`
/// variables, `k` constraints total.
fn univariate_system(k: usize, vars: u32) -> Vec<Constraint> {
    (0..k)
        .map(|i| {
            let var = VarId::new((i as u32) % vars);
            if i % 2 == 0 {
                Constraint::new(
                    LinExpr::var(var),
                    RelOp::Gt,
                    Rational::from_integer((i as i64) % 20),
                )
            } else {
                Constraint::new(
                    LinExpr::var(var),
                    RelOp::Lt,
                    Rational::from_integer(100 + (i as i64) % 20),
                )
            }
        })
        .collect()
}

/// A feasible dense system: chained sums `x_i + x_{i+1} <= c` plus bounds.
fn multivariate_system(vars: u32) -> Vec<Constraint> {
    let mut out = Vec::new();
    for i in 0..vars.saturating_sub(1) {
        let expr = LinExpr::var(VarId::new(i)) + LinExpr::var(VarId::new(i + 1));
        out.push(Constraint::new(
            expr,
            RelOp::Le,
            Rational::from_integer(10 + i as i64),
        ));
    }
    for i in 0..vars {
        out.push(Constraint::new(
            LinExpr::var(VarId::new(i)),
            RelOp::Ge,
            Rational::from_integer(0),
        ));
    }
    out
}

fn bench_interval_vs_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_univariate_feasibility");
    for k in [2usize, 4, 8, 16, 32] {
        let system = univariate_system(k, 2);
        group.bench_with_input(BenchmarkId::new("interval", k), &k, |b, _| {
            b.iter(|| {
                assert!(solve_intervals(black_box(&system)).unwrap().is_feasible())
            })
        });
        group.bench_with_input(BenchmarkId::new("simplex", k), &k, |b, _| {
            b.iter(|| {
                assert!(solve_simplex(black_box(&system)).unwrap().is_feasible())
            })
        });
    }
    group.finish();
}

fn bench_simplex_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_simplex_multivariate");
    for vars in [2u32, 4, 8, 16] {
        let system = multivariate_system(vars);
        group.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| {
                assert!(solve_simplex(black_box(&system)).unwrap().is_feasible())
            })
        });
    }
    group.finish();
}

fn bench_infeasible_early_exit(c: &mut Criterion) {
    // x > 50 ∧ x < 40 plus padding constraints.
    let mut system = univariate_system(16, 2);
    system.push(Constraint::new(
        LinExpr::var(VarId::new(0)),
        RelOp::Gt,
        Rational::from_integer(50),
    ));
    system.push(Constraint::new(
        LinExpr::var(VarId::new(0)),
        RelOp::Lt,
        Rational::from_integer(40),
    ));
    let mut group = c.benchmark_group("a1_infeasible_univariate");
    group.bench_function("interval", |b| {
        b.iter(|| assert!(!solve_intervals(black_box(&system)).unwrap().is_feasible()))
    });
    group.bench_function("simplex", |b| {
        b.iter(|| assert!(!solve_simplex(black_box(&system)).unwrap().is_feasible()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_interval_vs_simplex, bench_simplex_scaling, bench_infeasible_early_exit
}
criterion_main!(benches);
