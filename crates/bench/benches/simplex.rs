//! **A1 (ablation)** — solver strategy: interval fast path vs full
//! simplex.
//!
//! The paper used a general Simplex library even though home-automation
//! conditions are almost always univariate. This ablation quantifies the
//! design choice DESIGN.md calls out: `cadel-simplex` routes univariate
//! systems to exact interval intersection and keeps the tableau for the
//! general case. Series: feasibility time vs constraint count for both
//! strategies on the same univariate systems, plus multi-variable tableau
//! scaling and the infeasible (early-exit) case.

use cadel_bench::timing::{run, section};
use cadel_simplex::{solve_intervals, solve_simplex, Constraint, LinExpr, RelOp, VarId};
use cadel_types::Rational;
use std::hint::black_box;

/// A feasible univariate system: interleaved lower/upper bounds on `vars`
/// variables, `k` constraints total.
fn univariate_system(k: usize, vars: u32) -> Vec<Constraint> {
    (0..k)
        .map(|i| {
            let var = VarId::new((i as u32) % vars);
            if i % 2 == 0 {
                Constraint::new(
                    LinExpr::var(var),
                    RelOp::Gt,
                    Rational::from_integer((i as i64) % 20),
                )
            } else {
                Constraint::new(
                    LinExpr::var(var),
                    RelOp::Lt,
                    Rational::from_integer(100 + (i as i64) % 20),
                )
            }
        })
        .collect()
}

/// A feasible dense system: chained sums `x_i + x_{i+1} <= c` plus bounds.
fn multivariate_system(vars: u32) -> Vec<Constraint> {
    let mut out = Vec::new();
    for i in 0..vars.saturating_sub(1) {
        let expr = LinExpr::var(VarId::new(i)) + LinExpr::var(VarId::new(i + 1));
        out.push(Constraint::new(
            expr,
            RelOp::Le,
            Rational::from_integer(10 + i as i64),
        ));
    }
    for i in 0..vars {
        out.push(Constraint::new(
            LinExpr::var(VarId::new(i)),
            RelOp::Ge,
            Rational::from_integer(0),
        ));
    }
    out
}

fn main() {
    section("a1_univariate_feasibility (interval vs simplex)");
    for k in [2usize, 4, 8, 16, 32] {
        let system = univariate_system(k, 2);
        run(&format!("a1_univariate/interval/{k}"), || {
            assert!(solve_intervals(black_box(&system)).unwrap().is_feasible())
        });
        run(&format!("a1_univariate/simplex/{k}"), || {
            assert!(solve_simplex(black_box(&system)).unwrap().is_feasible())
        });
    }

    section("a1_simplex_multivariate (tableau scaling)");
    for vars in [2u32, 4, 8, 16] {
        let system = multivariate_system(vars);
        run(&format!("a1_multivariate/{vars}"), || {
            assert!(solve_simplex(black_box(&system)).unwrap().is_feasible())
        });
    }

    section("a1_infeasible_univariate (early exit)");
    {
        // x > 50 ∧ x < 40 plus padding constraints.
        let mut system = univariate_system(16, 2);
        system.push(Constraint::new(
            LinExpr::var(VarId::new(0)),
            RelOp::Gt,
            Rational::from_integer(50),
        ));
        system.push(Constraint::new(
            LinExpr::var(VarId::new(0)),
            RelOp::Lt,
            Rational::from_integer(40),
        ));
        run("a1_infeasible/interval", || {
            assert!(!solve_intervals(black_box(&system)).unwrap().is_feasible())
        });
        run("a1_infeasible/simplex", || {
            assert!(!solve_simplex(black_box(&system)).unwrap().is_feasible())
        });
    }
}
