//! Observability overhead on the engine's hot path.
//!
//! The instrumentation contract (see `docs/OBSERVABILITY.md`) is that a
//! disabled gate costs one relaxed atomic load per metric site. This
//! bench measures what that means for a whole engine step, three ways:
//!
//! * **disabled** — the default: every gate short-circuits.
//! * **metrics** — `enable_metrics_only()`: counters/histograms record,
//!   events are dropped before construction.
//! * **ring** — full `install()` with a [`RingCollector`]: events are
//!   built and buffered too.
//!
//! The phases run in this order so the baseline is timed before any
//! global state is switched on. Numbers land in `EXPERIMENTS.md`.

use cadel_bench::timing::{format_line, run, section};
use cadel_engine::Engine;
use cadel_obs::{LazyCounter, LazyHistogram, RingCollector};
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_simplex::RelOp;
use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, SimTime, Unit, Value};
use cadel_upnp::{ControlPoint, EventBus, Registry};
use std::hint::black_box;
use std::sync::Arc;

/// A fleet of `n` rules, each watching its own sensor; only `sensor-0`
/// receives events, so the per-step work is one rule evaluation plus the
/// fixed step overhead the instrumentation adds to.
fn fleet(n: u64) -> Engine {
    let mut engine = Engine::new(ControlPoint::new(Registry::new()));
    for i in 0..n {
        let sensor = SensorKey::new(DeviceId::new(format!("sensor-{i}")), "reading");
        let rule = Rule::builder(PersonId::new("bench"))
            .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                sensor,
                RelOp::Gt,
                Quantity::from_integer(50, Unit::Celsius),
            ))))
            .action(ActionSpec::new(
                DeviceId::new(format!("device-{i}")),
                Verb::TurnOn,
            ))
            .build(RuleId::new(i))
            .unwrap();
        engine.add_rule(rule).unwrap();
    }
    engine.step(SimTime::from_millis(1));
    engine
}

fn publish_reading(bus: &EventBus, seq: u64, value: i64) {
    bus.publish_change(
        DeviceId::new("sensor-0"),
        "reading".to_owned(),
        Value::Number(Quantity::from_integer(value, Unit::Celsius)),
        SimTime::from_millis(seq),
    );
}

fn step_case(label: &str, n: u64) -> f64 {
    let mut engine = fleet(n);
    let bus = engine.control().registry().event_bus().clone();
    let mut seq = 2u64;
    let m = run(&format!("obs_step/{label}/{n}"), || {
        seq += 1;
        let value = if seq.is_multiple_of(2) { 30 } else { 70 };
        publish_reading(&bus, seq, value);
        black_box(engine.step(SimTime::from_millis(seq)).firings.len())
    });
    m.median_ns()
}

fn idle_case(label: &str, n: u64) -> f64 {
    let mut engine = fleet(n);
    let mut seq = 2u64;
    let m = run(&format!("obs_idle/{label}/{n}"), || {
        seq += 1;
        black_box(engine.step(SimTime::from_millis(seq)).is_empty())
    });
    m.median_ns()
}

/// Probe metrics for the gate microbenchmark below.
static PROBE_COUNTER: LazyCounter = LazyCounter::new("bench_gate_probe_total");
static PROBE_HISTOGRAM: LazyHistogram = LazyHistogram::new("bench_gate_probe_ns");

fn main() {
    const N: u64 = 1_000;

    // Phase 0: the gate itself, disabled — the claimed cost is one
    // relaxed atomic load per site.
    section("phase 0: one gate, disabled vs enabled");
    run("gate/disabled/counter_inc", || PROBE_COUNTER.inc());
    run("gate/disabled/histogram_observe", || {
        PROBE_HISTOGRAM.observe(black_box(1234))
    });

    // Phase 1: instrumentation off (process default).
    section("phase 1: obs disabled (gates short-circuit)");
    let disabled_step = step_case("disabled", N);
    let disabled_idle = idle_case("disabled", N);

    // Phase 2: metrics record, no collector.
    section("phase 2: enable_metrics_only (counters + histograms live)");
    cadel_obs::enable_metrics_only();
    let metrics_step = step_case("metrics", N);
    let metrics_idle = idle_case("metrics", N);

    // Phase 3: full install with a ring buffer collecting span events.
    section("phase 3: install RingCollector (events built + buffered)");
    let ring = Arc::new(RingCollector::new(4_096));
    cadel_obs::install(ring.clone());
    let ring_step = step_case("ring", N);
    let ring_idle = idle_case("ring", N);
    run("gate/enabled/counter_inc", || PROBE_COUNTER.inc());
    run("gate/enabled/histogram_observe", || {
        PROBE_HISTOGRAM.observe(black_box(1234))
    });
    cadel_obs::shutdown();

    section("overhead vs disabled baseline");
    for (label, base, v) in [
        ("step/metrics", disabled_step, metrics_step),
        ("step/ring", disabled_step, ring_step),
        ("idle/metrics", disabled_idle, metrics_idle),
        ("idle/ring", disabled_idle, ring_idle),
    ] {
        println!(
            "{:<58} {:>+13.0} ns/iter ({:+.2}%)",
            format!("obs_overhead/{label}"),
            v - base,
            (v - base) / base * 100.0
        );
    }
    println!(
        "ring buffered {} events, dropped {} (capacity 4096)",
        ring.events().len(),
        ring.dropped()
    );

    // The quantile accessors come from the same histogram type the
    // runtime exports — exercise them once so the shared path is visible.
    let m = cadel_bench::timing::bench("obs_step/quantiles", || black_box(1u64));
    println!(
        "{}  [p50 {} ns, p95 {} ns, p99 {} ns]",
        format_line(&m),
        m.p50_ns(),
        m.p95_ns(),
        m.p99_ns()
    );
}
