//! **E1 — "Time for Retrieving Devices"** (paper §5).
//!
//! The paper invoked 50 virtual UPnP devices and measured retrieval "by
//! its device name" and "by their service names", reporting ≤ 10 ms each.
//! This harness regenerates those two series over a device-count sweep
//! (the paper's point, N = 50, included), plus the SSDP discovery path.
//!
//! Expected shape: flat, far below the paper's 10 ms budget, and
//! independent of fleet size (hash-indexed lookups).

use cadel_bench::timing::{run, section};
use cadel_devices::{install_virtual_fleet, FLEET_KINDS};
use cadel_types::SimDuration;
use cadel_upnp::{Registry, SearchTarget, SsdpClient};
use std::hint::black_box;

const FLEET_SIZES: [usize; 5] = [10, 50, 100, 500, 1000];

fn main() {
    section("e1_retrieve_by_device_name");
    for n in FLEET_SIZES {
        let registry = Registry::new();
        install_virtual_fleet(&registry, n);
        let names: Vec<String> = (0..n).map(|i| format!("Virtual Device {i}")).collect();
        let mut cursor = 0usize;
        run(&format!("e1_by_device_name/{n}"), || {
            cursor = (cursor + 1) % names.len();
            let found = registry.find_by_name(black_box(&names[cursor]));
            assert_eq!(found.len(), 1);
            found
        });
    }

    section("e1_retrieve_by_service_name");
    for n in FLEET_SIZES {
        let registry = Registry::new();
        install_virtual_fleet(&registry, n);
        let services: Vec<String> = FLEET_KINDS
            .iter()
            .map(|k| format!("urn:cadel:service:{k}:1"))
            .collect();
        let mut cursor = 0usize;
        run(&format!("e1_by_service_name/{n}"), || {
            cursor = (cursor + 1) % services.len();
            let found = registry.find_by_service_type(black_box(&services[cursor]));
            assert!(!found.is_empty());
            found
        });
    }

    section("e1_ssdp_search_all");
    for n in FLEET_SIZES {
        let registry = Registry::new();
        install_virtual_fleet(&registry, n);
        let client = SsdpClient::new(registry, 42);
        run(&format!("e1_ssdp_search_all/{n}"), || {
            let found = client.search(black_box(&SearchTarget::All), SimDuration::from_secs(3));
            assert_eq!(found.len(), n);
            found
        });
    }
}
