//! **E1 — "Time for Retrieving Devices"** (paper §5).
//!
//! The paper invoked 50 virtual UPnP devices and measured retrieval "by
//! its device name" and "by their service names", reporting ≤ 10 ms each.
//! This harness regenerates those two series over a device-count sweep
//! (the paper's point, N = 50, included), plus the SSDP discovery path.
//!
//! Expected shape: flat, far below the paper's 10 ms budget, and
//! independent of fleet size (hash-indexed lookups).

use cadel_devices::{install_virtual_fleet, FLEET_KINDS};
use cadel_types::SimDuration;
use cadel_upnp::{Registry, SearchTarget, SsdpClient};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const FLEET_SIZES: [usize; 5] = [10, 50, 100, 500, 1000];

fn bench_by_device_name(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_retrieve_by_device_name");
    for n in FLEET_SIZES {
        let registry = Registry::new();
        install_virtual_fleet(&registry, n);
        let names: Vec<String> = (0..n).map(|i| format!("Virtual Device {i}")).collect();
        let mut cursor = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                cursor = (cursor + 1) % names.len();
                let found = registry.find_by_name(black_box(&names[cursor]));
                assert_eq!(found.len(), 1);
                found
            })
        });
    }
    group.finish();
}

fn bench_by_service_name(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_retrieve_by_service_name");
    for n in FLEET_SIZES {
        let registry = Registry::new();
        install_virtual_fleet(&registry, n);
        let services: Vec<String> = FLEET_KINDS
            .iter()
            .map(|k| format!("urn:cadel:service:{k}:1"))
            .collect();
        let mut cursor = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                cursor = (cursor + 1) % services.len();
                let found = registry.find_by_service_type(black_box(&services[cursor]));
                assert!(!found.is_empty());
                found
            })
        });
    }
    group.finish();
}

fn bench_ssdp_search_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_ssdp_search_all");
    for n in FLEET_SIZES {
        let registry = Registry::new();
        install_virtual_fleet(&registry, n);
        let client = SsdpClient::new(registry, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let found =
                    client.search(black_box(&SearchTarget::All), SimDuration::from_secs(3));
                assert_eq!(found.len(), n);
                found
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_by_device_name, bench_by_service_name, bench_ssdp_search_all
}
criterion_main!(benches);
