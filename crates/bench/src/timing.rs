//! A small hand-rolled timing harness.
//!
//! The workspace builds fully offline, so the benches cannot use an
//! external harness crate. This module provides the usual loop instead:
//! warmup-calibrated iteration counts, a few timed samples, and the
//! median nanoseconds per iteration (the median is robust against a
//! single preempted sample).
//!
//! Each sample is also recorded into a standalone `cadel-obs`
//! [`Histogram`], so bench results and runtime latency metrics share one
//! bucket scheme and quantile definition ([`Measurement::p50_ns`] and
//! friends read the same log-linear buckets Prometheus exposition does).
//!
//! Benches are plain `main` binaries (`harness = false`); run them with
//! `cargo bench -p cadel-bench` and read the printed table.

use cadel_obs::{Histogram, HistogramSummary};
use std::hint::black_box;
use std::time::Instant;

/// Timed samples for one benchmark case.
#[derive(Clone, Debug)]
pub struct Measurement {
    label: String,
    iters_per_sample: u64,
    samples_ns_per_iter: Vec<f64>,
    histogram: Histogram,
}

impl Measurement {
    /// The case label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Iterations timed per sample (calibrated during warmup).
    pub fn iters_per_sample(&self) -> u64 {
        self.iters_per_sample
    }

    /// Median nanoseconds per iteration across samples.
    pub fn median_ns(&self) -> f64 {
        let mut sorted = self.samples_ns_per_iter.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[sorted.len() / 2]
    }

    /// Fastest sample, in nanoseconds per iteration.
    pub fn min_ns(&self) -> f64 {
        self.samples_ns_per_iter
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The obs-histogram view of the samples (log-linear buckets,
    /// ≤ 1/16 relative error — same scheme as the runtime metrics).
    pub fn summary(&self) -> HistogramSummary {
        self.histogram.summary(&self.label)
    }

    /// Median per-iteration nanoseconds, read from the obs histogram.
    pub fn p50_ns(&self) -> u64 {
        self.summary().p50()
    }

    /// 95th-percentile sample, read from the obs histogram.
    pub fn p95_ns(&self) -> u64 {
        self.summary().p95()
    }

    /// 99th-percentile sample, read from the obs histogram.
    pub fn p99_ns(&self) -> u64 {
        self.summary().p99()
    }
}

/// How long each timed sample should run, once calibrated.
const TARGET_SAMPLE_NS: f64 = 40_000_000.0;
/// Minimum elapsed time for the calibration loop to be trusted.
const CALIBRATION_NS: f64 = 5_000_000.0;
/// Timed samples per case.
const SAMPLES: usize = 5;

/// Times `f`, returning calibrated samples. The warmup loop doubles the
/// iteration count until the batch takes ≥ 5 ms, then sizes samples to
/// ~40 ms each (min 1 iteration, for slow cases).
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) -> Measurement {
    let mut iters: u64 = 1;
    let per_iter_ns = loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        if elapsed >= CALIBRATION_NS || iters >= 1 << 30 {
            break elapsed / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };
    let iters_per_sample = ((TARGET_SAMPLE_NS / per_iter_ns).ceil() as u64).max(1);
    let histogram = Histogram::standalone();
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            black_box(f());
        }
        let ns_per_iter = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
        histogram.observe(ns_per_iter as u64);
        samples.push(ns_per_iter);
    }
    Measurement {
        label: label.to_owned(),
        iters_per_sample,
        samples_ns_per_iter: samples,
        histogram,
    }
}

/// Times `f` and prints one result line immediately.
pub fn run<R>(label: &str, f: impl FnMut() -> R) -> Measurement {
    let m = bench(label, f);
    println!("{}", format_line(&m));
    m
}

/// Renders one aligned result line: label, median, human-readable time.
pub fn format_line(m: &Measurement) -> String {
    format!(
        "{:<58} {:>14.0} ns/iter   ({}, {} iters/sample)",
        m.label(),
        m.median_ns(),
        human(m.median_ns()),
        m.iters_per_sample()
    )
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

fn human(ns: f64) -> String {
    if ns >= 1_000_000_000.0 {
        format!("{:.2} s", ns / 1_000_000_000.0)
    } else if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_one_outlier() {
        let samples = [10.0, 11.0, 9.0, 500.0, 10.5];
        let histogram = Histogram::standalone();
        for s in samples {
            histogram.observe(s as u64);
        }
        let m = Measurement {
            label: "x".into(),
            iters_per_sample: 1,
            samples_ns_per_iter: samples.to_vec(),
            histogram,
        };
        assert_eq!(m.median_ns(), 10.5);
        assert_eq!(m.min_ns(), 9.0);
        // The histogram view agrees: values < 16 land in exact buckets.
        assert_eq!(m.p50_ns(), 10);
        assert!(m.p99_ns() >= 469, "outlier should dominate p99");
    }

    #[test]
    fn bench_returns_positive_timing() {
        let mut n = 0u64;
        let m = bench("noop", || {
            n = n.wrapping_add(1);
            n
        });
        assert!(m.median_ns() > 0.0);
        assert!(m.iters_per_sample() >= 1);
        assert!(format_line(&m).contains("noop"));
        // Every sample lands in the shared obs histogram.
        assert_eq!(m.summary().count, SAMPLES as u64);
    }
}
