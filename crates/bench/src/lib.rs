//! Shared workload generators for the benchmark harness.
//!
//! Each generator is deterministic (seeded or arithmetic), so benchmark
//! runs are reproducible. The shapes mirror the paper's evaluation:
//!
//! * [`e2_database`] — the E2 rule database: N rules, M of them on one
//!   shared device, each condition a conjunction of two inequalities.
//! * [`e2_probe`] — the rule "being registered" in E2.
//! * [`cadel_sentences`] — a CADEL corpus cycling over the grammar's
//!   constructs for the parser throughput ablation (A2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, RuleDb, Verb};
use cadel_simplex::RelOp;
use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, Unit};

/// The UDN of the E2 shared device.
pub const SHARED_DEVICE: &str = "aircon-shared";

/// A two-inequality condition `temperature > t ∧ humidity > h` — the
/// condition shape the paper's E2 experiment stipulates.
pub fn two_inequality_condition(temp_above: i64, humid_above: i64) -> Condition {
    let temp = Atom::Constraint(ConstraintAtom::new(
        SensorKey::new(DeviceId::new("thermo"), "temperature"),
        RelOp::Gt,
        Quantity::from_integer(temp_above, Unit::Celsius),
    ));
    let humid = Atom::Constraint(ConstraintAtom::new(
        SensorKey::new(DeviceId::new("hygro"), "humidity"),
        RelOp::Gt,
        Quantity::from_integer(humid_above, Unit::Percent),
    ));
    Condition::Atom(temp).and(Condition::Atom(humid))
}

/// Builds the E2 database: `total` rules, `same_device` of them targeting
/// [`SHARED_DEVICE`], the rest spread over unique devices.
///
/// # Panics
///
/// Panics if `same_device` is zero or exceeds `total`.
pub fn e2_database(total: u64, same_device: u64) -> RuleDb {
    assert!(same_device > 0 && same_device <= total);
    let stride = total / same_device;
    let mut db = RuleDb::new();
    for i in 0..total {
        let on_shared = i % stride == 0 && i / stride < same_device;
        let device = if on_shared {
            DeviceId::new(SHARED_DEVICE)
        } else {
            DeviceId::new(format!("device-{i}"))
        };
        let band = if (i / stride).is_multiple_of(2) {
            5
        } else {
            25
        };
        let temp = band + (i % 10) as i64;
        let humid = 40 + (i % 40) as i64;
        let rule = Rule::builder(PersonId::new(format!("user-{}", i % 7)))
            .condition(two_inequality_condition(temp, humid))
            .action(ActionSpec::new(device, Verb::TurnOn).with_setting(
                "temperature",
                Quantity::from_integer(18 + ((i / stride.max(1)) % 10) as i64, Unit::Celsius),
            ))
            .build(RuleId::new(i))
            .expect("generated rule is valid");
        db.insert(rule).expect("generated ids are unique");
    }
    db
}

/// The probe rule registered against the E2 database: conflicts with every
/// co-satisfiable shared-device rule (different set-point).
pub fn e2_probe() -> Rule {
    Rule::builder(PersonId::new("probe"))
        .condition(two_inequality_condition(30, 70))
        .action(
            ActionSpec::new(DeviceId::new(SHARED_DEVICE), Verb::TurnOn)
                .with_setting("temperature", Quantity::from_integer(17, Unit::Celsius)),
        )
        .build(RuleId::new(999_999))
        .expect("probe is valid")
}

/// A corpus of `n` CADEL sentences cycling through the grammar: numeric
/// comparisons, conjunctions, time specs, durations, presence, events,
/// configurations.
pub fn cadel_sentences(n: usize) -> Vec<String> {
    let templates: [fn(usize) -> String; 8] = [
        |i| {
            format!(
                "If humidity is higher than {} percent and temperature is higher than \
                 {} degrees, turn on the air conditioner with {} degrees of temperature setting.",
                50 + i % 40,
                20 + i % 10,
                20 + i % 8
            )
        },
        |i| {
            format!(
                "After evening, if someone returns home and the hall is dark, \
                 turn on the light at the hall until {} pm.",
                8 + i % 4
            )
        },
        |i| {
            format!(
                "At night, if entrance door is unlocked for {} minutes, turn on the alarm.",
                10 + i % 50
            )
        },
        |_| "When I'm in the living room in evening, play jazz music on the stereo.".to_owned(),
        |i| {
            format!(
                "When a baseball game is on air, record the baseball game with the \
                 video recorder if temperature is lower than {} degrees.",
                30 + i % 5
            )
        },
        |i| {
            format!(
                "Every monday at {}:30, turn on the TV with {} of channel setting.",
                9 + i % 8,
                1 + i % 9
            )
        },
        |i| {
            format!(
                "If temperature is higher than {} degrees or humidity is over {} percent, \
                 turn on the fan.",
                25 + i % 10,
                60 + i % 30
            )
        },
        |_| {
            "Let's call the condition that humidity is higher than 60 percent and \
             temperature is higher than 28 degrees hot and stuffy"
                .to_owned()
        },
    ];
    (0..n).map(|i| templates[i % templates.len()](i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_database_shape() {
        let db = e2_database(1000, 10);
        assert_eq!(db.len(), 1000);
        assert_eq!(db.rules_for_device(&DeviceId::new(SHARED_DEVICE)).len(), 10);
        let db = e2_database(10_000, 100);
        assert_eq!(
            db.rules_for_device(&DeviceId::new(SHARED_DEVICE)).len(),
            100
        );
    }

    #[test]
    fn probe_conflicts_with_all_shared_rules() {
        let db = e2_database(1000, 10);
        let conflicts = cadel_conflict::find_conflicts(&db, &e2_probe()).unwrap();
        assert_eq!(conflicts.len(), 10);
    }

    #[test]
    fn sentences_parse() {
        let lexicon = cadel_lang::Lexicon::english();
        let dictionary = cadel_lang::Dictionary::new();
        for s in cadel_sentences(64) {
            cadel_lang::parse_command(&s, &lexicon, &dictionary)
                .unwrap_or_else(|e| panic!("{s:?}: {e}"));
        }
    }

    #[test]
    fn corpus_round_trips_through_the_pretty_printer() {
        let lexicon = cadel_lang::Lexicon::english();
        let dictionary = cadel_lang::Dictionary::new();
        for s in cadel_sentences(64) {
            let first = cadel_lang::parse_command(&s, &lexicon, &dictionary)
                .unwrap_or_else(|e| panic!("{s:?}: {e}"));
            let rendered = cadel_lang::render_command(&first);
            let second = cadel_lang::parse_command(&rendered, &lexicon, &dictionary)
                .unwrap_or_else(|e| panic!("rendered {rendered:?}: {e}"));
            assert_eq!(first, second, "round trip changed {s:?} via {rendered:?}");
        }
    }
}
