//! Multi-day simulation: `every Monday` and day-part rules firing on the
//! right days across a simulated week.

use cadel_devices::LivingRoomHome;
use cadel_server::{HomeServer, SubmitOutcome};
use cadel_sim::Simulation;
use cadel_types::{PersonId, SimDuration, SimTime, Topology, Value, Weekday};
use cadel_upnp::{ControlPoint, Registry, VirtualDevice};

fn day_hm(day: u64, h: u64, m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_hours(day * 24 + h) + SimDuration::from_minutes(m)
}

struct World {
    server: HomeServer,
    home: LivingRoomHome,
    tv_on_log: Vec<(u64, bool)>, // (day, power at 20:30)
}

fn setup() -> World {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut topology = Topology::new("home");
    topology.add_floor("first floor").unwrap();
    topology.add_room("living room", "first floor").unwrap();
    topology.add_room("hall", "first floor").unwrap();
    let mut server = HomeServer::new(ControlPoint::new(registry), topology);
    server.add_user("tom").unwrap();
    World {
        server,
        home,
        tv_on_log: Vec::new(),
    }
}

#[test]
fn every_monday_rule_fires_only_on_mondays() {
    let mut world = setup();
    let tom = PersonId::new("tom");
    // Simulation epoch (day 0) is Monday 2005-06-06.
    let outcome = world
        .server
        .submit(
            &tom,
            "Every monday at 8 pm, turn on the TV with 4 of channel setting.",
        )
        .unwrap();
    assert!(matches!(outcome, SubmitOutcome::Registered { .. }));

    let mut sim = Simulation::new(world);
    // Each evening at 19:55, reset the TV; at 20:30 log its state.
    for day in 0..7u64 {
        sim.schedule(day_hm(day, 19, 55), move |w, at| {
            w.home.tv.invoke("TurnOff", &[], at).unwrap();
        });
        sim.schedule(day_hm(day, 20, 30), move |w, _| {
            let on = w.home.tv.query("power").unwrap() == Value::Bool(true);
            w.tv_on_log.push((day, on));
        });
    }
    sim.run_until(day_hm(7, 0, 0), SimDuration::from_minutes(5), |w, at| {
        w.server.step(at);
    });
    let world = sim.into_world();

    // Only day 0 (Monday) has the TV on at 20:30.
    assert_eq!(
        world.tv_on_log,
        vec![
            (0, true),
            (1, false),
            (2, false),
            (3, false),
            (4, false),
            (5, false),
            (6, false),
        ]
    );
    // Sanity: the engine's calendar agrees about day 7.
    assert_eq!(world.server.engine().context().weekday(), Weekday::Monday);
}

#[test]
fn evening_rule_fires_every_day() {
    let mut world = setup();
    let tom = PersonId::new("tom");
    world
        .server
        .submit(
            &tom,
            "When I'm in the living room in evening, dim the floor lamp.",
        )
        .unwrap();

    let mut sim = Simulation::new(world);
    for day in 0..3u64 {
        // Tom walks in at 18:00 and out at 21:00 every day; lamp reset at
        // noon.
        sim.schedule(day_hm(day, 12, 0), move |w, at| {
            w.home.floor_lamp.invoke("TurnOff", &[], at).unwrap();
        });
        sim.schedule(day_hm(day, 18, 0), move |w, at| {
            w.home
                .living_presence
                .person_entered(&PersonId::new("tom"), at);
        });
        sim.schedule(day_hm(day, 21, 0), move |w, at| {
            w.home
                .living_presence
                .person_left(&PersonId::new("tom"), at);
        });
        sim.schedule(day_hm(day, 19, 0), move |w, _| {
            assert_eq!(
                w.home.floor_lamp.query("power").unwrap(),
                Value::Bool(true),
                "lamp should be on at 19:00 of day {day}"
            );
        });
        sim.schedule(day_hm(day, 13, 0), move |w, _| {
            assert_eq!(
                w.home.floor_lamp.query("power").unwrap(),
                Value::Bool(false),
                "lamp should be off at 13:00 of day {day}"
            );
        });
    }
    sim.run_until(day_hm(3, 0, 0), SimDuration::from_minutes(10), |w, at| {
        w.server.step(at);
    });
}
