//! The paper's Fig. 1 control scenario: Tom, Alan and Emily share the
//! living room, their preferences collide, and context-scoped priorities
//! arbitrate.
//!
//! The timeline reproduced (x-axis of Fig. 1, here on simulated day 0):
//!
//! | time  | event | expected device reactions |
//! |-------|-------|----------------------------|
//! | 17:00 | Tom enters the living room (*1) | stereo plays jazz (s1), floor lamp half-light (l1) |
//! | 17:30 | room turns hot and stuffy (27 °C / 66 %) | air conditioner 25 °C / 60 % (a1, Tom's word "hot and stuffy") |
//! | 18:00 | Alan got home from work (*2); a baseball game is on air | TV shows the game (t2), stereo volume drops (s′1), air conditioner re-arbitrates to Alan's 24 °C / 55 % (a2) |
//! | 18:55 | heat spike (30 °C / 78 %) | nothing yet — Emily's rule exists but she is not home |
//! | 19:00 | Emily got home from shopping (*3); her movie is on air | TV switches to the movie (t3, Emily outranks Alan in her context), stereo plays the movie sound (s3), fluorescent brightens (l3), air conditioner 27 °C / 65 % (a3); Alan's displaced TV rule falls back to recording the game (r2) |
//!
//! All user rules go through the real pipeline: CADEL sentences are
//! submitted to the home server, conflicts are detected by the Simplex
//! checker, and the Fig. 7 priority prompt is answered with context-scoped
//! orders. The one exception is Alan's fallback recorder rule (r2): the
//! paper gives no language form for "if it is impossible to use the TV";
//! we express it at the IR level against the engine's conflict channel
//! (see `cadel_engine::CONFLICT_CHANNEL`).

use crate::activity::ActivityTimeline;
use crate::schedule::Simulation;
use crate::timechart::TimeChart;
use cadel_devices::LivingRoomHome;
use cadel_engine::CONFLICT_CHANNEL;
use cadel_rule::{ActionSpec, Atom, Condition, EventAtom, PresenceAtom, Rule, Verb};
use cadel_server::{HomeServer, SubmitOutcome};
use cadel_types::{DeviceId, PersonId, Rational, RuleId, SimDuration, SimTime, Topology, Value};
use cadel_upnp::{ControlPoint, FaultPlan, FaultyDevice, Registry, VirtualDevice};

/// Rule ids of the scenario, named after Fig. 1's labels.
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)]
pub struct ScenarioRules {
    pub s1: RuleId,
    pub s1_quiet: RuleId,
    pub s3: RuleId,
    pub t2: RuleId,
    pub t3: RuleId,
    pub r2: RuleId,
    pub l1: RuleId,
    pub l3: RuleId,
    pub a1: RuleId,
    pub a2: RuleId,
    pub a3: RuleId,
}

/// The world simulated by the scenario.
pub struct ScenarioWorld {
    /// The home server (engine, rules, priorities).
    pub server: HomeServer,
    /// Handles to the living-room devices.
    pub home: LivingRoomHome,
    /// The recorded time chart.
    pub chart: TimeChart,
    /// Per-step engine activity (firings, suppressions, releases).
    pub activity: ActivityTimeline,
    /// Human-readable event log.
    pub log: Vec<String>,
}

impl ScenarioWorld {
    fn snapshot(&mut self, at: SimTime) {
        let home = &self.home;
        let chart = &mut self.chart;
        let text = |v: Result<Value, _>| -> String {
            match v {
                Ok(Value::Text(t)) => t,
                Ok(other) => other.to_string(),
                Err(_) => String::new(),
            }
        };
        // Stereo.
        let stereo = if home.stereo.query("playing") == Ok(Value::Bool(true)) {
            let content = text(home.stereo.query("content"));
            let volume = text(home.stereo.query("volume"));
            format!("{content} vol{volume}")
        } else {
            "off".to_owned()
        };
        chart.record("Stereo", at, stereo);
        // TV.
        let tv = if home.tv.query("power") == Ok(Value::Bool(true)) {
            let content = text(home.tv.query("content"));
            if content.is_empty() {
                "on".to_owned()
            } else {
                content
            }
        } else {
            "off".to_owned()
        };
        chart.record("TV", at, tv);
        // Recorder.
        let recorder = if home.recorder.query("recording") == Ok(Value::Bool(true)) {
            format!("rec {}", text(home.recorder.query("content")))
        } else {
            "off".to_owned()
        };
        chart.record("Recorder", at, recorder);
        // Room light: the fluorescent dominates; else the floor lamp.
        let light = if home.fluorescent.query("power") == Ok(Value::Bool(true)) {
            "bright".to_owned()
        } else if home.floor_lamp.query("power") == Ok(Value::Bool(true)) {
            "half-lighting".to_owned()
        } else {
            "off".to_owned()
        };
        chart.record("Room light", at, light);
        // Air conditioner.
        let aircon = if home.aircon.query("power") == Ok(Value::Bool(true)) {
            format!(
                "{}/{}",
                text(home.aircon.query("setpoint")),
                text(home.aircon.query("humidity-target"))
            )
        } else {
            "off".to_owned()
        };
        chart.record("Air conditioner", at, aircon);
    }
}

/// The built scenario, ready to run.
pub struct LivingRoomScenario {
    sim: Simulation<ScenarioWorld>,
    rules: ScenarioRules,
}

fn hm(h: u64, m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_hours(h) + SimDuration::from_minutes(m)
}

fn presence_ctx(person: &str) -> Condition {
    Condition::Atom(Atom::Presence(PresenceAtom::person_at(
        person,
        "living room",
    )))
}

fn expect_registered(outcome: SubmitOutcome) -> RuleId {
    match outcome {
        SubmitOutcome::Registered { id, .. } => id,
        other => panic!("expected clean registration, got {other:?}"),
    }
}

impl LivingRoomScenario {
    /// Builds the home, registers the three occupants' preference rules
    /// through the full registration workflow, and answers the priority
    /// prompts with the household's context-scoped agreements.
    ///
    /// # Panics
    ///
    /// Panics if any registration deviates from the expected workflow —
    /// the scenario doubles as an end-to-end assertion of the pipeline.
    pub fn build() -> LivingRoomScenario {
        LivingRoomScenario::build_with_faults(Vec::new())
    }

    /// Like [`LivingRoomScenario::build`], but wraps the named devices in
    /// seeded [`FaultPlan`]s before the server is created, so the whole
    /// Fig. 1 timeline runs against flaky hardware. Device handles on
    /// [`LivingRoomHome`] keep pointing at the inner devices; their
    /// published sensor readings still pass through the fault decorator's
    /// dropout gate.
    ///
    /// # Panics
    ///
    /// Panics when a fault plan names a device the home does not have, or
    /// if any registration deviates from the expected workflow.
    pub fn build_with_faults(faults: Vec<(DeviceId, FaultPlan)>) -> LivingRoomScenario {
        let registry = Registry::new();
        let home = LivingRoomHome::install(&registry);
        for (device, plan) in faults {
            FaultyDevice::wrap(&registry, &device, plan).expect("wrap scenario device");
        }
        let mut topology = Topology::new("home");
        topology.add_floor("first floor").expect("fresh topology");
        topology
            .add_room("living room", "first floor")
            .expect("fresh topology");
        topology
            .add_room("hall", "first floor")
            .expect("fresh topology");
        let mut server = HomeServer::new(ControlPoint::new(registry), topology);
        let tom = server.add_user("tom").expect("fresh server");
        let emily = server.add_user("emily").expect("fresh server");
        let alan = server.add_user("alan").expect("fresh server");

        // ---- Tom's preferences (§3.1) ---------------------------------
        expect_registered(
            server
                .submit(
                    &tom,
                    "Let's call the condition that temperature is higher than 26 degrees \
                     and humidity is higher than 65 percent hot and stuffy",
                )
                .map(|o| match o {
                    SubmitOutcome::ConditionWordDefined { .. } => SubmitOutcome::Registered {
                        id: RuleId::new(0),
                        dead_conjuncts: vec![],
                    },
                    other => other,
                })
                .expect("word definition"),
        );
        let s1 = expect_registered(
            server
                .submit(
                    &tom,
                    "When I'm in the living room in evening, play jazz music on the stereo.",
                )
                .expect("s1"),
        );
        let l1 = expect_registered(
            server
                .submit(
                    &tom,
                    "When I'm in the living room in evening, dim the floor lamp.",
                )
                .expect("l1"),
        );
        let a1 = expect_registered(
            server
                .submit(
                    &tom,
                    "If hot and stuffy, turn on the air conditioner with 25 degrees of \
                     temperature setting and 60 percent of humidity setting.",
                )
                .expect("a1"),
        );

        // ---- Emily's preferences --------------------------------------
        let t3 = expect_registered(
            server
                .submit(
                    &emily,
                    "When I'm in the living room and a movie is on air, show the movie on the TV.",
                )
                .expect("t3"),
        );
        // Her stereo rule conflicts with Tom's jazz.
        let s3 = match server
            .submit(&emily, "When I'm in the living room and a movie is on air, play the movie sound on the stereo.")
            .expect("s3")
        {
            SubmitOutcome::ConflictDetected { ticket, conflicts } => {
                assert!(conflicts.iter().any(|c| c.rule_b() == s1));
                server
                    .confirm_with_priority(
                        ticket,
                        vec![ticket, s1],
                        Some(presence_ctx("emily")),
                        Some("Emily got home from shopping".to_owned()),
                    )
                    .expect("priority for s3")
            }
            other => panic!("expected stereo conflict, got {other:?}"),
        };
        let l3 = expect_registered(
            server
                .submit(&emily, "When I'm in the living room and a movie is on air, brighten the fluorescent light.")
                .expect("l3"),
        );
        // Her air-conditioner rule conflicts with Tom's.
        let a3 = match server
            .submit(
                &emily,
                "If temperature is higher than 29 degrees and humidity is higher than \
                 75 percent, turn on the air conditioner with 27 degrees of temperature \
                 setting and 65 percent of humidity setting.",
            )
            .expect("a3")
        {
            SubmitOutcome::ConflictDetected { ticket, .. } => server
                .confirm_with_priority(
                    ticket,
                    vec![ticket, a1],
                    Some(presence_ctx("emily")),
                    Some("Emily got home from shopping".to_owned()),
                )
                .expect("priority for a3"),
            other => panic!("expected aircon conflict, got {other:?}"),
        };

        // ---- Alan's preferences ---------------------------------------
        // His TV rule conflicts with Emily's: the household gives Emily the
        // upper hand while she is home.
        let t2 = match server
            .submit(&alan, "When I'm in the living room and a baseball game is on air, show the baseball game on the TV.")
            .expect("t2")
        {
            SubmitOutcome::ConflictDetected { ticket, .. } => server
                .confirm_with_priority(
                    ticket,
                    vec![t3, ticket],
                    Some(presence_ctx("emily")),
                    Some("Emily got home from shopping".to_owned()),
                )
                .expect("priority for t2"),
            other => panic!("expected TV conflict, got {other:?}"),
        };
        // His air-conditioner rule conflicts with both others.
        let a2 = match server
            .submit(
                &alan,
                "If temperature is higher than 25 degrees and humidity is higher than \
                 60 percent, turn on the air conditioner with 24 degrees of temperature \
                 setting and 55 percent of humidity setting.",
            )
            .expect("a2")
        {
            SubmitOutcome::ConflictDetected { ticket, conflicts } => {
                assert_eq!(conflicts.len(), 2);
                server
                    .confirm_with_priority(
                        ticket,
                        vec![ticket, a1],
                        Some(presence_ctx("alan")),
                        Some("Alan got home from work".to_owned()),
                    )
                    .expect("priority for a2")
            }
            other => panic!("expected aircon conflict, got {other:?}"),
        };

        // ---- Tom's courtesy rule (s′1): lower the stereo when Alan is
        //      home ----------------------------------------------------
        let s1_quiet = match server
            .submit(
                &tom,
                "If Alan is at the living room, set the stereo with 15 percent of volume setting.",
            )
            .expect("s'1")
        {
            SubmitOutcome::ConflictDetected { ticket, .. } => server
                .confirm_with_priority(
                    ticket,
                    vec![ticket, s1],
                    Some(presence_ctx("alan")),
                    Some("Alan got home from work".to_owned()),
                )
                .expect("priority for s'1"),
            other => panic!("expected stereo conflict, got {other:?}"),
        };

        // ---- Alan's fallback (r2): record the game when his TV rule is
        //      displaced (IR level — see module docs) -------------------
        let r2_id = server.engine_mut().rules_mut().allocate_id();
        let r2_rule = Rule::builder(alan.clone())
            .condition(
                Condition::Atom(Atom::Event(EventAtom::new(CONFLICT_CHANNEL, "tv-lr:alan"))).and(
                    Condition::Atom(Atom::Event(EventAtom::new("tv-guide", "baseball game"))),
                ),
            )
            .action(
                ActionSpec::new(DeviceId::new("vcr-lr"), Verb::Record)
                    .with_setting("content", Value::from("baseball game")),
            )
            .label("If I cannot use the TV, record the baseball game with the video recorder")
            .build(r2_id)
            .expect("r2 builds");
        let r2 = match server.register_rule(r2_rule).expect("r2 registers") {
            SubmitOutcome::Registered { id, .. } => id,
            other => panic!("unexpected r2 outcome {other:?}"),
        };

        let rules = ScenarioRules {
            s1,
            s1_quiet,
            s3,
            t2,
            t3,
            r2,
            l1,
            l3,
            a1,
            a2,
            a3,
        };

        // ---- The Fig. 1 timeline --------------------------------------
        let mut chart = TimeChart::new();
        for track in ["Stereo", "TV", "Recorder", "Room light", "Air conditioner"] {
            chart.add_track(track);
        }
        let world = ScenarioWorld {
            server,
            home,
            chart,
            activity: ActivityTimeline::new(),
            log: Vec::new(),
        };
        let mut sim = Simulation::new(world);

        sim.schedule(hm(16, 50), |w, at| {
            w.log
                .push(format!("{} initial room: 25°C / 60%", at.time_of_day()));
            w.home
                .thermometer
                .set_reading(Rational::from_integer(25), at)
                .expect("in range");
            w.home
                .hygrometer
                .set_reading(Rational::from_integer(60), at)
                .expect("in range");
        });
        sim.schedule(hm(17, 0), |w, at| {
            w.log.push(format!(
                "{} *1 Tom enters the living room",
                at.time_of_day()
            ));
            let tom = PersonId::new("tom");
            w.home
                .hall_presence
                .announce_arrival(&tom, "returns home", at);
            w.home.living_presence.person_entered(&tom, at);
        });
        sim.schedule(hm(17, 30), |w, at| {
            w.log.push(format!(
                "{} room turns hot and stuffy: 27°C / 66%",
                at.time_of_day()
            ));
            w.home
                .thermometer
                .set_reading(Rational::from_integer(27), at)
                .expect("in range");
            w.home
                .hygrometer
                .set_reading(Rational::from_integer(66), at)
                .expect("in range");
        });
        sim.schedule(hm(18, 0), |w, at| {
            w.log.push(format!(
                "{} *2 Alan got home from work; baseball game on air",
                at.time_of_day()
            ));
            let alan = PersonId::new("alan");
            w.home
                .hall_presence
                .announce_arrival(&alan, "got home from work", at);
            w.home.living_presence.person_entered(&alan, at);
            w.home.tv_guide.start_program("baseball game", at);
        });
        sim.schedule(hm(18, 55), |w, at| {
            w.log
                .push(format!("{} heat spike: 30°C / 78%", at.time_of_day()));
            w.home
                .thermometer
                .set_reading(Rational::from_integer(30), at)
                .expect("in range");
            w.home
                .hygrometer
                .set_reading(Rational::from_integer(78), at)
                .expect("in range");
        });
        sim.schedule(hm(19, 0), |w, at| {
            w.log.push(format!(
                "{} *3 Emily got home from shopping; her movie starts",
                at.time_of_day()
            ));
            let emily = PersonId::new("emily");
            w.home
                .hall_presence
                .announce_arrival(&emily, "got home from shopping", at);
            w.home.living_presence.person_entered(&emily, at);
            w.home.tv_guide.start_program("movie", at);
        });

        LivingRoomScenario { sim, rules }
    }

    /// The named rule ids.
    pub fn rules(&self) -> ScenarioRules {
        self.rules
    }

    /// Mutable access to the home server before the run — e.g. to set
    /// the engine's evaluation thread count for determinism soaks.
    pub fn server_mut(&mut self) -> &mut HomeServer {
        &mut self.sim.world_mut().server
    }

    /// Runs the scenario to 20:00 with one-minute engine steps and returns
    /// the world (chart, log, server, devices).
    pub fn run(mut self) -> ScenarioWorld {
        // Fast-forward quietly to just before the scenario window.
        self.sim
            .run_until(hm(16, 45), SimDuration::from_minutes(45), |w, at| {
                w.server.step(at);
            });
        // Then simulate minute by minute, stepping the engine and
        // recording the chart and activity timeline.
        self.sim
            .run_until(hm(20, 0), SimDuration::from_minutes(1), |w, at| {
                let report = w.server.step(at);
                w.activity.record(at, &report);
                w.snapshot(at);
            });
        self.sim.into_world()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_reproduces_figure_1() {
        let scenario = LivingRoomScenario::build();
        let world = scenario.run();
        let chart = &world.chart;

        // Stereo: s1 (jazz) → s′1 (jazz, low volume) → s3 (movie sound).
        assert_eq!(
            chart.label_sequence("Stereo"),
            vec![
                "off",
                "jazz music vol30%",
                "jazz music vol15%",
                "movie sound vol15%"
            ]
        );
        // TV: t2 (baseball) → t3 (movie).
        assert_eq!(
            chart.label_sequence("TV"),
            vec!["off", "baseball game", "movie"]
        );
        // Recorder: r2 kicks in when Emily takes the TV.
        assert_eq!(
            chart.label_sequence("Recorder"),
            vec!["off", "rec baseball game"]
        );
        // Room light: l1 (half) → l3 (bright).
        assert_eq!(
            chart.label_sequence("Room light"),
            vec!["off", "half-lighting", "bright"]
        );
        // Air conditioner: a1 → a2 → a3.
        assert_eq!(
            chart.label_sequence("Air conditioner"),
            vec!["off", "25°C/60%", "24°C/55%", "27°C/65%"]
        );

        // Spot-check transition times (within a minute of the trigger).
        assert_eq!(
            chart.state_at("Stereo", hm(17, 5)),
            Some("jazz music vol30%")
        );
        assert_eq!(chart.state_at("Air conditioner", hm(17, 29)), Some("off"));
        assert_eq!(
            chart.state_at("Air conditioner", hm(17, 35)),
            Some("25°C/60%")
        );
        assert_eq!(
            chart.state_at("Air conditioner", hm(18, 5)),
            Some("24°C/55%")
        );
        // The 18:55 heat spike does NOT hand Emily the aircon while she is
        // still out shopping.
        assert_eq!(
            chart.state_at("Air conditioner", hm(18, 58)),
            Some("24°C/55%")
        );
        assert_eq!(
            chart.state_at("Air conditioner", hm(19, 5)),
            Some("27°C/65%")
        );
        assert_eq!(chart.state_at("TV", hm(18, 30)), Some("baseball game"));
        assert_eq!(chart.state_at("TV", hm(19, 5)), Some("movie"));
        assert_eq!(
            chart.state_at("Recorder", hm(19, 5)),
            Some("rec baseball game")
        );
    }

    #[test]
    fn scenario_log_and_chart_render() {
        let world = LivingRoomScenario::build().run();
        assert_eq!(world.log.len(), 6);
        let transitions = world.chart.render_transitions();
        assert!(transitions.contains("Air conditioner"));
        let bars = world
            .chart
            .render_bars(hm(16, 30), hm(20, 0), SimDuration::from_minutes(5));
        assert!(bars.contains("legend:"));
    }

    #[test]
    fn scenario_records_activity_timeline() {
        let world = LivingRoomScenario::build().run();
        let activity = &world.activity;
        // Most minutes are idle; the five Fig. 1 triggers are not.
        assert!(activity.idle_steps() > 0);
        assert!(!activity.rows().is_empty());
        let dispatched: usize = activity.rows().iter().map(|r| r.dispatched).sum();
        let suppressed: usize = activity.rows().iter().map(|r| r.suppressed).sum();
        let replaced: usize = activity.rows().iter().map(|r| r.replaced).sum();
        // Tom's arrival dispatches cleanly; later arbitration both
        // suppresses (r2's trigger) and replaces holders (s'1, a2, t3 …).
        assert!(dispatched > 0, "no clean dispatches recorded");
        assert!(suppressed > 0, "no suppressions recorded");
        assert!(replaced > 0, "no replacements recorded");
        let chart = activity.render();
        assert!(chart.starts_with("activity:"));
        // 17:00, Tom enters: jazz on the stereo is a clean dispatch.
        assert!(chart.contains("17:00 |"), "chart:\n{chart}");
        assert!(chart.contains("dispatched"), "chart:\n{chart}");
    }
}
