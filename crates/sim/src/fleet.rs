//! Fleet traffic generation: one apartment unit per tenant.
//!
//! Where [`crate::apartment`] scales the Fig. 1 scenario *within* one
//! engine (one server, many units), this module scales it *across*
//! engines: every tenant is an independent durable [`HomeServer`] with
//! its own registry, WAL segment, and the same three unit rules (cool
//! with release, dry contention, heat-warning dwell). It provides the
//! two halves a fleet soak needs:
//!
//! * [`unit_tenant_builder`] — a [`TenantBuilder`] that builds (and,
//!   after quarantine, rebuilds) one unit tenant, seeding users and
//!   rules only on a fresh directory so restarts recover them from the
//!   WAL; optionally with a seeded fault plan on the unit's air
//!   conditioner (actuator faults exercise engine resilience without
//!   tripping the supervisor).
//! * [`FleetTraffic`] — seeded per-tenant sensor walks emitting
//!   [`Ingress`] batches. Each tenant's stream is derived from its own
//!   index-keyed generator, **independent of fleet composition and of
//!   other tenants**, which is what lets a soak assert that tenants far
//!   from an injected fault stay byte-identical to a fault-free run.
//!
//! [`HomeServer`]: cadel_server::HomeServer

use crate::apartment::{humidity_above, temp_above, temp_below};
use cadel_devices::{AirConditioner, EnvironmentSensor, Hygrometer, Light, LightKind, Thermometer};
use cadel_fleet::{Ingress, TenantBuilder, TenantParts, TenantWorld};
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_server::HomeServer;
use cadel_simplex::RelOp;
use cadel_types::{
    DeviceId, PersonId, Quantity, Rational, Rng, RuleId, SensorKey, SimDuration, SimTime, Topology,
    Unit, Value,
};
use cadel_upnp::{ControlPoint, FaultPlan, FaultyDevice, Registry};
use std::sync::Arc;

/// Canonical tenant name for unit `index` (zero-padded so fleet
/// listings and segment directories sort naturally).
pub fn tenant_name(index: usize) -> String {
    format!("unit-{index:04}")
}

/// The tenant-local device world: readings land on the unit's own
/// thermometer and hygrometer; anything else is dropped.
struct UnitWorld {
    thermometer: Arc<EnvironmentSensor>,
    hygrometer: Arc<EnvironmentSensor>,
}

impl TenantWorld for UnitWorld {
    fn deliver(&mut self, ingress: &Ingress) {
        let Value::Number(quantity) = &ingress.value else {
            return;
        };
        match ingress.variable.as_str() {
            "temperature" => {
                let _ = self.thermometer.set_reading(quantity.value(), ingress.at);
            }
            "humidity" => {
                let _ = self.hygrometer.set_reading(quantity.value(), ingress.at);
            }
            _ => {}
        }
    }
}

/// Builds a [`TenantBuilder`] for one apartment-unit tenant: a
/// thermometer, hygrometer, floor lamp and air conditioner, plus the
/// apartment block's three rules (cool-with-release, dry, heat-warning
/// dwell) registered durably so a quarantine restart recovers them from
/// the tenant's WAL.
///
/// With `fault`, the unit's air conditioner is wrapped in a
/// [`FaultyDevice`] following the plan — actuator invocations fail on
/// the plan's schedule and flow into the engine's retry/dead-letter
/// resilience, *not* the fleet supervisor. The plan is re-applied on
/// every rebuild, so a fault-injected tenant stays fault-injected
/// across restarts.
pub fn unit_tenant_builder(fault: Option<FaultPlan>) -> TenantBuilder {
    Arc::new(move |dir| {
        let registry = Registry::new();
        let mut topology = Topology::new("unit");
        topology.add_floor("ground").expect("fresh topology");
        topology
            .add_room("unit-0", "ground")
            .expect("fresh topology");

        let thermometer = Thermometer::new("thermo-0", "Thermometer", "unit-0", 22);
        let hygrometer = Hygrometer::new("hygro-0", "Hygrometer", "unit-0", 50);
        registry.register(thermometer.clone()).expect("unique UDN");
        registry.register(hygrometer.clone()).expect("unique UDN");
        registry
            .register(Light::new("lamp-0", "Lamp", "unit-0", LightKind::FloorLamp))
            .expect("unique UDN");
        registry
            .register(AirConditioner::new("aircon-0", "Air Conditioner", "unit-0"))
            .expect("unique UDN");
        if let Some(plan) = &fault {
            FaultyDevice::wrap(&registry, &DeviceId::new("aircon-0"), plan.clone())
                .expect("aircon-0 registered above");
        }

        let (mut server, report) = HomeServer::open_at(ControlPoint::new(registry), topology, dir)?;
        if report.records_replayed == 0 && !report.snapshot_used {
            server.add_user("Resident")?;
            let resident = PersonId::new("resident");
            let aircon = DeviceId::new("aircon-0");
            let cool = Rule::builder(resident.clone())
                .condition(temp_above(0, 26))
                .action(ActionSpec::new(aircon.clone(), Verb::TurnOn))
                .until(temp_below(0, 24))
                .build(RuleId::new(1))
                .expect("cool rule builds");
            let dry = Rule::builder(resident.clone())
                .condition(humidity_above(0, 70))
                .action(ActionSpec::new(aircon, Verb::TurnOn))
                .build(RuleId::new(2))
                .expect("dry rule builds");
            let warn = Rule::builder(resident)
                .condition(Condition::Atom(Atom::held_for(
                    Atom::Constraint(ConstraintAtom::new(
                        SensorKey::new(DeviceId::new("thermo-0"), "temperature"),
                        RelOp::Gt,
                        Quantity::from_integer(25, Unit::Celsius),
                    )),
                    SimDuration::from_minutes(3),
                )))
                .action(ActionSpec::new(DeviceId::new("lamp-0"), Verb::TurnOn))
                .build(RuleId::new(3))
                .expect("warn rule builds");
            server.register_rule(cool)?;
            server.register_rule(dry)?;
            server.register_rule(warn)?;
        }

        Ok(TenantParts {
            server,
            report,
            world: Box::new(UnitWorld {
                thermometer,
                hygrometer,
            }),
        })
    })
}

/// Seeded per-tenant sensor traffic for a fleet soak.
///
/// Each tenant owns a generator keyed by `(seed, index)`, so tenant
/// `i`'s reading stream is the same whatever the fleet size and
/// whatever happens to other tenants — the property that lets a soak
/// compare per-tenant behaviour between a faulted and a fault-free run.
/// The walk is the apartment block's phased compressed day (warming,
/// drifting, cooling) so every tenant sweeps through the 26 °C trigger
/// and 24 °C release; roughly a third of ticks also emit a transient
/// reading that the fleet inbox coalesces away, exercising admission
/// control.
pub struct FleetTraffic {
    rngs: Vec<Rng>,
    temps: Vec<i64>,
    humids: Vec<i64>,
    tick: u64,
}

impl FleetTraffic {
    /// Traffic for `tenants` tenants derived from `seed`.
    pub fn new(tenants: usize, seed: u64) -> FleetTraffic {
        FleetTraffic {
            rngs: (0..tenants)
                .map(|i| Rng::new(seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .collect(),
            temps: vec![22; tenants],
            humids: vec![50; tenants],
            tick: 0,
        }
    }

    /// Number of tenant streams.
    pub fn tenants(&self) -> usize {
        self.rngs.len()
    }

    /// Advances every tenant's walk one simulated minute and returns
    /// one ingress batch per tenant.
    pub fn tick(&mut self, at: SimTime) -> Vec<Vec<Ingress>> {
        let drift: fn(&mut Rng) -> i64 = match (self.tick / 30) % 3 {
            0 => |rng| rng.range_i64(0, 3),
            1 => |rng| rng.range_i64(-1, 2),
            _ => |rng| rng.range_i64(-2, 1),
        };
        self.tick += 1;
        let mut batches = Vec::with_capacity(self.rngs.len());
        for i in 0..self.rngs.len() {
            let rng = &mut self.rngs[i];
            let mut batch = Vec::with_capacity(3);
            self.temps[i] = (self.temps[i] + drift(rng)).clamp(18, 32);
            if rng.chance(1, 3) {
                let transient = self.temps[i] + rng.range_i64(-2, 3);
                batch.push(reading(
                    "thermo-0",
                    "temperature",
                    transient,
                    Unit::Celsius,
                    at,
                ));
            }
            batch.push(reading(
                "thermo-0",
                "temperature",
                self.temps[i],
                Unit::Celsius,
                at,
            ));
            self.humids[i] = (self.humids[i] + rng.range_i64(-2, 3)).clamp(35, 85);
            batch.push(reading(
                "hygro-0",
                "humidity",
                self.humids[i],
                Unit::Percent,
                at,
            ));
            batches.push(batch);
        }
        batches
    }
}

fn reading(device: &str, variable: &str, value: i64, unit: Unit, at: SimTime) -> Ingress {
    Ingress {
        device: DeviceId::new(device),
        variable: variable.to_owned(),
        value: Value::Number(Quantity::new(Rational::from_integer(value), unit)),
        at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_fleet::{Fleet, FleetConfig};
    use std::path::PathBuf;

    fn mins(m: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_minutes(m)
    }

    fn fleet_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cadel-simfleet-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tenant_streams_are_independent_of_fleet_composition() {
        let mut small = FleetTraffic::new(2, 42);
        let mut large = FleetTraffic::new(8, 42);
        for tick in 0..40u64 {
            let a = small.tick(mins(tick));
            let b = large.tick(mins(tick));
            assert_eq!(a[0], b[0], "tenant 0 diverged at tick {tick}");
            assert_eq!(a[1], b[1], "tenant 1 diverged at tick {tick}");
        }
    }

    #[test]
    fn unit_fleet_generates_load_and_stays_healthy() {
        let root = fleet_root("smoke");
        let mut fleet = Fleet::new(&root, FleetConfig::default());
        let builder = unit_tenant_builder(None);
        for i in 0..4 {
            fleet
                .add_tenant_arc(tenant_name(i), builder.clone())
                .unwrap();
        }
        let mut traffic = FleetTraffic::new(4, 7);
        let mut dispatched = 0usize;
        for tick in 0..60u64 {
            let at = mins(tick);
            for (i, batch) in traffic.tick(at).into_iter().enumerate() {
                for ingress in batch {
                    fleet.offer(&tenant_name(i), ingress).unwrap();
                }
            }
            let wave = fleet.step_ready(at);
            assert_eq!(wave.faults(), 0);
            dispatched += wave
                .outcomes
                .iter()
                .filter_map(|o| o.report.as_ref())
                .map(|r| r.dispatched().len())
                .sum::<usize>();
        }
        assert!(dispatched > 0, "no tenant ever fired a rule");
        assert_eq!(fleet.health().healthy, 4);
        let _ = std::fs::remove_dir_all(&root);
    }
}
