//! Discrete-event simulation for the CADEL framework: a virtual clock and
//! event queue ([`Simulation`]), a Fig.-1-style time-chart recorder
//! ([`TimeChart`]), a per-step engine activity recorder
//! ([`ActivityTimeline`]), the paper's living-room control scenario
//! ([`LivingRoomScenario`]), and a multi-unit load scenario
//! ([`ApartmentBlockScenario`]) for the sharded engine step. For the
//! network frontend there is a seeded wire-level fault injector
//! ([`netchaos`]) that throws torn frames, garbage bytes, slow-loris
//! drips and half-closed sockets at a live listener.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod apartment;
pub mod fleet;
pub mod netchaos;
pub mod scenario;
pub mod schedule;
pub mod timechart;

pub use activity::{ActivityRow, ActivityTimeline};
pub use apartment::{ApartmentBlockScenario, ApartmentWorld};
pub use fleet::{tenant_name, unit_tenant_builder, FleetTraffic};
pub use netchaos::{inject, NetChaos, WireFault};
pub use scenario::{LivingRoomScenario, ScenarioRules, ScenarioWorld};
pub use schedule::Simulation;
pub use timechart::TimeChart;
