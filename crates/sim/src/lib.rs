//! Discrete-event simulation for the CADEL framework: a virtual clock and
//! event queue ([`Simulation`]), a Fig.-1-style time-chart recorder
//! ([`TimeChart`]), a per-step engine activity recorder
//! ([`ActivityTimeline`]), and the paper's living-room control scenario
//! ([`LivingRoomScenario`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod scenario;
pub mod schedule;
pub mod timechart;

pub use activity::{ActivityRow, ActivityTimeline};
pub use scenario::{LivingRoomScenario, ScenarioRules, ScenarioWorld};
pub use schedule::Simulation;
pub use timechart::TimeChart;
