//! Discrete-event simulation: a virtual clock with an ordered event queue
//! and periodic ticks.

use cadel_types::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type Action<W> = Box<dyn FnOnce(&mut W, SimTime)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for Entry<W> {}

impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops
        // first; ties run in scheduling order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulator over a world of type `W`.
///
/// Scheduled actions run in timestamp order (FIFO among equal times). A
/// run interleaves periodic *ticks* — the hook where the driver advances
/// the rule engine — with the scheduled actions, calling the tick hook at
/// every processed instant so the engine sees each change as it happens.
///
/// # Example
///
/// ```
/// use cadel_sim::Simulation;
/// use cadel_types::{SimDuration, SimTime};
///
/// let mut sim = Simulation::new(Vec::<u64>::new());
/// sim.schedule(SimTime::from_millis(500), |world, at| world.push(at.as_millis()));
/// sim.schedule(SimTime::from_millis(100), |world, at| world.push(at.as_millis()));
/// sim.run_until(SimTime::from_millis(1000), SimDuration::from_millis(250), |_, _| {});
/// assert_eq!(sim.world(), &vec![100, 500]);
/// ```
pub struct Simulation<W> {
    world: W,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry<W>>,
}

impl<W> Simulation<W> {
    /// Creates a simulation at `SimTime::EPOCH`.
    pub fn new(world: W) -> Simulation<W> {
        Simulation {
            world,
            now: SimTime::EPOCH,
            seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulated world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable world access.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Number of pending scheduled actions.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an action at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics when `at` lies in the simulated past.
    pub fn schedule(&mut self, at: SimTime, action: impl FnOnce(&mut W, SimTime) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedules an action after a delay from now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, SimTime) + 'static,
    ) {
        self.schedule(self.now + delay, action);
    }

    /// Runs until `end` (inclusive), interleaving scheduled actions with
    /// periodic ticks every `tick`. `on_tick` is invoked after the
    /// action(s) at each processed instant and at every periodic tick —
    /// it is where the driver steps the rule engine.
    ///
    /// Returns the number of scheduled actions executed.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    pub fn run_until(
        &mut self,
        end: SimTime,
        tick: SimDuration,
        mut on_tick: impl FnMut(&mut W, SimTime),
    ) -> usize {
        assert!(!tick.is_zero(), "tick interval must be positive");
        let mut executed = 0;
        let mut next_tick = self.now + tick;
        loop {
            let next_event_at = self.queue.peek().map(|e| e.at);
            // The next instant to process.
            let target = match next_event_at {
                Some(at) if at <= next_tick => at,
                _ => next_tick,
            };
            if target > end {
                break;
            }
            self.now = target;
            // Run every action scheduled at this instant.
            let mut ran_action = false;
            while self.queue.peek().map(|e| e.at == target).unwrap_or(false) {
                let entry = self.queue.pop().expect("peeked entry exists");
                (entry.action)(&mut self.world, target);
                executed += 1;
                ran_action = true;
            }
            // Tick the world at this instant (after actions applied).
            on_tick(&mut self.world, target);
            if target == next_tick {
                next_tick += tick;
            } else if ran_action && target > next_tick {
                // Unreachable by construction, but keep ticks monotonic.
                next_tick = target + tick;
            }
        }
        self.now = end;
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order_fifo_on_ties() {
        let mut sim = Simulation::new(Vec::<(u64, &str)>::new());
        sim.schedule(SimTime::from_millis(200), |w, t| {
            w.push((t.as_millis(), "b"))
        });
        sim.schedule(SimTime::from_millis(100), |w, t| {
            w.push((t.as_millis(), "a"))
        });
        sim.schedule(SimTime::from_millis(200), |w, t| {
            w.push((t.as_millis(), "c"))
        });
        let executed = sim.run_until(
            SimTime::from_millis(500),
            SimDuration::from_millis(1000),
            |_, _| {},
        );
        assert_eq!(executed, 3);
        assert_eq!(sim.world(), &vec![(100, "a"), (200, "b"), (200, "c")]);
    }

    #[test]
    fn ticks_interleave_with_events() {
        struct World {
            log: Vec<(u64, &'static str)>,
        }
        let mut sim = Simulation::new(World { log: Vec::new() });
        sim.schedule(SimTime::from_millis(150), |w, t| {
            w.log.push((t.as_millis(), "event"))
        });
        sim.run_until(
            SimTime::from_millis(400),
            SimDuration::from_millis(100),
            |w, t| w.log.push((t.as_millis(), "tick")),
        );
        assert_eq!(
            sim.world().log,
            vec![
                (100, "tick"),
                (150, "event"),
                (150, "tick"), // tick hook also fires at event instants
                (200, "tick"),
                (300, "tick"),
                (400, "tick"),
            ]
        );
    }

    #[test]
    fn events_beyond_end_stay_queued() {
        let mut sim = Simulation::new(0u32);
        sim.schedule(SimTime::from_millis(1000), |w, _| *w += 1);
        sim.run_until(
            SimTime::from_millis(500),
            SimDuration::from_millis(100),
            |_, _| {},
        );
        assert_eq!(*sim.world(), 0);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_millis(500));
        // A later run picks it up.
        sim.run_until(
            SimTime::from_millis(1500),
            SimDuration::from_millis(100),
            |_, _| {},
        );
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.run_until(
            SimTime::from_millis(100),
            SimDuration::from_millis(50),
            |_, _| {},
        );
        sim.schedule_in(SimDuration::from_millis(25), |w, t| w.push(t.as_millis()));
        sim.run_until(
            SimTime::from_millis(200),
            SimDuration::from_millis(50),
            |_, _| {},
        );
        assert_eq!(sim.world(), &vec![125]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulation::new(());
        sim.run_until(
            SimTime::from_millis(100),
            SimDuration::from_millis(10),
            |_, _| {},
        );
        sim.schedule(SimTime::from_millis(50), |_, _| {});
    }

    #[test]
    fn actions_can_schedule_followups_indirectly() {
        // Follow-ups are scheduled between runs (the world records intent).
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule(SimTime::from_millis(10), |w, t| w.push(t.as_millis()));
        sim.run_until(
            SimTime::from_millis(20),
            SimDuration::from_millis(5),
            |_, _| {},
        );
        let last = *sim.world().last().unwrap();
        sim.schedule(SimTime::from_millis(last + 30), |w, t| {
            w.push(t.as_millis())
        });
        sim.run_until(
            SimTime::from_millis(100),
            SimDuration::from_millis(5),
            |_, _| {},
        );
        assert_eq!(sim.world(), &vec![10, 40]);
    }
}
