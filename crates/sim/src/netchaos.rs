//! Wire-level fault injection: hostile and unlucky TCP clients.
//!
//! The frontend's robustness claims ("no panic on hostile input", "a
//! stalled client cannot hold a worker", "faulty connections never
//! corrupt tenant state") are only claims until something actually
//! sends torn frames, garbage bytes, and half-closed sockets at a live
//! listener. This module is that something. It is deliberately
//! API-agnostic — it takes raw request bytes and a socket address, so
//! it can torment any line-oriented TCP server — and fully seeded, so a
//! chaos soak replays byte-for-byte.
//!
//! Faults model the classic network failure menagerie:
//!
//! | fault | models |
//! |---|---|
//! | [`WireFault::Torn`] | a frame cut mid-head by a dying peer/NAT |
//! | [`WireFault::Garbage`] | a non-HTTP client or fuzzing scanner |
//! | [`WireFault::DisconnectMidBody`] | a client crash after the head |
//! | [`WireFault::StalledWriter`] | a slow-loris drip feed |
//! | [`WireFault::StalledReader`] | a client that requests, then never reads |

use cadel_types::Rng;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One wire-level fault to inflict on a fresh connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireFault {
    /// Send only the first `keep` bytes of the request, then close.
    Torn {
        /// Bytes actually sent before the cut.
        keep: usize,
    },
    /// Send `len` seeded garbage bytes (never a valid request line),
    /// then close.
    Garbage {
        /// Garbage length in bytes.
        len: usize,
    },
    /// Send the head and roughly half the declared body, then close.
    DisconnectMidBody,
    /// Drip the request `chunk` bytes at a time with `pause` between
    /// chunks — the slow-loris shape. The server's idle budget should
    /// cut this off; the injector stops on the first write error.
    StalledWriter {
        /// Bytes per drip.
        chunk: usize,
        /// Pause between drips.
        pause: Duration,
    },
    /// Send the whole request, then hold the socket open without
    /// reading the response for `hold` before closing.
    StalledReader {
        /// How long to sit on the unread response.
        hold: Duration,
    },
}

/// A seeded generator of wire faults.
#[derive(Debug)]
pub struct NetChaos {
    rng: Rng,
}

impl NetChaos {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> NetChaos {
        NetChaos {
            rng: Rng::new(seed ^ 0x6e65_7463_6861_6f73), // "netchaos"
        }
    }

    /// Picks the next fault, sized against a request of `request_len`
    /// bytes. Pauses stay short (≤50ms) so chaos soaks remain fast;
    /// scale them up via [`WireFault`] directly when provoking timeout
    /// paths.
    pub fn pick(&mut self, request_len: usize) -> WireFault {
        match self.rng.below(5) {
            0 => WireFault::Torn {
                keep: self.rng.below(request_len.max(2) as u64) as usize,
            },
            1 => WireFault::Garbage {
                len: 1 + self.rng.below(512) as usize,
            },
            2 => WireFault::DisconnectMidBody,
            3 => WireFault::StalledWriter {
                chunk: 1 + self.rng.below(7) as usize,
                pause: Duration::from_millis(1 + self.rng.below(5)),
            },
            _ => WireFault::StalledReader {
                hold: Duration::from_millis(self.rng.below(50)),
            },
        }
    }

    /// Seeded garbage bytes that can never start a valid request line
    /// (first byte is forced outside the ASCII uppercase range).
    pub fn garbage(&mut self, len: usize) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(len);
        for i in 0..len {
            let b = (self.rng.next_u64() & 0xff) as u8;
            if i == 0 {
                bytes.push(b | 0x80);
            } else {
                bytes.push(b);
            }
        }
        bytes
    }
}

/// Opens a connection to `addr` and inflicts `fault` using `request`
/// as the raw bytes a healthy client would have sent.
///
/// Returns `Ok` whether or not the server cut us off — a refused write
/// *is* the server behaving correctly. Only connect errors surface,
/// so a soak can distinguish "server died" from "server defended".
///
/// # Errors
///
/// Returns the error when the initial connect fails.
pub fn inject(
    chaos: &mut NetChaos,
    addr: SocketAddr,
    request: &[u8],
    fault: &WireFault,
) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    match fault {
        WireFault::Torn { keep } => {
            let keep = (*keep).min(request.len().saturating_sub(1));
            let _ = stream.write_all(&request[..keep]);
        }
        WireFault::Garbage { len } => {
            let garbage = chaos.garbage(*len);
            let _ = stream.write_all(&garbage);
            // Some servers answer with a typed error; drain it so the
            // close is clean rather than a reset.
            let mut sink = [0u8; 256];
            let _ = stream.read(&mut sink);
        }
        WireFault::DisconnectMidBody => {
            let cut = match find_blank_line(request) {
                // Head plus half the body.
                Some(head_end) => head_end + 4 + (request.len() - head_end - 4) / 2,
                None => request.len() / 2,
            };
            let cut = cut.min(request.len().saturating_sub(1));
            let _ = stream.write_all(&request[..cut]);
        }
        WireFault::StalledWriter { chunk, pause } => {
            let chunk = (*chunk).max(1);
            for piece in request.chunks(chunk) {
                if stream.write_all(piece).is_err() {
                    break; // server cut the drip: the defence worked
                }
                std::thread::sleep(*pause);
            }
        }
        WireFault::StalledReader { hold } => {
            let _ = stream.write_all(request);
            std::thread::sleep(*hold);
        }
    }
    Ok(())
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_are_seeded_and_replayable() {
        let mut a = NetChaos::new(7);
        let mut b = NetChaos::new(7);
        for _ in 0..32 {
            assert_eq!(a.pick(100), b.pick(100));
        }
        let mut c = NetChaos::new(8);
        let differs = (0..32).any(|_| NetChaos::new(7).pick(100) != c.pick(100));
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn garbage_never_starts_like_a_request_line() {
        let mut chaos = NetChaos::new(11);
        for _ in 0..64 {
            let g = chaos.garbage(16);
            assert_eq!(g.len(), 16);
            assert!(g[0] & 0x80 != 0, "first byte must be non-ASCII");
        }
    }
}
