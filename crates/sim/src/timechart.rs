//! The time-chart recorder: reproduces Fig. 1's control-scenario chart as
//! data plus an ASCII rendering.

use cadel_types::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Records labelled state segments per track (one track per device) and
/// renders them as a timeline chart.
///
/// # Example
///
/// ```
/// use cadel_sim::TimeChart;
/// use cadel_types::{SimDuration, SimTime};
///
/// let mut chart = TimeChart::new();
/// let five_pm = SimTime::EPOCH + SimDuration::from_hours(17);
/// chart.record("Stereo", five_pm, "jazz");
/// assert_eq!(chart.state_at("Stereo", five_pm + SimDuration::from_hours(1)), Some("jazz"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TimeChart {
    tracks: BTreeMap<String, Vec<(SimTime, String)>>,
    order: Vec<String>,
}

impl TimeChart {
    /// Creates an empty chart.
    pub fn new() -> TimeChart {
        TimeChart::default()
    }

    /// Declares a track up front (fixes the display order).
    pub fn add_track(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.tracks.contains_key(&name) {
            self.order.push(name.clone());
            self.tracks.insert(name, Vec::new());
        }
    }

    /// Records that `track` entered state `label` at `at`. Consecutive
    /// identical labels collapse into one segment.
    pub fn record(&mut self, track: &str, at: SimTime, label: impl Into<String>) {
        if !self.tracks.contains_key(track) {
            self.add_track(track);
        }
        let segments = self.tracks.get_mut(track).expect("track added above");
        let label = label.into();
        if segments.last().map(|(_, l)| l == &label).unwrap_or(false) {
            return;
        }
        segments.push((at, label));
    }

    /// The tracks in display order.
    pub fn track_names(&self) -> &[String] {
        &self.order
    }

    /// The `(start, label)` transition list of a track.
    pub fn segments(&self, track: &str) -> &[(SimTime, String)] {
        self.tracks.get(track).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The state of a track at an instant (the last transition at or
    /// before `t`).
    pub fn state_at(&self, track: &str, t: SimTime) -> Option<&str> {
        self.segments(track)
            .iter()
            .rev()
            .find(|(at, _)| *at <= t)
            .map(|(_, label)| label.as_str())
    }

    /// The sequence of distinct labels a track went through (the shape
    /// compared against Fig. 1).
    pub fn label_sequence(&self, track: &str) -> Vec<&str> {
        self.segments(track)
            .iter()
            .map(|(_, l)| l.as_str())
            .collect()
    }

    /// Renders a transition list, one track per line:
    /// `Stereo: 17:00 jazz | 18:00 quiet | 19:00 movie`.
    pub fn render_transitions(&self) -> String {
        let width = self.order.iter().map(|n| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for name in &self.order {
            let _ = write!(out, "{name:<width$} :");
            for (at, label) in self.segments(name) {
                let _ = write!(out, " {} {label} |", at.time_of_day());
            }
            out.pop();
            out.push('\n');
        }
        out
    }

    /// Renders a sampled bar chart between `start` and `end` with one
    /// column per `step`, using one letter per distinct label plus a
    /// legend — the ASCII form of Fig. 1's time chart.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `end <= start`.
    pub fn render_bars(&self, start: SimTime, end: SimTime, step: SimDuration) -> String {
        assert!(!step.is_zero() && end > start, "invalid chart range");
        let columns = ((end.as_millis() - start.as_millis()) / step.as_millis()) as usize;
        let width = self.order.iter().map(|n| n.len()).max().unwrap_or(0);

        // Assign letters per track label in order of first appearance.
        let mut out = String::new();
        let mut legend: Vec<(char, String, String)> = Vec::new(); // (letter, track, label)
        let mut next_letter = b'a';
        for name in &self.order {
            let mut letters: BTreeMap<&str, char> = BTreeMap::new();
            let _ = write!(out, "{name:<width$} |");
            for col in 0..columns {
                let t = SimTime::from_millis(start.as_millis() + col as u64 * step.as_millis());
                match self.state_at(name, t) {
                    None => out.push(' '),
                    Some(label) if label == "off" || label.is_empty() => out.push('.'),
                    Some(label) => {
                        let letter = *letters.entry(label).or_insert_with(|| {
                            let c = next_letter as char;
                            next_letter = if next_letter == b'z' {
                                b'A'
                            } else {
                                next_letter + 1
                            };
                            legend.push((c, name.clone(), label.to_owned()));
                            c
                        });
                        out.push(letter);
                    }
                }
            }
            out.push('\n');
        }
        // Time axis.
        let _ = write!(out, "{:<width$} +", "");
        for col in 0..columns {
            let t = SimTime::from_millis(start.as_millis() + col as u64 * step.as_millis());
            let tod = t.time_of_day();
            if tod.minute() == 0 && (t.as_millis() - start.as_millis()).is_multiple_of(3_600_000) {
                out.push('|');
            } else {
                out.push('-');
            }
        }
        out.push('\n');
        if !legend.is_empty() {
            out.push_str("legend:\n");
            for (letter, track, label) in legend {
                let _ = writeln!(out, "  {letter} = {track}: {label}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hm(h: u64, m: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_hours(h) + SimDuration::from_minutes(m)
    }

    #[test]
    fn records_and_collapses_duplicates() {
        let mut chart = TimeChart::new();
        chart.record("Stereo", hm(17, 0), "jazz");
        chart.record("Stereo", hm(17, 1), "jazz"); // duplicate collapses
        chart.record("Stereo", hm(18, 0), "quiet");
        assert_eq!(chart.label_sequence("Stereo"), vec!["jazz", "quiet"]);
    }

    #[test]
    fn state_at_finds_enclosing_segment() {
        let mut chart = TimeChart::new();
        chart.record("TV", hm(18, 0), "baseball");
        chart.record("TV", hm(19, 0), "movie");
        assert_eq!(chart.state_at("TV", hm(17, 0)), None);
        assert_eq!(chart.state_at("TV", hm(18, 0)), Some("baseball"));
        assert_eq!(chart.state_at("TV", hm(18, 59)), Some("baseball"));
        assert_eq!(chart.state_at("TV", hm(19, 0)), Some("movie"));
        assert_eq!(chart.state_at("TV", hm(23, 0)), Some("movie"));
        assert_eq!(chart.state_at("Recorder", hm(23, 0)), None);
    }

    #[test]
    fn track_order_is_declaration_order() {
        let mut chart = TimeChart::new();
        chart.add_track("Stereo");
        chart.add_track("TV");
        chart.record("Aircon", hm(17, 0), "on");
        assert_eq!(chart.track_names(), &["Stereo", "TV", "Aircon"]);
    }

    #[test]
    fn transitions_render() {
        let mut chart = TimeChart::new();
        chart.record("Stereo", hm(17, 0), "jazz");
        chart.record("Stereo", hm(19, 0), "movie");
        let text = chart.render_transitions();
        assert!(text.contains("17:00 jazz"));
        assert!(text.contains("19:00 movie"));
    }

    #[test]
    fn bars_render_with_legend() {
        let mut chart = TimeChart::new();
        chart.record("Stereo", hm(17, 0), "jazz");
        chart.record("Stereo", hm(18, 0), "off");
        let text = chart.render_bars(hm(16, 0), hm(19, 0), SimDuration::from_minutes(30));
        // Column at 16:00–16:30: blank (no state yet); 17:00+: letter.
        assert!(text.contains("Stereo |"));
        assert!(text.contains("a = Stereo: jazz"));
        // "off" renders as dots.
        assert!(text.contains('.'));
    }

    #[test]
    #[should_panic(expected = "invalid chart range")]
    fn bars_reject_zero_step() {
        let chart = TimeChart::new();
        let _ = chart.render_bars(hm(1, 0), hm(2, 0), SimDuration::ZERO);
    }
}
