//! A multi-unit "apartment block" load scenario for the sharded engine.
//!
//! Where the Fig. 1 living room reproduces the paper's timeline with a
//! handful of rules, this scenario scales it out: `units` apartments,
//! each with its own thermometer, hygrometer, floor lamp and air
//! conditioner, and three rules per unit —
//!
//! * *cool*: temperature above 26 °C turns the unit's air conditioner on
//!   `until` it has cooled below 24 °C (release traffic);
//! * *dry*: humidity above 70 % wants the same air conditioner
//!   (same-device contention, so arbitration runs every flip);
//! * *heat-warning*: temperature held above 25 °C for three minutes
//!   lights the unit's lamp (`held for` dwell tracking).
//!
//! Every simulated minute each sensor takes a seeded random-walk step
//! and publishes through the real UPnP event bus — sometimes twice, so
//! batches carry the redundant same-sensor readings the engine's ingest
//! coalescer exists for. The whole workload is deterministic in the
//! seed, which is what makes it useful: the parallel-evaluation soak
//! runs the same seed at different `eval_threads` and demands identical
//! activity timelines and server snapshots.

use crate::activity::ActivityTimeline;
use crate::schedule::Simulation;
use cadel_devices::{AirConditioner, EnvironmentSensor, Hygrometer, Light, LightKind, Thermometer};
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_server::HomeServer;
use cadel_simplex::RelOp;
use cadel_types::{
    DeviceId, PersonId, Quantity, Rational, Rng, RuleId, SensorKey, SimDuration, SimTime, Topology,
    Unit,
};
use cadel_upnp::{ControlPoint, Registry};
use std::sync::Arc;

/// The world simulated by the apartment block.
pub struct ApartmentWorld {
    /// The home server running every unit's rules.
    pub server: HomeServer,
    /// Per-step engine activity (firings, suppressions, releases).
    pub activity: ActivityTimeline,
    thermometers: Vec<Arc<EnvironmentSensor>>,
    hygrometers: Vec<Arc<EnvironmentSensor>>,
    temps: Vec<i64>,
    humids: Vec<i64>,
    rng: Rng,
    tick: u64,
}

impl ApartmentWorld {
    /// One seeded random-walk tick: every sensor drifts and publishes;
    /// roughly a third publish twice in the same batch (the second
    /// reading supersedes the first — coalescing fodder).
    ///
    /// The walk is phased like a compressed day — half an hour warming,
    /// half an hour drifting, half an hour cooling — so every unit
    /// reliably sweeps through the 26 °C trigger and back through the
    /// 24 °C release however the per-minute jitter lands.
    fn drift_and_publish(&mut self, at: SimTime) {
        let drift: fn(&mut Rng) -> i64 = match (self.tick / 30) % 3 {
            0 => |rng| rng.range_i64(0, 3),
            1 => |rng| rng.range_i64(-1, 2),
            _ => |rng| rng.range_i64(-2, 1),
        };
        self.tick += 1;
        for u in 0..self.thermometers.len() {
            self.temps[u] = (self.temps[u] + drift(&mut self.rng)).clamp(18, 32);
            if self.rng.chance(1, 3) {
                let transient = self.temps[u] + self.rng.range_i64(-2, 3);
                let _ = self.thermometers[u].set_reading(Rational::from_integer(transient), at);
            }
            let _ = self.thermometers[u].set_reading(Rational::from_integer(self.temps[u]), at);

            self.humids[u] = (self.humids[u] + self.rng.range_i64(-2, 3)).clamp(35, 85);
            let _ = self.hygrometers[u].set_reading(Rational::from_integer(self.humids[u]), at);
        }
    }
}

/// The built scenario, ready to run.
pub struct ApartmentBlockScenario {
    sim: Simulation<ApartmentWorld>,
}

fn unit_place(u: usize) -> String {
    format!("unit-{u}")
}

pub(crate) fn temp_above(u: usize, degrees: i64) -> Condition {
    Condition::Atom(Atom::Constraint(ConstraintAtom::new(
        SensorKey::new(DeviceId::new(format!("thermo-{u}")), "temperature"),
        RelOp::Gt,
        Quantity::from_integer(degrees, Unit::Celsius),
    )))
}

pub(crate) fn temp_below(u: usize, degrees: i64) -> Condition {
    Condition::Atom(Atom::Constraint(ConstraintAtom::new(
        SensorKey::new(DeviceId::new(format!("thermo-{u}")), "temperature"),
        RelOp::Lt,
        Quantity::from_integer(degrees, Unit::Celsius),
    )))
}

pub(crate) fn humidity_above(u: usize, percent: i64) -> Condition {
    Condition::Atom(Atom::Constraint(ConstraintAtom::new(
        SensorKey::new(DeviceId::new(format!("hygro-{u}")), "humidity"),
        RelOp::Gt,
        Quantity::from_integer(percent, Unit::Percent),
    )))
}

impl ApartmentBlockScenario {
    /// Builds a block of `units` apartments with seeded sensor walks.
    ///
    /// # Panics
    ///
    /// Panics on duplicate device registrations or unbuildable rules —
    /// both impossible for the generated names and conditions.
    pub fn build(units: usize, seed: u64) -> ApartmentBlockScenario {
        let registry = Registry::new();
        let mut topology = Topology::new("block");
        topology.add_floor("ground").expect("fresh topology");

        let mut thermometers = Vec::with_capacity(units);
        let mut hygrometers = Vec::with_capacity(units);
        for u in 0..units {
            let place = unit_place(u);
            topology.add_room(&place, "ground").expect("fresh topology");
            let thermo = Thermometer::new(&format!("thermo-{u}"), "Thermometer", &place, 22);
            let hygro = Hygrometer::new(&format!("hygro-{u}"), "Hygrometer", &place, 50);
            registry.register(thermo.clone()).expect("unique UDN");
            registry.register(hygro.clone()).expect("unique UDN");
            registry
                .register(Light::new(
                    &format!("lamp-{u}"),
                    "Lamp",
                    &place,
                    LightKind::FloorLamp,
                ))
                .expect("unique UDN");
            registry
                .register(AirConditioner::new(
                    &format!("aircon-{u}"),
                    "Air Conditioner",
                    &place,
                ))
                .expect("unique UDN");
            thermometers.push(thermo);
            hygrometers.push(hygro);
        }

        let mut server = HomeServer::new(ControlPoint::new(registry), topology);
        let engine = server.engine_mut();
        for u in 0..units {
            let resident = PersonId::new(format!("resident-{u}"));
            let aircon = DeviceId::new(format!("aircon-{u}"));
            let base = 1 + 3 * u as u64;
            let cool = Rule::builder(resident.clone())
                .condition(temp_above(u, 26))
                .action(ActionSpec::new(aircon.clone(), Verb::TurnOn))
                .until(temp_below(u, 24))
                .build(RuleId::new(base))
                .expect("cool rule builds");
            let dry = Rule::builder(resident.clone())
                .condition(humidity_above(u, 70))
                .action(ActionSpec::new(aircon, Verb::TurnOn))
                .build(RuleId::new(base + 1))
                .expect("dry rule builds");
            let warn = Rule::builder(resident)
                .condition(Condition::Atom(Atom::held_for(
                    Atom::Constraint(ConstraintAtom::new(
                        SensorKey::new(DeviceId::new(format!("thermo-{u}")), "temperature"),
                        RelOp::Gt,
                        Quantity::from_integer(25, Unit::Celsius),
                    )),
                    SimDuration::from_minutes(3),
                )))
                .action(ActionSpec::new(
                    DeviceId::new(format!("lamp-{u}")),
                    Verb::TurnOn,
                ))
                .build(RuleId::new(base + 2))
                .expect("warn rule builds");
            engine.add_rule(cool).expect("fresh id");
            engine.add_rule(dry).expect("fresh id");
            engine.add_rule(warn).expect("fresh id");
        }

        let world = ApartmentWorld {
            server,
            activity: ActivityTimeline::new(),
            thermometers,
            hygrometers,
            temps: vec![22; units],
            humids: vec![50; units],
            rng: Rng::new(seed),
            tick: 0,
        };
        ApartmentBlockScenario {
            sim: Simulation::new(world),
        }
    }

    /// Mutable access to the home server before the run — e.g. to set
    /// the engine's evaluation thread count.
    pub fn server_mut(&mut self) -> &mut HomeServer {
        &mut self.sim.world_mut().server
    }

    /// Runs `minutes` one-minute ticks (sensor walk, engine step,
    /// activity recording) and returns the world.
    pub fn run(mut self, minutes: u64) -> ApartmentWorld {
        let deadline = SimTime::EPOCH + SimDuration::from_minutes(minutes);
        self.sim
            .run_until(deadline, SimDuration::from_minutes(1), |w, at| {
                w.drift_and_publish(at);
                let report = w.server.step(at);
                w.activity.record(at, &report);
            });
        self.sim.into_world()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apartment_block_generates_load() {
        let world = ApartmentBlockScenario::build(6, 11).run(90);
        let dispatched: usize = world.activity.rows().iter().map(|r| r.dispatched).sum();
        assert!(dispatched > 0, "no unit ever fired a rule");
        let releases: usize = world.activity.rows().iter().map(|r| r.releases).sum();
        assert!(releases > 0, "no until-release ever triggered");
    }

    #[test]
    fn apartment_block_is_deterministic_in_the_seed() {
        let a = ApartmentBlockScenario::build(4, 7).run(60);
        let b = ApartmentBlockScenario::build(4, 7).run(60);
        assert_eq!(a.activity.render(), b.activity.render());
        assert_eq!(
            a.server.snapshot_json().to_compact(),
            b.server.snapshot_json().to_compact()
        );
    }
}
