//! Per-step activity recording for scenario runs.
//!
//! A [`TimeChart`](crate::TimeChart) shows *device state over time*
//! (Fig. 1's view); an [`ActivityTimeline`] shows *what the engine did*
//! at each step — which rules fired, which were suppressed or replaced
//! the current holder, which dispatches failed, and which `until`
//! conditions released their device. Rows lean on the `Display`
//! implementations of [`StepReport`] and its firings, so the same text
//! the observability layer logs is what the chart renders.

use cadel_engine::{FiringOutcome, StepReport};
use cadel_types::SimTime;
use std::fmt;
use std::fmt::Write as _;

/// One non-idle engine step.
#[derive(Clone, Debug, PartialEq)]
pub struct ActivityRow {
    /// When the step ran.
    pub at: SimTime,
    /// Firings sent to their device cleanly.
    pub dispatched: usize,
    /// Firings dropped because a higher-priority rule held the device.
    pub suppressed: usize,
    /// Firings that displaced the previous holder of the device.
    pub replaced: usize,
    /// Firings deferred because the device's circuit breaker is open.
    pub deferred: usize,
    /// Firings whose dispatch failed at the device.
    pub failed: usize,
    /// Rules whose `until` condition released a device this step.
    pub releases: usize,
    /// The step rendered through [`StepReport`]'s `Display`.
    pub summary: String,
}

impl ActivityRow {
    /// Total firings attempted this step.
    pub fn firings(&self) -> usize {
        self.dispatched + self.suppressed + self.replaced + self.deferred + self.failed
    }
}

/// Records [`StepReport`]s over a simulation run: one row per non-idle
/// step, idle steps tallied in aggregate.
#[derive(Clone, Debug, Default)]
pub struct ActivityTimeline {
    rows: Vec<ActivityRow>,
    idle_steps: u64,
}

impl ActivityTimeline {
    /// An empty timeline.
    pub fn new() -> ActivityTimeline {
        ActivityTimeline::default()
    }

    /// Records one step report. Idle steps (nothing fired, nothing
    /// released) are counted but produce no row.
    pub fn record(&mut self, at: SimTime, report: &StepReport) {
        if report.is_empty() {
            self.idle_steps += 1;
            return;
        }
        let mut row = ActivityRow {
            at,
            dispatched: 0,
            suppressed: 0,
            replaced: 0,
            deferred: 0,
            failed: 0,
            releases: report.releases.len(),
            summary: report.to_string(),
        };
        for firing in &report.firings {
            match firing.outcome {
                FiringOutcome::Dispatched => row.dispatched += 1,
                FiringOutcome::SuppressedBy(_) => row.suppressed += 1,
                FiringOutcome::Replaced(_) => row.replaced += 1,
                FiringOutcome::Deferred => row.deferred += 1,
                FiringOutcome::Failed(_) => row.failed += 1,
            }
        }
        self.rows.push(row);
    }

    /// The recorded non-idle rows, in step order.
    pub fn rows(&self) -> &[ActivityRow] {
        &self.rows
    }

    /// How many recorded steps were idle.
    pub fn idle_steps(&self) -> u64 {
        self.idle_steps
    }

    /// Total steps recorded, idle included.
    pub fn total_steps(&self) -> u64 {
        self.idle_steps + self.rows.len() as u64
    }

    /// Renders the timeline as a text chart: a header with the
    /// idle/active tally, then one line per active step with its
    /// outcome counts and the rendered firings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "activity: {} steps, {} active, {} idle",
            self.total_steps(),
            self.rows.len(),
            self.idle_steps
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{} | d{} s{} r{} def{} f{} rel{} | {}",
                row.at.time_of_day(),
                row.dispatched,
                row.suppressed,
                row.replaced,
                row.deferred,
                row.failed,
                row.releases,
                row.summary
            );
        }
        out
    }
}

impl fmt::Display for ActivityTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_engine::{Firing, FiringOutcome};
    use cadel_types::{DeviceId, RuleId};

    fn firing(rule: u64, device: &str, outcome: FiringOutcome) -> Firing {
        Firing {
            rule: RuleId::new(rule),
            device: DeviceId::new(device),
            outcome,
        }
    }

    #[test]
    fn idle_steps_are_tallied_without_rows() {
        let mut timeline = ActivityTimeline::new();
        timeline.record(SimTime::EPOCH, &StepReport::default());
        timeline.record(SimTime::from_millis(60_000), &StepReport::default());
        assert_eq!(timeline.idle_steps(), 2);
        assert_eq!(timeline.total_steps(), 2);
        assert!(timeline.rows().is_empty());
        assert!(timeline.render().starts_with("activity: 2 steps, 0 active"));
    }

    #[test]
    fn outcomes_are_counted_and_rendered() {
        let mut timeline = ActivityTimeline::new();
        let report = StepReport {
            firings: vec![
                firing(1, "stereo-lr", FiringOutcome::Dispatched),
                firing(2, "stereo-lr", FiringOutcome::SuppressedBy(RuleId::new(1))),
                firing(3, "tv-lr", FiringOutcome::Replaced(RuleId::new(4))),
                firing(6, "tv-lr", FiringOutcome::Deferred),
            ],
            releases: vec![(RuleId::new(5), DeviceId::new("light-hall"))],
        };
        timeline.record(
            SimTime::EPOCH + cadel_types::SimDuration::from_hours(17),
            &report,
        );
        assert_eq!(timeline.rows().len(), 1);
        let row = &timeline.rows()[0];
        assert_eq!(
            (row.dispatched, row.suppressed, row.replaced, row.failed),
            (1, 1, 1, 0)
        );
        assert_eq!(row.deferred, 1);
        assert_eq!(row.releases, 1);
        assert_eq!(row.firings(), 4);
        assert!(row
            .summary
            .contains("rule#2 -> stereo-lr: suppressed by rule#1"));
        assert!(row.summary.contains("rule#6 -> tv-lr: deferred"));
        let chart = timeline.render();
        assert!(chart.contains("17:00 | d1 s1 r1 def1 f0 rel1 |"));
        assert!(chart.contains("rule#5 released light-hall"));
    }
}
