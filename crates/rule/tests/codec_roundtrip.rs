//! Seeded property-style round-trip test for the rule codec.
//!
//! Generates ~200 random rules spanning every atom kind, unit-carrying
//! thresholds (integer and fractional rationals), `until` clauses,
//! duration qualifiers, custom verbs, and every stable `Value` kind,
//! then asserts `rules_from_json(rules_to_json(r)) == r` field by field.
//! The generator is driven by the deterministic SplitMix64 [`Rng`], so a
//! failure reproduces exactly from the seed below.

use cadel_rule::codec::{rules_from_json, rules_to_json};
use cadel_rule::{
    ActionSpec, Atom, Condition, ConstraintAtom, EventAtom, PresenceAtom, Rule, StateAtom, Subject,
    Verb,
};
use cadel_simplex::RelOp;
use cadel_types::{
    Date, DeviceId, PersonId, PlaceId, Quantity, Rational, Rng, RuleId, SensorKey, SimDuration,
    TimeOfDay, TimeWindow, Unit, Value, Weekday,
};

const SEED: u64 = 0xC0DE_C0DE;
const RULES: usize = 200;

const OPS: [RelOp; 5] = [RelOp::Le, RelOp::Lt, RelOp::Ge, RelOp::Gt, RelOp::Eq];
const UNITS: [Unit; 8] = [
    Unit::Celsius,
    Unit::Fahrenheit,
    Unit::Percent,
    Unit::Lux,
    Unit::Decibel,
    Unit::Seconds,
    Unit::Count,
    Unit::Unitless,
];
const DEVICES: [&str; 6] = ["aircon", "tv", "stereo", "lamp", "thermo", "door"];
const VARIABLES: [&str; 4] = ["temperature", "power", "volume", "locked"];
const PLACES: [&str; 4] = ["living room", "hall", "kitchen", "bedroom"];
const PEOPLE: [&str; 4] = ["tom", "emily", "alan", "grandmother"];

fn rational(rng: &mut Rng) -> Rational {
    if rng.chance(1, 3) {
        // Fractional threshold; denominator stays non-zero.
        Rational::new(
            rng.range_i64(-200, 200) as i128,
            rng.range_i64(1, 16) as i128,
        )
    } else {
        Rational::from_integer(rng.range_i64(-100, 100))
    }
}

fn quantity(rng: &mut Rng) -> Quantity {
    Quantity::new(rational(rng), *rng.pick(&UNITS))
}

fn value(rng: &mut Rng) -> Value {
    match rng.below(5) {
        0 => Value::Bool(rng.chance(1, 2)),
        1 => Value::Text(format!("text-{}", rng.below(100))),
        2 => Value::Number(quantity(rng)),
        3 => Value::Place(PlaceId::new(*rng.pick(&PLACES))),
        _ => Value::Time(TimeOfDay::from_minutes(rng.below(1440) as u32)),
    }
}

/// A random atom; `allow_held` gates the recursive `held_for` wrapper so
/// durations qualify plain atoms but never nest.
fn atom(rng: &mut Rng, allow_held: bool) -> Atom {
    match rng.below(if allow_held { 8 } else { 7 }) {
        0 => Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new(*rng.pick(&DEVICES)), *rng.pick(&VARIABLES)),
            *rng.pick(&OPS),
            quantity(rng),
        )),
        1 => {
            let subject = match rng.below(3) {
                0 => Subject::Somebody,
                1 => Subject::Nobody,
                _ => Subject::Person(PersonId::new(*rng.pick(&PEOPLE))),
            };
            Atom::Presence(PresenceAtom::new(subject, PlaceId::new(*rng.pick(&PLACES))))
        }
        2 => Atom::State(StateAtom::new(
            DeviceId::new(*rng.pick(&DEVICES)),
            *rng.pick(&VARIABLES),
            value(rng),
        )),
        3 => Atom::Event(EventAtom::new(
            format!("channel-{}", rng.below(4)),
            format!("event-{}", rng.below(10)),
        )),
        4 => Atom::Time(TimeWindow::new(
            TimeOfDay::from_minutes(rng.below(1440) as u32),
            TimeOfDay::from_minutes(rng.below(1440) as u32),
        )),
        5 => Atom::Weekday(*rng.pick(&Weekday::ALL)),
        6 => Atom::Date(
            Date::new(
                rng.range_i64(2000, 2030) as i32,
                rng.range_i64(1, 12) as u8,
                rng.range_i64(1, 28) as u8,
            )
            .expect("generated calendar date is valid"),
        ),
        _ => Atom::held_for(
            atom(rng, false),
            SimDuration::from_millis(rng.below(86_400_000)),
        ),
    }
}

/// A small random condition tree: shallow enough that `build` never
/// trips the DNF complexity guard.
fn condition(rng: &mut Rng) -> Condition {
    match rng.below(4) {
        0 => Condition::Atom(atom(rng, true)),
        1 => Condition::And(
            (0..rng.below(3) + 1)
                .map(|_| Condition::Atom(atom(rng, true)))
                .collect(),
        ),
        2 => Condition::Or(
            (0..rng.below(3) + 1)
                .map(|_| Condition::Atom(atom(rng, true)))
                .collect(),
        ),
        _ => Condition::And(vec![
            Condition::Atom(atom(rng, true)),
            Condition::Or(
                (0..rng.below(2) + 1)
                    .map(|_| Condition::Atom(atom(rng, true)))
                    .collect(),
            ),
        ]),
    }
}

fn action(rng: &mut Rng) -> ActionSpec {
    let verb = match rng.below(5) {
        0 => Verb::TurnOn,
        1 => Verb::TurnOff,
        2 => Verb::Play,
        3 => Verb::Stop,
        _ => Verb::Custom(format!("word-{}", rng.below(8))),
    };
    let mut action = ActionSpec::new(DeviceId::new(*rng.pick(&DEVICES)), verb);
    for i in 0..rng.below(3) {
        action = action.with_setting(format!("param-{i}"), value(rng));
    }
    action
}

fn random_rule(rng: &mut Rng, id: u64) -> Rule {
    let mut builder = Rule::builder(PersonId::new(*rng.pick(&PEOPLE)))
        .condition(condition(rng))
        .action(action(rng));
    if rng.chance(1, 2) {
        builder = builder.label(format!("generated rule {id}"));
    }
    if rng.chance(1, 3) {
        builder = builder.until(condition(rng));
    }
    if rng.chance(1, 5) {
        builder = builder.enabled(false);
    }
    builder
        .build(RuleId::new(id))
        .expect("generated rule builds")
}

#[test]
fn two_hundred_seeded_rules_round_trip_exactly() {
    let mut rng = Rng::new(SEED);
    let rules: Vec<Rule> = (0..RULES as u64)
        .map(|id| random_rule(&mut rng, id))
        .collect();

    let json = rules_to_json(rules.iter());
    let restored = rules_from_json(&json).expect("exported rules re-import");
    assert_eq!(restored.len(), rules.len());

    for (original, back) in rules.iter().zip(&restored) {
        assert_eq!(back.id(), original.id(), "rule {}", original.id());
        assert_eq!(back.owner(), original.owner(), "rule {}", original.id());
        assert_eq!(back.label(), original.label(), "rule {}", original.id());
        assert_eq!(
            back.condition(),
            original.condition(),
            "rule {}",
            original.id()
        );
        assert_eq!(back.until(), original.until(), "rule {}", original.id());
        assert_eq!(back.action(), original.action(), "rule {}", original.id());
        assert_eq!(
            back.is_enabled(),
            original.is_enabled(),
            "rule {}",
            original.id()
        );
    }

    // And the round trip is a fixpoint: re-exporting yields identical text.
    assert_eq!(rules_to_json(restored.iter()), json);
}
