//! Lowering of [`Rule`]s into `cadel-ir` programs.
//!
//! A registered rule is compiled once into a [`RuleProgram`]: atoms become
//! slot-indexed predicates, the condition tree becomes flat bytecode with
//! the same shape and short-circuit order, and each DNF conjunct's linear
//! constraints are pre-built into a local solver system for the conflict
//! checker.

use crate::atom::{Atom, Subject};
use crate::condition::{Condition, Conjunct};
use crate::error::RuleError;
use crate::rule::Rule;
use cadel_ir::{CompiledConjunct, CondCode, Interner, IrError, Op, Pred, RuleProgram};

impl From<IrError> for RuleError {
    fn from(e: IrError) -> RuleError {
        match e {
            IrError::DimensionMismatch { context } => RuleError::DimensionMismatch { context },
            // `IrError` is non-exhaustive; future kinds surface as
            // serialization-ish internal errors rather than panicking.
            other => RuleError::DimensionMismatch {
                context: other.to_string(),
            },
        }
    }
}

/// Compiles a rule into an executable program, interning every sensor and
/// event name the rule mentions.
///
/// # Errors
///
/// Returns [`RuleError::DimensionMismatch`] when a conjunct constrains the
/// same sensor under two different physical dimensions.
pub fn compile_rule(rule: &Rule, interner: &mut Interner) -> Result<RuleProgram, RuleError> {
    let mut preds = Vec::new();
    let mut condition = CondCode::new();
    lower_condition(rule.condition(), interner, &mut preds, &mut condition);
    let until = rule.until().map(|u| {
        let mut code = CondCode::new();
        lower_condition(u, interner, &mut preds, &mut code);
        code
    });
    let conjuncts = compile_conjuncts(rule)?;
    Ok(RuleProgram::new(preds, condition, until, conjuncts))
}

/// Pre-builds the linear constraint system of every DNF conjunct of a rule,
/// over conjunct-local solver variables.
///
/// The result is independent of any interner, so the conflict checker can
/// compile a probe rule that is not (yet) registered. Conjuncts align
/// index-for-index with [`Rule::dnf`].
///
/// # Errors
///
/// Returns [`RuleError::DimensionMismatch`] on incompatible dimensions for
/// one sensor within a conjunct.
pub fn compile_conjuncts(rule: &Rule) -> Result<Vec<CompiledConjunct>, RuleError> {
    rule.dnf()
        .conjuncts()
        .iter()
        .map(compile_conjunct)
        .collect()
}

/// Pre-builds the linear constraint system of one conjunct.
///
/// # Errors
///
/// Returns [`RuleError::DimensionMismatch`] on incompatible dimensions.
pub fn compile_conjunct(conjunct: &Conjunct) -> Result<CompiledConjunct, RuleError> {
    let mut compiled = CompiledConjunct::new();
    for atom in conjunct.atoms() {
        collect_bounds(atom, &mut compiled)?;
    }
    Ok(compiled)
}

fn collect_bounds(atom: &Atom, out: &mut CompiledConjunct) -> Result<(), RuleError> {
    match atom {
        Atom::Constraint(c) => out.add_bound(
            c.sensor(),
            c.threshold().dimension(),
            c.op(),
            c.threshold().canonical_value(),
        )?,
        // The duration-qualified form contributes its instantaneous inner
        // comparison, as in `VarPool::conjunct_constraints`.
        Atom::HeldFor { inner, .. } => collect_bounds(inner, out)?,
        Atom::Presence(_)
        | Atom::State(_)
        | Atom::Event(_)
        | Atom::Time(_)
        | Atom::Weekday(_)
        | Atom::Date(_) => {}
    }
    Ok(())
}

/// Flattens a condition tree into bytecode, preserving child order and
/// grouping so evaluation short-circuits exactly like the AST interpreter.
fn lower_condition(
    condition: &Condition,
    interner: &mut Interner,
    preds: &mut Vec<Pred>,
    code: &mut CondCode,
) {
    match condition {
        Condition::True => code.push(Op::True),
        Condition::Atom(atom) => {
            let idx = lower_atom(atom, interner, preds);
            code.push(Op::Pred(idx));
        }
        Condition::And(cs) => {
            let at = code.len();
            code.push(Op::And { end: 0 });
            for c in cs {
                lower_condition(c, interner, preds, code);
            }
            code[at] = Op::And {
                end: code.len() as u32,
            };
        }
        Condition::Or(cs) => {
            let at = code.len();
            code.push(Op::Or { end: 0 });
            for c in cs {
                lower_condition(c, interner, preds, code);
            }
            code[at] = Op::Or {
                end: code.len() as u32,
            };
        }
    }
}

/// Lowers one atom into the predicate table and returns its index.
fn lower_atom(atom: &Atom, interner: &mut Interner, preds: &mut Vec<Pred>) -> u32 {
    let pred = match atom {
        Atom::Constraint(c) => Pred::NumCmp {
            slot: interner.sensor_slot(c.sensor()),
            op: c.op(),
            threshold: c.threshold().canonical_value(),
            dim: c.threshold().dimension(),
        },
        Atom::State(s) => Pred::StateEq {
            slot: interner.sensor_slot(&s.sensor_key()),
            expected: s.value().clone(),
        },
        Atom::Presence(p) => match p.subject() {
            Subject::Person(person) => Pred::PersonAt {
                person: person.clone(),
                place: p.place().clone(),
            },
            Subject::Somebody => Pred::SomebodyAt(p.place().clone()),
            Subject::Nobody => Pred::NobodyAt(p.place().clone()),
        },
        Atom::Event(e) => Pred::Event(interner.event_slot(e.channel(), e.name())),
        Atom::Time(w) => Pred::TimeIn(*w),
        Atom::Weekday(w) => Pred::WeekdayIs(*w),
        Atom::Date(d) => Pred::DateIs(*d),
        Atom::HeldFor { inner, duration } => {
            let inner_idx = lower_atom(inner, interner, preds);
            Pred::HeldFor {
                inner: inner_idx,
                duration: *duration,
                // Byte-identical to the AST interpreter's tracking key so
                // both evaluation paths share one `HeldTracker` state.
                fingerprint: format!("{inner}~{}", duration.as_millis()).into_boxed_str(),
            }
        }
        // `Atom` is non-exhaustive; unknown future kinds fail closed,
        // matching the interpreter's `_ => false` arm.
        #[allow(unreachable_patterns)]
        _ => Pred::Never,
    };
    preds.push(pred);
    (preds.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{ConstraintAtom, EventAtom, StateAtom};
    use crate::{ActionSpec, Verb};
    use cadel_simplex::{solve, RelOp, Solution};
    use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, SimDuration, Unit, Value};

    fn thermo() -> SensorKey {
        SensorKey::new(DeviceId::new("thermo"), "temperature")
    }

    fn temp_gt(n: i64) -> Condition {
        Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            thermo(),
            RelOp::Gt,
            Quantity::from_integer(n, Unit::Celsius),
        )))
    }

    fn event(name: &str) -> Condition {
        Condition::Atom(Atom::Event(EventAtom::new("tv-guide", name)))
    }

    fn rule_with(condition: Condition) -> Rule {
        Rule::builder(PersonId::new("tom"))
            .condition(condition)
            .action(ActionSpec::new(DeviceId::new("aircon"), Verb::TurnOn))
            .build(RuleId::new(1))
            .unwrap()
    }

    #[test]
    fn lowering_preserves_tree_shape() {
        let rule = rule_with(temp_gt(26).and(event("news").or(event("movie"))));
        let mut interner = Interner::new();
        let program = compile_rule(&rule, &mut interner).unwrap();
        // And{..} Pred(temp) Or{..} Pred(news) Pred(movie)
        assert_eq!(program.condition().len(), 5);
        assert!(matches!(program.condition()[0], Op::And { end: 5 }));
        assert!(matches!(program.condition()[2], Op::Or { end: 5 }));
        assert_eq!(program.preds().len(), 3);
        assert_eq!(interner.sensor_count(), 1);
        assert_eq!(interner.event_count(), 2);
    }

    #[test]
    fn until_shares_the_predicate_table() {
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(event("movie"))
            .until(event("movie ends"))
            .action(ActionSpec::new(DeviceId::new("tv"), Verb::TurnOn))
            .build(RuleId::new(2))
            .unwrap();
        let mut interner = Interner::new();
        let program = compile_rule(&rule, &mut interner).unwrap();
        assert_eq!(program.condition(), &vec![Op::Pred(0)]);
        assert_eq!(program.until(), Some(&vec![Op::Pred(1)]));
        assert_eq!(program.preds().len(), 2);
    }

    #[test]
    fn held_for_fingerprints_match_the_interpreter() {
        let inner = Atom::State(StateAtom::new(
            DeviceId::new("door"),
            "locked",
            Value::Bool(false),
        ));
        let rule = rule_with(Condition::Atom(Atom::held_for(
            inner.clone(),
            SimDuration::from_hours(1),
        )));
        let mut interner = Interner::new();
        let program = compile_rule(&rule, &mut interner).unwrap();
        let expected = format!("{inner}~{}", SimDuration::from_hours(1).as_millis());
        match &program.preds()[1] {
            Pred::HeldFor { fingerprint, .. } => assert_eq!(fingerprint.as_ref(), expected),
            other => panic!("expected HeldFor, got {other:?}"),
        }
    }

    #[test]
    fn conjuncts_align_with_dnf_and_solve() {
        let rule = rule_with(temp_gt(26).or(temp_gt(30).and(event("news"))));
        let conjuncts = compile_conjuncts(&rule).unwrap();
        assert_eq!(conjuncts.len(), rule.dnf().conjuncts().len());
        assert_eq!(conjuncts[0].constraints().len(), 1);
        assert_eq!(conjuncts[1].constraints().len(), 1);
        assert!(matches!(
            solve(conjuncts[1].constraints()).unwrap(),
            Solution::Feasible(_)
        ));
    }

    #[test]
    fn dimension_mismatch_matches_var_pool_wording() {
        let clash = temp_gt(26).and(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            thermo(),
            RelOp::Lt,
            Quantity::from_integer(60, Unit::Percent),
        ))));
        let rule = rule_with(clash);
        let err = compile_conjuncts(&rule).unwrap_err();
        let mut pool = crate::convert::VarPool::new();
        let old = pool
            .conjunct_constraints(&rule.dnf().conjuncts()[0])
            .unwrap_err();
        assert_eq!(err.to_string(), old.to_string());
    }

    #[test]
    fn trivially_true_condition_lowers_to_one_op() {
        let rule = rule_with(Condition::True);
        let mut interner = Interner::new();
        let program = compile_rule(&rule, &mut interner).unwrap();
        assert_eq!(program.condition(), &vec![Op::True]);
        assert!(program.preds().is_empty());
        // One trivially-true conjunct, no numeric constraints.
        assert_eq!(program.conjuncts().len(), rule.dnf().conjuncts().len());
        assert!(program
            .conjuncts()
            .iter()
            .all(|c| c.constraints().is_empty()));
    }

    #[test]
    fn nested_held_for_lowers_recursively() {
        // held(held(t > 26, 5 min), 10 min): both levels get distinct
        // fingerprints and the inner index chain bottoms out at NumCmp.
        let inner = Atom::Constraint(ConstraintAtom::new(
            thermo(),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        ));
        let mid = Atom::held_for(inner, SimDuration::from_minutes(5));
        let outer = Atom::held_for(mid.clone(), SimDuration::from_minutes(10));
        let rule = rule_with(Condition::Atom(outer));
        let mut interner = Interner::new();
        let program = compile_rule(&rule, &mut interner).unwrap();
        assert_eq!(program.preds().len(), 3);
        let Pred::HeldFor {
            inner: mid_idx,
            fingerprint: outer_fp,
            ..
        } = program.preds().last().unwrap()
        else {
            panic!("outermost predicate should be HeldFor");
        };
        let Pred::HeldFor {
            inner: leaf_idx,
            fingerprint: mid_fp,
            ..
        } = &program.preds()[*mid_idx as usize]
        else {
            panic!("middle predicate should be HeldFor");
        };
        assert!(matches!(
            program.preds()[*leaf_idx as usize],
            Pred::NumCmp { .. }
        ));
        assert_ne!(outer_fp, mid_fp);
        assert_eq!(
            outer_fp.as_ref(),
            format!("{mid}~{}", SimDuration::from_minutes(10).as_millis())
        );
        // Numeric bounds inside HeldFor still reach the conjunct system.
        assert_eq!(program.conjuncts().len(), 1);
        assert_eq!(program.conjuncts()[0].constraints().len(), 1);
    }

    #[test]
    fn empty_or_lowers_to_false() {
        let rule = rule_with(Condition::Or(vec![]));
        let mut interner = Interner::new();
        let program = compile_rule(&rule, &mut interner).unwrap();
        assert_eq!(program.condition(), &vec![Op::Or { end: 1 }]);
        assert!(rule.dnf().is_trivially_false());
        assert!(program.conjuncts().is_empty());
    }
}
