//! Condition trees and disjunctive normal form.

use crate::atom::Atom;
use crate::error::RuleError;
use std::fmt;

/// The maximum number of conjuncts a condition may expand to in DNF.
///
/// CADEL conditions written by home users are tiny; the cap guards the
/// conflict checker against pathological machine-generated input.
pub const MAX_DNF_CONJUNCTS: usize = 512;

/// A rule condition: an and/or tree over [`Atom`]s.
///
/// `Condition::True` is the condition of an unconditional command
/// ("Turn on the TV" with no `if`/`when` part).
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Default)]
pub enum Condition {
    /// Always true.
    #[default]
    True,
    /// A primitive fact.
    Atom(Atom),
    /// All sub-conditions must hold.
    And(Vec<Condition>),
    /// At least one sub-condition must hold.
    Or(Vec<Condition>),
}

impl Condition {
    /// Conjunction of two conditions, flattening nested `And`s.
    pub fn and(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::True, c) | (c, Condition::True) => c,
            (Condition::And(mut a), Condition::And(b)) => {
                a.extend(b);
                Condition::And(a)
            }
            (Condition::And(mut a), c) => {
                a.push(c);
                Condition::And(a)
            }
            (c, Condition::And(mut b)) => {
                b.insert(0, c);
                Condition::And(b)
            }
            (a, b) => Condition::And(vec![a, b]),
        }
    }

    /// Disjunction of two conditions, flattening nested `Or`s.
    pub fn or(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::Or(mut a), Condition::Or(b)) => {
                a.extend(b);
                Condition::Or(a)
            }
            (Condition::Or(mut a), c) => {
                a.push(c);
                Condition::Or(a)
            }
            (c, Condition::Or(mut b)) => {
                b.insert(0, c);
                Condition::Or(b)
            }
            (a, b) => Condition::Or(vec![a, b]),
        }
    }

    /// The number of atoms in the tree.
    pub fn atom_count(&self) -> usize {
        match self {
            Condition::True => 0,
            Condition::Atom(_) => 1,
            Condition::And(cs) | Condition::Or(cs) => cs.iter().map(Condition::atom_count).sum(),
        }
    }

    /// Iterates over all atoms in the tree (in syntactic order).
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            Condition::True => {}
            Condition::Atom(a) => out.push(a),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_atoms(out);
                }
            }
        }
    }

    /// Normalizes the condition to disjunctive normal form.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::ConditionTooComplex`] when the expansion would
    /// exceed [`MAX_DNF_CONJUNCTS`].
    pub fn to_dnf(&self) -> Result<Dnf, RuleError> {
        let conjuncts = self.dnf_conjuncts()?;
        Ok(Dnf { conjuncts })
    }

    fn dnf_conjuncts(&self) -> Result<Vec<Conjunct>, RuleError> {
        match self {
            Condition::True => Ok(vec![Conjunct::empty()]),
            Condition::Atom(a) => Ok(vec![Conjunct::new(vec![a.clone()])]),
            Condition::Or(cs) => {
                let mut out = Vec::new();
                for c in cs {
                    out.extend(c.dnf_conjuncts()?);
                    if out.len() > MAX_DNF_CONJUNCTS {
                        return Err(RuleError::ConditionTooComplex {
                            conjuncts: out.len(),
                            limit: MAX_DNF_CONJUNCTS,
                        });
                    }
                }
                Ok(out)
            }
            Condition::And(cs) => {
                let mut acc = vec![Conjunct::empty()];
                for c in cs {
                    let rhs = c.dnf_conjuncts()?;
                    let product = acc.len().saturating_mul(rhs.len());
                    if product > MAX_DNF_CONJUNCTS {
                        return Err(RuleError::ConditionTooComplex {
                            conjuncts: product,
                            limit: MAX_DNF_CONJUNCTS,
                        });
                    }
                    let mut next = Vec::with_capacity(product);
                    for left in &acc {
                        for right in &rhs {
                            next.push(left.join(right));
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
        }
    }
}

impl From<Atom> for Condition {
    fn from(a: Atom) -> Condition {
        Condition::Atom(a)
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => f.write_str("true"),
            Condition::Atom(a) => write!(f, "{a}"),
            Condition::And(cs) => {
                f.write_str("(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" and ")?;
                    }
                    write!(f, "{c}")?;
                }
                f.write_str(")")
            }
            Condition::Or(cs) => {
                f.write_str("(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" or ")?;
                    }
                    write!(f, "{c}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A conjunction of atoms — one disjunct of a DNF.
#[derive(Clone, Debug, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Conjunct {
    atoms: Vec<Atom>,
}

impl Conjunct {
    /// The empty (always-true) conjunct.
    pub fn empty() -> Conjunct {
        Conjunct::default()
    }

    /// Creates a conjunct from atoms.
    pub fn new(atoms: Vec<Atom>) -> Conjunct {
        Conjunct { atoms }
    }

    /// The atoms of the conjunct.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Whether the conjunct is empty (always true).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Concatenation of two conjuncts.
    pub fn join(&self, other: &Conjunct) -> Conjunct {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        Conjunct { atoms }
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" and ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A condition in disjunctive normal form: a disjunction of conjunctions
/// of atoms.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dnf {
    conjuncts: Vec<Conjunct>,
}

impl Dnf {
    /// The disjuncts.
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// Whether the DNF is trivially true (contains an empty conjunct).
    pub fn is_trivially_true(&self) -> bool {
        self.conjuncts.iter().any(Conjunct::is_empty)
    }

    /// Whether the DNF is trivially false (no conjuncts at all). This can
    /// only arise from an empty `Or`.
    pub fn is_trivially_false(&self) -> bool {
        self.conjuncts.is_empty()
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return f.write_str("false");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str(" or ")?;
            }
            write!(f, "[{c}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{ConstraintAtom, EventAtom};
    use cadel_simplex::RelOp;
    use cadel_types::{DeviceId, Quantity, SensorKey, Unit};

    fn temp_gt(n: i64) -> Condition {
        Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo"), "temperature"),
            RelOp::Gt,
            Quantity::from_integer(n, Unit::Celsius),
        )))
    }

    fn event(name: &str) -> Condition {
        Condition::Atom(Atom::Event(EventAtom::new("tv-guide", name)))
    }

    #[test]
    fn and_or_flatten() {
        let c = temp_gt(1).and(temp_gt(2)).and(temp_gt(3));
        match &c {
            Condition::And(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        let c = temp_gt(1).or(temp_gt(2)).or(temp_gt(3));
        match &c {
            Condition::Or(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn true_is_identity_for_and() {
        let c = Condition::True.and(temp_gt(5));
        assert_eq!(c, temp_gt(5));
        let c = temp_gt(5).and(Condition::True);
        assert_eq!(c, temp_gt(5));
    }

    #[test]
    fn atom_count_and_collection() {
        let c = temp_gt(1).and(event("a").or(event("b")));
        assert_eq!(c.atom_count(), 3);
        assert_eq!(c.atoms().len(), 3);
        assert_eq!(Condition::True.atom_count(), 0);
    }

    #[test]
    fn dnf_of_simple_conjunction() {
        let c = temp_gt(26).and(temp_gt(25));
        let dnf = c.to_dnf().unwrap();
        assert_eq!(dnf.conjuncts().len(), 1);
        assert_eq!(dnf.conjuncts()[0].atoms().len(), 2);
    }

    #[test]
    fn dnf_distributes_and_over_or() {
        // (a or b) and (c or d) => 4 conjuncts.
        let c = event("a").or(event("b")).and(event("c").or(event("d")));
        let dnf = c.to_dnf().unwrap();
        assert_eq!(dnf.conjuncts().len(), 4);
        for conj in dnf.conjuncts() {
            assert_eq!(conj.atoms().len(), 2);
        }
    }

    #[test]
    fn dnf_of_true_is_trivially_true() {
        let dnf = Condition::True.to_dnf().unwrap();
        assert!(dnf.is_trivially_true());
        assert!(!dnf.is_trivially_false());
    }

    #[test]
    fn dnf_of_empty_or_is_false() {
        let dnf = Condition::Or(vec![]).to_dnf().unwrap();
        assert!(dnf.is_trivially_false());
    }

    #[test]
    fn dnf_blowup_is_bounded() {
        // (a or b)^10 = 1024 conjuncts > 512.
        let mut c = Condition::True;
        for _ in 0..10 {
            c = c.and(event("a").or(event("b")));
        }
        match c.to_dnf() {
            Err(RuleError::ConditionTooComplex { limit, .. }) => {
                assert_eq!(limit, MAX_DNF_CONJUNCTS)
            }
            other => panic!("expected complexity error, got {other:?}"),
        }
    }

    #[test]
    fn display_round_trip_readability() {
        let c = temp_gt(26).and(event("baseball game"));
        let s = c.to_string();
        assert!(s.contains("temperature > 26"));
        assert!(s.contains("baseball game"));
        let dnf = c.to_dnf().unwrap();
        assert!(dnf.to_string().starts_with('['));
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let c = temp_gt(26).and(event("news").or(Condition::True));
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Condition>(&json).unwrap(), c);
    }
}
