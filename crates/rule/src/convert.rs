//! Conversion of condition conjuncts into `cadel-simplex` systems.
//!
//! The conflict checker works on numeric constraint systems; this module
//! interns sensor variables into dense solver indices and extracts the
//! linear constraints of a conjunct. Non-numeric atoms (presence, events,
//! device states, time windows) are handled separately by the discrete
//! compatibility checks in `cadel-conflict`.

use crate::atom::Atom;
use crate::condition::Conjunct;
use crate::error::RuleError;
use cadel_simplex::{Constraint, LinExpr, VarId};
use cadel_types::unit::Dimension;
use cadel_types::SensorKey;
use std::collections::HashMap;

/// Interns [`SensorKey`]s into dense solver [`VarId`]s and tracks each
/// variable's physical dimension so that a humidity threshold can never be
/// silently compared against a temperature sensor.
///
/// # Example
///
/// ```
/// use cadel_rule::VarPool;
/// use cadel_types::{DeviceId, SensorKey};
///
/// let mut pool = VarPool::new();
/// let t = SensorKey::new(DeviceId::new("thermo"), "temperature");
/// let a = pool.var_for(&t);
/// let b = pool.var_for(&t);
/// assert_eq!(a, b); // stable interning
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarPool {
    vars: HashMap<SensorKey, VarId>,
    keys: Vec<SensorKey>,
    dimensions: Vec<Option<Dimension>>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> VarPool {
        VarPool::default()
    }

    /// The solver variable for a sensor key, interning it on first use.
    pub fn var_for(&mut self, key: &SensorKey) -> VarId {
        if let Some(v) = self.vars.get(key) {
            return *v;
        }
        let v = VarId::new(self.keys.len() as u32);
        self.vars.insert(key.clone(), v);
        self.keys.push(key.clone());
        self.dimensions.push(None);
        v
    }

    /// The sensor key behind a solver variable, if interned.
    pub fn key_for(&self, var: VarId) -> Option<&SensorKey> {
        self.keys.get(var.index())
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Extracts the linear constraints of a conjunct, in the canonical unit
    /// of each dimension (temperatures in Celsius).
    ///
    /// `HeldFor`-qualified constraint atoms contribute their inner
    /// comparison: if the inner fact can hold at some instant, the
    /// duration-qualified fact can hold after it persists, so using the
    /// instantaneous form is the correct over-approximation for
    /// co-satisfiability.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::DimensionMismatch`] when the same sensor
    /// variable is constrained with incompatible dimensions.
    pub fn conjunct_constraints(
        &mut self,
        conjunct: &Conjunct,
    ) -> Result<Vec<Constraint>, RuleError> {
        let mut out = Vec::new();
        for atom in conjunct.atoms() {
            self.collect_atom(atom, &mut out)?;
        }
        Ok(out)
    }

    fn collect_atom(&mut self, atom: &Atom, out: &mut Vec<Constraint>) -> Result<(), RuleError> {
        match atom {
            Atom::Constraint(c) => {
                let var = self.var_for(c.sensor());
                let dim = c.threshold().dimension();
                let slot = &mut self.dimensions[var.index()];
                match slot {
                    None => *slot = Some(dim),
                    Some(existing) if *existing == dim => {}
                    Some(existing) => {
                        return Err(RuleError::DimensionMismatch {
                            context: format!(
                                "sensor {} constrained as {:?} and {:?}",
                                c.sensor(),
                                existing,
                                dim
                            ),
                        });
                    }
                }
                out.push(Constraint::new(
                    LinExpr::var(var),
                    c.op(),
                    c.threshold().canonical_value(),
                ));
            }
            Atom::HeldFor { inner, .. } => self.collect_atom(inner, out)?,
            // Discrete atoms carry no linear content.
            Atom::Presence(_)
            | Atom::State(_)
            | Atom::Event(_)
            | Atom::Time(_)
            | Atom::Weekday(_)
            | Atom::Date(_) => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{ConstraintAtom, EventAtom};
    use cadel_simplex::{is_satisfiable, RelOp};
    use cadel_types::{DeviceId, Quantity, SimDuration, Unit};

    fn key(dev: &str, var: &str) -> SensorKey {
        SensorKey::new(DeviceId::new(dev), var)
    }

    fn gt(dev: &str, var: &str, n: i64, unit: Unit) -> Atom {
        Atom::Constraint(ConstraintAtom::new(
            key(dev, var),
            RelOp::Gt,
            Quantity::from_integer(n, unit),
        ))
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let mut pool = VarPool::new();
        let a = pool.var_for(&key("thermo", "temperature"));
        let b = pool.var_for(&key("hygro", "humidity"));
        let a2 = pool.var_for(&key("thermo", "temperature"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.key_for(a).unwrap(), &key("thermo", "temperature"));
        assert_eq!(pool.key_for(VarId::new(99)), None);
    }

    #[test]
    fn extracts_numeric_atoms_only() {
        let mut pool = VarPool::new();
        let conjunct = Conjunct::new(vec![
            gt("thermo", "temperature", 26, Unit::Celsius),
            Atom::Event(EventAtom::new("tv-guide", "news")),
            gt("hygro", "humidity", 65, Unit::Percent),
        ]);
        let cons = pool.conjunct_constraints(&conjunct).unwrap();
        assert_eq!(cons.len(), 2);
        assert!(is_satisfiable(&cons).unwrap());
    }

    #[test]
    fn fahrenheit_thresholds_land_in_celsius_coordinates() {
        let mut pool = VarPool::new();
        // temperature > 25 °C  and  temperature < 77 °F (= 25 °C):
        // exactly contradictory only if units are canonicalized.
        let conjunct = Conjunct::new(vec![
            gt("thermo", "temperature", 25, Unit::Celsius),
            Atom::Constraint(ConstraintAtom::new(
                key("thermo", "temperature"),
                RelOp::Lt,
                Quantity::from_integer(77, Unit::Fahrenheit),
            )),
        ]);
        let cons = pool.conjunct_constraints(&conjunct).unwrap();
        assert!(!is_satisfiable(&cons).unwrap());
    }

    #[test]
    fn held_for_contributes_inner_constraint() {
        let mut pool = VarPool::new();
        let conjunct = Conjunct::new(vec![Atom::held_for(
            gt("thermo", "temperature", 26, Unit::Celsius),
            SimDuration::from_minutes(10),
        )]);
        let cons = pool.conjunct_constraints(&conjunct).unwrap();
        assert_eq!(cons.len(), 1);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut pool = VarPool::new();
        let conjunct = Conjunct::new(vec![
            gt("multi", "reading", 26, Unit::Celsius),
            gt("multi", "reading", 60, Unit::Percent),
        ]);
        let err = pool.conjunct_constraints(&conjunct).unwrap_err();
        assert!(matches!(err, RuleError::DimensionMismatch { .. }));
    }

    #[test]
    fn shared_pool_joins_rules_on_common_sensors() {
        // The E2 conflict check concatenates two rules' conjuncts in one
        // pool so shared sensors map to the same variable.
        let mut pool = VarPool::new();
        let tom = Conjunct::new(vec![gt("thermo", "temperature", 26, Unit::Celsius)]);
        let alan = Conjunct::new(vec![gt("thermo", "temperature", 25, Unit::Celsius)]);
        let mut sys = pool.conjunct_constraints(&tom).unwrap();
        sys.extend(pool.conjunct_constraints(&alan).unwrap());
        assert_eq!(pool.len(), 1);
        assert!(is_satisfiable(&sys).unwrap());
    }
}
