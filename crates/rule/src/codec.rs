//! JSON import/export codecs for rules (paper §4.3(iv)).
//!
//! Rules are exchanged as a stable, hand-specified JSON schema built on
//! [`cadel_types::json`], so export/import works in the offline default
//! build (no `serde`). The schema round-trips every construct of the rule
//! language: nested conditions, all atom kinds, `until` clauses, duration
//! qualifiers and unit-carrying thresholds (exact rationals, no floats).
//!
//! This schema doubles as the payload format of the durable store's
//! write-ahead log (see `docs/PERSISTENCE.md`), so parse errors carry the
//! JSON path of the offending field (e.g. `at $[3].condition.all[1]:
//! missing field 'type'`) — when a half-replayed log rejects a record,
//! the diagnostic points at the byte that broke, not just "bad JSON".

use crate::action::{ActionSpec, Setting, Verb};
use crate::atom::{Atom, ConstraintAtom, EventAtom, PresenceAtom, StateAtom, Subject};
use crate::condition::Condition;
use crate::error::RuleError;
use crate::rule::Rule;
use cadel_simplex::RelOp;
use cadel_types::json::{self, Json};
use cadel_types::{
    Date, DeviceId, PersonId, PlaceId, Quantity, Rational, RuleId, SensorKey, SimDuration,
    TimeOfDay, TimeWindow, Unit, Value, Weekday,
};

/// Serializes a list of rules as pretty JSON.
pub fn rules_to_json<'a>(rules: impl IntoIterator<Item = &'a Rule>) -> String {
    Json::Arr(rules.into_iter().map(rule_to_json).collect()).to_pretty()
}

/// Parses a list of rules from JSON produced by [`rules_to_json`].
///
/// # Errors
///
/// Returns [`RuleError::Serialization`] on malformed JSON or an
/// out-of-schema document. The message names the JSON path that failed
/// (`at $[2].action.verb: …`).
pub fn rules_from_json(text: &str) -> Result<Vec<Rule>, RuleError> {
    let doc = json::parse(text).map_err(|e| RuleError::Serialization(e.to_string()))?;
    let items = doc
        .as_arr()
        .ok_or_else(|| bad("$", "top-level document must be an array of rules"))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| rule_from_json_at(item, &format!("$[{i}]")))
        .collect()
}

/// Serializes one rule to a JSON value.
pub fn rule_to_json(rule: &Rule) -> Json {
    let mut members = vec![
        ("id", Json::Int(rule.id().raw() as i64)),
        ("owner", Json::str(rule.owner().as_str())),
    ];
    if let Some(label) = rule.label() {
        members.push(("label", Json::str(label)));
    }
    members.push(("condition", condition_to_json(rule.condition())));
    if let Some(until) = rule.until() {
        members.push(("until", condition_to_json(until)));
    }
    members.push(("action", action_to_json(rule.action())));
    members.push(("enabled", Json::Bool(rule.is_enabled())));
    Json::obj(members)
}

/// Parses one rule from a JSON value.
///
/// # Errors
///
/// Returns [`RuleError::Serialization`] on an out-of-schema value, with
/// the failing JSON path in the message.
pub fn rule_from_json(doc: &Json) -> Result<Rule, RuleError> {
    rule_from_json_at(doc, "$")
}

fn rule_from_json_at(doc: &Json, path: &str) -> Result<Rule, RuleError> {
    let id = RuleId::new(get_int(doc, "id", path)? as u64);
    let owner = PersonId::new(get_str(doc, "owner", path)?);
    let mut builder = Rule::builder(owner)
        .condition(condition_from_json_at(
            require(doc, "condition", path)?,
            &child(path, "condition"),
        )?)
        .action(action_from_json_at(
            require(doc, "action", path)?,
            &child(path, "action"),
        )?);
    if let Some(label) = doc.get("label") {
        builder = builder.label(str_of(label, &child(path, "label"))?);
    }
    if let Some(until) = doc.get("until") {
        builder = builder.until(condition_from_json_at(until, &child(path, "until"))?);
    }
    if let Some(enabled) = doc.get("enabled") {
        builder = builder.enabled(
            enabled
                .as_bool()
                .ok_or_else(|| bad(&child(path, "enabled"), "must be a boolean"))?,
        );
    }
    builder.build(id)
}

/// Serializes a condition tree to a JSON value.
///
/// Exposed (alongside [`condition_from_json`]) so other layers — e.g.
/// the durable store's priority-order records — can reuse the rule
/// schema instead of inventing a second condition encoding.
pub fn condition_to_json(condition: &Condition) -> Json {
    match condition {
        Condition::True => Json::Bool(true),
        Condition::Atom(atom) => atom_to_json(atom),
        Condition::And(parts) => Json::obj(vec![(
            "all",
            Json::Arr(parts.iter().map(condition_to_json).collect()),
        )]),
        Condition::Or(parts) => Json::obj(vec![(
            "any",
            Json::Arr(parts.iter().map(condition_to_json).collect()),
        )]),
    }
}

/// Parses a condition tree from a JSON value.
///
/// # Errors
///
/// Returns [`RuleError::Serialization`] on an out-of-schema value.
pub fn condition_from_json(doc: &Json) -> Result<Condition, RuleError> {
    condition_from_json_at(doc, "$")
}

fn condition_from_json_at(doc: &Json, path: &str) -> Result<Condition, RuleError> {
    if doc.as_bool() == Some(true) {
        return Ok(Condition::True);
    }
    if let Some(parts) = doc.get("all") {
        let parts = parts
            .as_arr()
            .ok_or_else(|| bad(&child(path, "all"), "must be an array"))?;
        let conditions: Result<Vec<_>, _> = parts
            .iter()
            .enumerate()
            .map(|(i, part)| condition_from_json_at(part, &format!("{path}.all[{i}]")))
            .collect();
        return Ok(Condition::And(conditions?));
    }
    if let Some(parts) = doc.get("any") {
        let parts = parts
            .as_arr()
            .ok_or_else(|| bad(&child(path, "any"), "must be an array"))?;
        let conditions: Result<Vec<_>, _> = parts
            .iter()
            .enumerate()
            .map(|(i, part)| condition_from_json_at(part, &format!("{path}.any[{i}]")))
            .collect();
        return Ok(Condition::Or(conditions?));
    }
    Ok(Condition::Atom(atom_from_json_at(doc, path)?))
}

fn atom_to_json(atom: &Atom) -> Json {
    match atom {
        Atom::Constraint(c) => Json::obj(vec![
            ("type", Json::str("constraint")),
            ("device", Json::str(c.sensor().device().as_str())),
            ("variable", Json::str(c.sensor().variable())),
            ("op", Json::str(op_symbol(c.op()))),
            ("value", rational_to_json(c.threshold().value())),
            ("unit", Json::str(unit_name(c.threshold().unit()))),
        ]),
        Atom::Presence(p) => {
            let subject = match p.subject() {
                Subject::Person(person) => Json::str(person.as_str()),
                Subject::Somebody => Json::str("@somebody"),
                Subject::Nobody => Json::str("@nobody"),
            };
            Json::obj(vec![
                ("type", Json::str("presence")),
                ("subject", subject),
                ("place", Json::str(p.place().as_str())),
            ])
        }
        Atom::State(s) => Json::obj(vec![
            ("type", Json::str("state")),
            ("device", Json::str(s.device().as_str())),
            ("variable", Json::str(s.variable())),
            ("value", value_to_json(s.value())),
        ]),
        Atom::Event(e) => Json::obj(vec![
            ("type", Json::str("event")),
            ("channel", Json::str(e.channel())),
            ("name", Json::str(e.name())),
        ]),
        Atom::Time(window) => Json::obj(vec![
            ("type", Json::str("time")),
            ("start", Json::Int(window.start().minutes() as i64)),
            ("end", Json::Int(window.end().minutes() as i64)),
        ]),
        Atom::Weekday(day) => Json::obj(vec![
            ("type", Json::str("weekday")),
            ("day", Json::Int(day.index() as i64)),
        ]),
        Atom::Date(date) => Json::obj(vec![
            ("type", Json::str("date")),
            ("year", Json::Int(date.year() as i64)),
            ("month", Json::Int(date.month() as i64)),
            ("day", Json::Int(date.day() as i64)),
        ]),
        Atom::HeldFor { inner, duration } => Json::obj(vec![
            ("type", Json::str("held_for")),
            ("inner", atom_to_json(inner)),
            ("duration_ms", Json::Int(duration.as_millis() as i64)),
        ]),
    }
}

fn atom_from_json_at(doc: &Json, path: &str) -> Result<Atom, RuleError> {
    match get_str(doc, "type", path)? {
        "constraint" => {
            let sensor = SensorKey::new(
                DeviceId::new(get_str(doc, "device", path)?),
                get_str(doc, "variable", path)?,
            );
            let op = op_from_symbol(get_str(doc, "op", path)?, &child(path, "op"))?;
            let value = rational_from_json_at(require(doc, "value", path)?, &child(path, "value"))?;
            let unit = unit_from_name(get_str(doc, "unit", path)?, &child(path, "unit"))?;
            Ok(Atom::Constraint(ConstraintAtom::new(
                sensor,
                op,
                Quantity::new(value, unit),
            )))
        }
        "presence" => {
            let subject = match get_str(doc, "subject", path)? {
                "@somebody" => Subject::Somebody,
                "@nobody" => Subject::Nobody,
                person => Subject::Person(PersonId::new(person)),
            };
            Ok(Atom::Presence(PresenceAtom::new(
                subject,
                PlaceId::new(get_str(doc, "place", path)?),
            )))
        }
        "state" => Ok(Atom::State(StateAtom::new(
            DeviceId::new(get_str(doc, "device", path)?),
            get_str(doc, "variable", path)?,
            value_from_json_at(require(doc, "value", path)?, &child(path, "value"))?,
        ))),
        "event" => Ok(Atom::Event(EventAtom::new(
            get_str(doc, "channel", path)?,
            get_str(doc, "name", path)?,
        ))),
        "time" => {
            let start = minutes_of(get_int(doc, "start", path)?, &child(path, "start"))?;
            let end = minutes_of(get_int(doc, "end", path)?, &child(path, "end"))?;
            Ok(Atom::Time(TimeWindow::new(start, end)))
        }
        "weekday" => {
            let index = get_int(doc, "day", path)?;
            let day = Weekday::ALL
                .get(usize::try_from(index).unwrap_or(usize::MAX))
                .copied()
                .ok_or_else(|| bad(&child(path, "day"), "weekday index out of range"))?;
            Ok(Atom::Weekday(day))
        }
        "date" => {
            let year = i32::try_from(get_int(doc, "year", path)?)
                .map_err(|_| bad(&child(path, "year"), "date year out of range"))?;
            let month = u8::try_from(get_int(doc, "month", path)?)
                .map_err(|_| bad(&child(path, "month"), "date month out of range"))?;
            let day = u8::try_from(get_int(doc, "day", path)?)
                .map_err(|_| bad(&child(path, "day"), "date day out of range"))?;
            Ok(Atom::Date(
                Date::new(year, month, day).ok_or_else(|| bad(path, "invalid calendar date"))?,
            ))
        }
        "held_for" => {
            let inner = atom_from_json_at(require(doc, "inner", path)?, &child(path, "inner"))?;
            let ms = u64::try_from(get_int(doc, "duration_ms", path)?)
                .map_err(|_| bad(&child(path, "duration_ms"), "duration must be non-negative"))?;
            Ok(Atom::held_for(inner, SimDuration::from_millis(ms)))
        }
        other => Err(bad(
            &child(path, "type"),
            format!("unknown atom type '{other}'"),
        )),
    }
}

/// Serializes an action (device, verb, settings) to a JSON value.
pub fn action_to_json(action: &ActionSpec) -> Json {
    let verb = match action.verb() {
        Verb::Custom(word) => Json::obj(vec![("custom", Json::str(word))]),
        verb => Json::str(verb.phrase()),
    };
    let mut members = vec![
        ("device", Json::str(action.device().as_str())),
        ("verb", verb),
    ];
    if !action.settings().is_empty() {
        members.push((
            "settings",
            Json::Arr(action.settings().iter().map(setting_to_json).collect()),
        ));
    }
    Json::obj(members)
}

/// Parses an action from a JSON value.
///
/// # Errors
///
/// Returns [`RuleError::Serialization`] on an out-of-schema value.
pub fn action_from_json(doc: &Json) -> Result<ActionSpec, RuleError> {
    action_from_json_at(doc, "$")
}

fn action_from_json_at(doc: &Json, path: &str) -> Result<ActionSpec, RuleError> {
    let device = DeviceId::new(get_str(doc, "device", path)?);
    let verb_doc = require(doc, "verb", path)?;
    let verb_path = child(path, "verb");
    let verb = if let Some(word) = verb_doc.get("custom") {
        Verb::Custom(str_of(word, &child(&verb_path, "custom"))?.to_owned())
    } else {
        Verb::from_phrase(str_of(verb_doc, &verb_path)?)
    };
    let mut action = ActionSpec::new(device, verb);
    if let Some(settings) = doc.get("settings") {
        let settings_path = child(path, "settings");
        let settings = settings
            .as_arr()
            .ok_or_else(|| bad(&settings_path, "must be an array"))?;
        for (i, setting) in settings.iter().enumerate() {
            let setting_path = format!("{settings_path}[{i}]");
            let parameter = get_str(setting, "parameter", &setting_path)?;
            let value = value_from_json_at(
                require(setting, "value", &setting_path)?,
                &child(&setting_path, "value"),
            )?;
            action = action.with_setting(parameter, value);
        }
    }
    Ok(action)
}

fn setting_to_json(setting: &Setting) -> Json {
    Json::obj(vec![
        ("parameter", Json::str(setting.parameter())),
        ("value", value_to_json(setting.value())),
    ])
}

/// Serializes a typed value (settings, state atoms) to a JSON value.
pub fn value_to_json(value: &Value) -> Json {
    match value {
        Value::Number(q) => Json::obj(vec![
            ("number", rational_to_json(q.value())),
            ("unit", Json::str(unit_name(q.unit()))),
        ]),
        Value::Bool(b) => Json::Bool(*b),
        Value::Text(t) => Json::str(t),
        Value::Place(p) => Json::obj(vec![("place", Json::str(p.as_str()))]),
        Value::Time(t) => Json::obj(vec![("time", Json::Int(t.minutes() as i64))]),
        other => Json::obj(vec![("text", Json::str(other.to_string()))]),
    }
}

/// Parses a typed value from a JSON value.
///
/// # Errors
///
/// Returns [`RuleError::Serialization`] on an out-of-schema value.
pub fn value_from_json(doc: &Json) -> Result<Value, RuleError> {
    value_from_json_at(doc, "$")
}

fn value_from_json_at(doc: &Json, path: &str) -> Result<Value, RuleError> {
    if let Some(b) = doc.as_bool() {
        return Ok(Value::Bool(b));
    }
    if let Some(s) = doc.as_str() {
        return Ok(Value::Text(s.to_owned()));
    }
    if let Some(number) = doc.get("number") {
        let value = rational_from_json_at(number, &child(path, "number"))?;
        let unit = unit_from_name(get_str(doc, "unit", path)?, &child(path, "unit"))?;
        return Ok(Value::Number(Quantity::new(value, unit)));
    }
    if let Some(place) = doc.get("place") {
        return Ok(Value::Place(PlaceId::new(str_of(
            place,
            &child(path, "place"),
        )?)));
    }
    if let Some(time) = doc.get("time") {
        let minutes = time
            .as_int()
            .ok_or_else(|| bad(&child(path, "time"), "must be minutes since midnight"))?;
        return Ok(Value::Time(minutes_of(minutes, &child(path, "time"))?));
    }
    Err(bad(path, "unrecognized value"))
}

fn rational_to_json(r: Rational) -> Json {
    if r.is_integer() {
        if let Ok(n) = i64::try_from(r.numer()) {
            return Json::Int(n);
        }
    }
    Json::Str(format!("{}/{}", r.numer(), r.denom()))
}

fn rational_from_json_at(doc: &Json, path: &str) -> Result<Rational, RuleError> {
    if let Some(n) = doc.as_int() {
        return Ok(Rational::from_integer(n));
    }
    if let Some(text) = doc.as_str() {
        let (numer, denom) = match text.split_once('/') {
            Some((n, d)) => (n, d),
            None => (text, "1"),
        };
        let numer: i128 = numer
            .trim()
            .parse()
            .map_err(|_| bad(path, "invalid rational numerator"))?;
        let denom: i128 = denom
            .trim()
            .parse()
            .map_err(|_| bad(path, "invalid rational denominator"))?;
        if denom == 0 {
            return Err(bad(path, "rational denominator must be non-zero"));
        }
        return Ok(Rational::new(numer, denom));
    }
    Err(bad(path, "expected an integer or \"n/d\" rational"))
}

fn op_symbol(op: RelOp) -> &'static str {
    match op {
        RelOp::Le => "<=",
        RelOp::Lt => "<",
        RelOp::Ge => ">=",
        RelOp::Gt => ">",
        RelOp::Eq => "=",
    }
}

fn op_from_symbol(symbol: &str, path: &str) -> Result<RelOp, RuleError> {
    match symbol {
        "<=" => Ok(RelOp::Le),
        "<" => Ok(RelOp::Lt),
        ">=" => Ok(RelOp::Ge),
        ">" => Ok(RelOp::Gt),
        "=" | "==" => Ok(RelOp::Eq),
        other => Err(bad(path, format!("unknown comparison operator '{other}'"))),
    }
}

fn unit_name(unit: Unit) -> &'static str {
    match unit {
        Unit::Celsius => "celsius",
        Unit::Fahrenheit => "fahrenheit",
        Unit::Percent => "percent",
        Unit::Lux => "lux",
        Unit::Decibel => "decibel",
        Unit::Seconds => "seconds",
        Unit::Count => "count",
        _ => "unitless",
    }
}

fn unit_from_name(name: &str, path: &str) -> Result<Unit, RuleError> {
    match name {
        "celsius" => Ok(Unit::Celsius),
        "fahrenheit" => Ok(Unit::Fahrenheit),
        "percent" => Ok(Unit::Percent),
        "lux" => Ok(Unit::Lux),
        "decibel" => Ok(Unit::Decibel),
        "seconds" => Ok(Unit::Seconds),
        "count" => Ok(Unit::Count),
        "unitless" => Ok(Unit::Unitless),
        other => Err(bad(path, format!("unknown unit '{other}'"))),
    }
}

fn minutes_of(minutes: i64, path: &str) -> Result<TimeOfDay, RuleError> {
    let minutes =
        u32::try_from(minutes).map_err(|_| bad(path, "minutes-of-day must be non-negative"))?;
    if minutes >= 24 * 60 {
        return Err(bad(path, "minutes-of-day must be below 1440"));
    }
    Ok(TimeOfDay::from_minutes(minutes))
}

/// Extends a JSON path with an object member.
fn child(path: &str, key: &str) -> String {
    format!("{path}.{key}")
}

fn require<'a>(doc: &'a Json, key: &str, path: &str) -> Result<&'a Json, RuleError> {
    doc.get(key)
        .ok_or_else(|| bad(path, format!("missing field '{key}'")))
}

fn get_str<'a>(doc: &'a Json, key: &str, path: &str) -> Result<&'a str, RuleError> {
    str_of(require(doc, key, path)?, &child(path, key))
}

fn str_of<'a>(doc: &'a Json, path: &str) -> Result<&'a str, RuleError> {
    doc.as_str().ok_or_else(|| bad(path, "must be a string"))
}

fn get_int(doc: &Json, key: &str, path: &str) -> Result<i64, RuleError> {
    require(doc, key, path)?
        .as_int()
        .ok_or_else(|| bad(&child(path, key), "must be an integer"))
}

fn bad(path: &str, message: impl AsRef<str>) -> RuleError {
    RuleError::Serialization(format!("at {path}: {}", message.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::Quantity;

    fn sample_rule(id: u64) -> Rule {
        let cond = Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            SensorKey::new(DeviceId::new("thermo"), "temperature"),
            RelOp::Gt,
            Quantity::new(Rational::new(53, 2), Unit::Celsius),
        )))
        .and(Condition::Or(vec![
            Condition::Atom(Atom::Presence(PresenceAtom::person_at(
                "tom",
                "living room",
            ))),
            Condition::Atom(Atom::held_for(
                Atom::State(StateAtom::new(
                    DeviceId::new("door"),
                    "locked",
                    Value::Bool(false),
                )),
                SimDuration::from_minutes(60),
            )),
        ]));
        Rule::builder(PersonId::new("tom"))
            .label("cool the living room")
            .condition(cond)
            .until(Condition::Atom(Atom::Time(TimeWindow::new(
                TimeOfDay::hm(22, 0).unwrap(),
                TimeOfDay::hm(6, 0).unwrap(),
            ))))
            .action(
                ActionSpec::new(DeviceId::new("aircon"), Verb::TurnOn).with_setting(
                    "temperature",
                    Value::Number(Quantity::from_integer(24, Unit::Celsius)),
                ),
            )
            .build(RuleId::new(id))
            .unwrap()
    }

    #[test]
    fn rule_round_trips_exactly() {
        let rule = sample_rule(7);
        let json = rules_to_json([&rule]);
        let restored = rules_from_json(&json).unwrap();
        assert_eq!(restored.len(), 1);
        let r = &restored[0];
        assert_eq!(r.id(), rule.id());
        assert_eq!(r.owner(), rule.owner());
        assert_eq!(r.label(), rule.label());
        assert_eq!(r.condition(), rule.condition());
        assert_eq!(r.until(), rule.until());
        assert_eq!(r.action(), rule.action());
        assert_eq!(r.is_enabled(), rule.is_enabled());
    }

    #[test]
    fn disabled_flag_survives() {
        let rule = sample_rule(1).with_enabled(false);
        let restored = rules_from_json(&rules_to_json([&rule])).unwrap();
        assert!(!restored[0].is_enabled());
    }

    #[test]
    fn every_atom_kind_round_trips() {
        let atoms = vec![
            Atom::Event(EventAtom::new("TV-Guide", "Baseball Game")),
            Atom::Presence(PresenceAtom::new(Subject::Somebody, PlaceId::new("home"))),
            Atom::Presence(PresenceAtom::new(Subject::Nobody, PlaceId::new("hall"))),
            Atom::Weekday(Weekday::ALL[3]),
            Atom::Date(Date::new(2005, 6, 6).unwrap()),
            Atom::Time(TimeWindow::new(
                TimeOfDay::hm(9, 30).unwrap(),
                TimeOfDay::hm(17, 0).unwrap(),
            )),
        ];
        for atom in atoms {
            let doc = atom_to_json(&atom);
            assert_eq!(atom_from_json_at(&doc, "$").unwrap(), atom, "{atom:?}");
        }
    }

    #[test]
    fn non_integer_thresholds_stay_exact() {
        let doc = rational_to_json(Rational::new(-7, 3));
        assert_eq!(doc, Json::Str("-7/3".to_owned()));
        assert_eq!(
            rational_from_json_at(&doc, "$").unwrap(),
            Rational::new(-7, 3)
        );
    }

    #[test]
    fn custom_verbs_round_trip() {
        let action = ActionSpec::new(DeviceId::new("tv"), Verb::Custom("mute".into()));
        let restored = action_from_json(&action_to_json(&action)).unwrap();
        assert_eq!(restored.verb(), &Verb::Custom("mute".to_owned()));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(rules_from_json("not json").is_err());
        assert!(rules_from_json("{}").is_err());
        assert!(rules_from_json(r#"[{"id": 1}]"#).is_err());
        assert!(
            rules_from_json(
                r#"[{"id":1,"owner":"t","condition":{"type":"warp"},"action":{"device":"tv","verb":"turn on"}}]"#
            )
            .is_err()
        );
    }

    /// Parse failures name the JSON path of the offending field, so a
    /// rejected WAL record or import points at what actually broke.
    #[test]
    fn parse_errors_carry_the_json_path() {
        let err = |text: &str| match rules_from_json(text) {
            Err(RuleError::Serialization(message)) => message,
            other => panic!("expected a serialization error, got {other:?}"),
        };

        let message = err(r#"[{"id": 1}]"#);
        assert!(message.contains("at $[0]"), "{message}");
        assert!(message.contains("missing field 'owner'"), "{message}");

        let message = err(
            r#"[{"id":1,"owner":"t","condition":{"type":"warp"},"action":{"device":"tv","verb":"turn on"}}]"#,
        );
        assert!(message.contains("at $[0].condition.type"), "{message}");
        assert!(message.contains("unknown atom type 'warp'"), "{message}");

        let message = err(
            r#"[{"id":1,"owner":"t","condition":{"all":[true,{"type":"event","channel":"c"}]},"action":{"device":"tv","verb":"turn on"}}]"#,
        );
        assert!(message.contains("at $[0].condition.all[1]"), "{message}");
        assert!(message.contains("missing field 'name'"), "{message}");

        let message = err(
            r#"[{"id":1,"owner":"t","condition":true,"action":{"device":"tv","verb":{"custom":7}}}]"#,
        );
        assert!(message.contains("at $[0].action.verb.custom"), "{message}");
        assert!(message.contains("must be a string"), "{message}");
    }
}
