//! Errors produced while building, normalizing or storing rules.

use cadel_types::RuleId;
use std::error::Error;
use std::fmt;

/// Errors raised by the rule-object layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuleError {
    /// Normalizing a condition to DNF would exceed the conjunct budget —
    /// the condition is too complex to check or evaluate efficiently.
    ConditionTooComplex {
        /// Number of conjuncts the normalization would have produced.
        conjuncts: usize,
        /// The configured maximum.
        limit: usize,
    },
    /// A rule id was not found in the database.
    UnknownRule(RuleId),
    /// A rule with this id already exists (import collision).
    DuplicateRule(RuleId),
    /// A quantity with the wrong dimension was used as a threshold or
    /// setting (e.g. percent compared against a temperature sensor).
    DimensionMismatch {
        /// Human-readable description of where the mismatch occurred.
        context: String,
    },
    /// Import/export serialization failed.
    Serialization(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::ConditionTooComplex { conjuncts, limit } => write!(
                f,
                "condition expands to {conjuncts} conjuncts, exceeding the limit of {limit}"
            ),
            RuleError::UnknownRule(id) => write!(f, "no rule with id {id}"),
            RuleError::DuplicateRule(id) => write!(f, "a rule with id {id} already exists"),
            RuleError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            RuleError::Serialization(msg) => write!(f, "serialization failed: {msg}"),
        }
    }
}

impl Error for RuleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<RuleError>();
    }

    #[test]
    fn messages_mention_key_facts() {
        let e = RuleError::ConditionTooComplex {
            conjuncts: 1000,
            limit: 256,
        };
        assert!(e.to_string().contains("1000"));
        assert!(e.to_string().contains("256"));
        assert!(RuleError::UnknownRule(RuleId::new(3))
            .to_string()
            .contains("rule#3"));
    }
}
