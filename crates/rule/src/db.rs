//! The rule database: storage, per-device index, compiled programs, and
//! import/export.
//!
//! The home server's conflict check begins by "extract\[ing\] from the
//! database the set of rules which control the same device" (paper §4.4) —
//! that extraction is served by the [`RuleDb::rules_for_device`] index and
//! is the first timed phase of experiment E2.
//!
//! Alongside each source [`Rule`], the database keeps the rule's compiled
//! [`RuleProgram`] (built on registration against a shared
//! [`Interner`](cadel_ir::Interner))
//! and a monotonically increasing *revision* stamp. The engine evaluates
//! the program instead of re-walking the condition tree; the conflict
//! checker keys its pairwise memoization on revisions.

use crate::compile::compile_rule;
use crate::error::RuleError;
use crate::rule::{Rule, RuleBuilder};
use cadel_ir::{ProgramArena, ProgramRef, RuleProgram, SharedInterner};
use cadel_obs::{Event, LazyCounter, LazyHistogram, Level, Stopwatch};
use cadel_types::{DeviceId, PersonId, RuleId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Rules lowered to a program on storage (register, insert, import).
static LOWERED: LazyCounter = LazyCounter::new("rule_lower_total");
/// Lowerings that failed (rule stored for AST interpretation instead).
static LOWER_FAILURES: LazyCounter = LazyCounter::new("rule_lower_failures_total");
/// Wall-clock latency of lowering one rule to its compiled program.
static LOWER_NS: LazyHistogram = LazyHistogram::new("rule_lower_duration_ns");

/// A rule with its compiled artifact and revision stamp.
#[derive(Clone, Debug)]
struct StoredRule {
    rule: Rule,
    revision: u64,
    /// `None` when compilation failed (e.g. a dimension clash inside one
    /// conjunct); consumers fall back to interpreting the source rule.
    program: Option<Arc<RuleProgram>>,
}

/// An indexed store of compiled rules.
///
/// Cloning the database clones the rules but *shares* the interner: a clone
/// evaluates its programs against the same slot universe as the original.
///
/// # Example
///
/// ```
/// use cadel_rule::{RuleDb, Rule, ActionSpec, Verb, Condition};
/// use cadel_types::{DeviceId, PersonId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut db = RuleDb::new();
/// let id = db.register(
///     Rule::builder(PersonId::new("tom"))
///         .action(ActionSpec::new(DeviceId::new("stereo"), Verb::Play)),
/// )?;
/// assert_eq!(db.rules_for_device(&DeviceId::new("stereo")).len(), 1);
/// assert!(db.get(id).is_some());
/// assert!(db.program(id).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct RuleDb {
    rules: BTreeMap<RuleId, StoredRule>,
    by_device: HashMap<DeviceId, BTreeSet<RuleId>>,
    by_owner: HashMap<PersonId, BTreeSet<RuleId>>,
    next_id: RuleId,
    interner: SharedInterner,
    next_revision: u64,
    /// Compiled programs in contiguous SoA layout, appended alongside the
    /// per-rule `Arc<RuleProgram>` at compile time. The engine's hot path
    /// and inverted indexes read rules through the arena; the `Arc`s stay
    /// for the conflict checker and public API.
    arena: ProgramArena,
}

impl RuleDb {
    /// Creates an empty database.
    pub fn new() -> RuleDb {
        RuleDb::default()
    }

    /// Number of stored rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The interner compiled programs resolve their slots against. The
    /// engine's context store attaches to it to keep its dense boards in
    /// sync.
    pub fn interner(&self) -> &SharedInterner {
        &self.interner
    }

    /// Finalizes a builder under a freshly allocated id and stores the
    /// rule, compiling it to a program.
    ///
    /// # Errors
    ///
    /// Propagates [`RuleBuilder::build`] errors (over-complex condition,
    /// missing action).
    pub fn register(&mut self, builder: RuleBuilder) -> Result<RuleId, RuleError> {
        let id = self.allocate_id();
        let rule = builder.build(id)?;
        self.index(&rule);
        let stored = self.compile(rule);
        self.rules.insert(id, stored);
        Ok(id)
    }

    /// Inserts an already-built rule, keeping its id (import path).
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::DuplicateRule`] if the id is taken.
    pub fn insert(&mut self, rule: Rule) -> Result<(), RuleError> {
        if self.rules.contains_key(&rule.id()) {
            return Err(RuleError::DuplicateRule(rule.id()));
        }
        if rule.id() >= self.next_id {
            self.next_id = rule.id().next();
        }
        self.index(&rule);
        let stored = self.compile(rule);
        self.rules.insert(stored.rule.id(), stored);
        Ok(())
    }

    /// Inserts an already-built rule, allocating a fresh id if the rule's
    /// own id is already taken (restore/merge path). Returns the id the
    /// rule ended up under and whether it was remapped.
    ///
    /// Unlike [`RuleDb::insert`], a collision is not an error — but it is
    /// never a silent overwrite either: the incumbent rule keeps its id
    /// and the newcomer moves.
    ///
    /// # Errors
    ///
    /// Propagates [`RuleBuilder::build`] errors from re-stamping the rule
    /// under its new id.
    pub fn insert_remapped(&mut self, rule: Rule) -> Result<(RuleId, bool), RuleError> {
        if !self.rules.contains_key(&rule.id()) {
            let id = rule.id();
            self.insert(rule)?;
            return Ok((id, false));
        }
        let id = self.allocate_id();
        let owner = rule.owner().clone();
        let rule = rule.reassigned(id, owner);
        self.insert(rule)?;
        Ok((id, true))
    }

    /// Replaces an existing rule in place (customization path), keeping
    /// its id. The replacement is recompiled and stamped with a **fresh
    /// revision**, so anything memoized against the old `(id, revision)`
    /// pair — notably pairwise conflict verdicts — is invalidated.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::UnknownRule`] if no rule holds this id.
    pub fn replace(&mut self, rule: Rule) -> Result<(), RuleError> {
        if !self.rules.contains_key(&rule.id()) {
            return Err(RuleError::UnknownRule(rule.id()));
        }
        self.remove(rule.id())?;
        self.insert(rule)
    }

    /// Compiles a rule and stamps it with a fresh revision. Compilation
    /// failure (a dimension clash) is not a storage error: the source rule
    /// stays usable and consumers interpret it directly.
    fn compile(&mut self, rule: Rule) -> StoredRule {
        let sw = Stopwatch::start();
        let mut interner = self.interner.write().expect("interner lock poisoned");
        let program = compile_rule(&rule, &mut interner).ok().map(Arc::new);
        if let Some(program) = &program {
            // Appended under the same lock the program was compiled under,
            // so the arena's interned footprint matches the program's slots.
            self.arena.insert(rule.id(), program, &mut interner);
        }
        drop(interner);
        LOWER_NS.record(&sw);
        LOWERED.inc();
        if program.is_none() {
            LOWER_FAILURES.inc();
            if cadel_obs::enabled() {
                cadel_obs::emit(
                    Event::new("rule.lower_failed", Level::Warn)
                        .with_field("rule", rule.id().raw())
                        .with_field("owner", rule.owner().as_str()),
                );
            }
        }
        self.next_revision += 1;
        StoredRule {
            rule,
            revision: self.next_revision,
            program,
        }
    }

    /// Allocates the next free rule id without storing anything.
    pub fn allocate_id(&mut self) -> RuleId {
        let id = self.next_id;
        self.next_id = self.next_id.next();
        id
    }

    /// The id the next allocation would hand out, without allocating.
    ///
    /// Persisted in snapshots so a recovered database resumes the same
    /// allocation sequence even when ids were burned on rejected rules.
    pub fn next_id(&self) -> RuleId {
        self.next_id
    }

    /// Advances the allocator so the next id is at least `at_least`.
    /// Never moves it backwards (restore path).
    pub fn ensure_next_id(&mut self, at_least: RuleId) {
        if at_least > self.next_id {
            self.next_id = at_least;
        }
    }

    fn index(&mut self, rule: &Rule) {
        self.by_device
            .entry(rule.action().device().clone())
            .or_default()
            .insert(rule.id());
        self.by_owner
            .entry(rule.owner().clone())
            .or_default()
            .insert(rule.id());
    }

    /// Removes a rule.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::UnknownRule`] if absent.
    pub fn remove(&mut self, id: RuleId) -> Result<Rule, RuleError> {
        let stored = self.rules.remove(&id).ok_or(RuleError::UnknownRule(id))?;
        self.arena.remove(id);
        let rule = stored.rule;
        if let Some(set) = self.by_device.get_mut(rule.action().device()) {
            set.remove(&id);
            if set.is_empty() {
                self.by_device.remove(rule.action().device());
            }
        }
        if let Some(set) = self.by_owner.get_mut(rule.owner()) {
            set.remove(&id);
            if set.is_empty() {
                self.by_owner.remove(rule.owner());
            }
        }
        Ok(rule)
    }

    /// Looks up a rule by id.
    pub fn get(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(&id).map(|s| &s.rule)
    }

    /// The compiled program of a rule, when compilation succeeded.
    pub fn program(&self, id: RuleId) -> Option<&Arc<RuleProgram>> {
        self.rules.get(&id).and_then(|s| s.program.as_ref())
    }

    /// The arena holding every compiled program in contiguous SoA layout.
    pub fn arena(&self) -> &ProgramArena {
        &self.arena
    }

    /// A rule's span record in the arena, when compilation succeeded.
    /// Invalidated by the next database mutation.
    pub fn program_ref(&self, id: RuleId) -> Option<&ProgramRef> {
        self.arena.program_ref(id)
    }

    /// The revision stamp of a rule: unique per stored artifact, so a
    /// `(id, revision)` pair identifies a rule's exact compiled content
    /// (re-inserting after removal yields a new revision).
    pub fn revision(&self, id: RuleId) -> Option<u64> {
        self.rules.get(&id).map(|s| s.revision)
    }

    /// Iterates over all rules in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.values().map(|s| &s.rule)
    }

    /// The rules whose action targets `device`, in id order — the
    /// extraction step of the paper's conflict check.
    pub fn rules_for_device(&self, device: &DeviceId) -> Vec<&Rule> {
        self.by_device
            .get(device)
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| self.rules.get(id).map(|s| &s.rule))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The rules registered by `owner`, in id order.
    pub fn rules_of_owner(&self, owner: &PersonId) -> Vec<&Rule> {
        self.by_owner
            .get(owner)
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| self.rules.get(id).map(|s| &s.rule))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All devices that at least one rule targets.
    pub fn targeted_devices(&self) -> Vec<&DeviceId> {
        let mut devices: Vec<_> = self.by_device.keys().collect();
        devices.sort();
        devices
    }

    /// Serializes all rules to pretty JSON (paper §4.3(iv): export).
    ///
    /// # Errors
    ///
    /// Infallible today; the `Result` is kept for API stability.
    pub fn export_json(&self) -> Result<String, RuleError> {
        Ok(crate::codec::rules_to_json(self.iter()))
    }

    /// Parses rules from JSON produced by [`RuleDb::export_json`] and
    /// inserts them.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::Serialization`] on malformed JSON and
    /// [`RuleError::DuplicateRule`] on id collisions (rules inserted before
    /// the collision remain inserted).
    pub fn import_json(&mut self, json: &str) -> Result<Vec<RuleId>, RuleError> {
        let rules = crate::codec::rules_from_json(json)?;
        let mut ids = Vec::with_capacity(rules.len());
        for rule in rules {
            let id = rule.id();
            self.insert(rule)?;
            ids.push(id);
        }
        Ok(ids)
    }
}

/// Serialization proxy so the database round-trips as a flat rule list.
#[cfg(feature = "serde")]
impl serde::Serialize for RuleDb {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let rules: Vec<&Rule> = self.iter().collect();
        rules.serialize(serializer)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for RuleDb {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let rules = Vec::<Rule>::deserialize(deserializer)?;
        let mut db = RuleDb::new();
        for rule in rules {
            db.insert(rule).map_err(serde::de::Error::custom)?;
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, ConstraintAtom, EventAtom};
    use crate::{ActionSpec, Condition, Verb};
    use cadel_simplex::RelOp;
    use cadel_types::{Quantity, SensorKey, Unit};

    fn builder(owner: &str, device: &str, event: &str) -> RuleBuilder {
        Rule::builder(PersonId::new(owner))
            .condition(Condition::Atom(Atom::Event(EventAtom::new(
                "tv-guide", event,
            ))))
            .action(ActionSpec::new(DeviceId::new(device), Verb::TurnOn))
    }

    #[test]
    fn register_allocates_sequential_ids() {
        let mut db = RuleDb::new();
        let a = db.register(builder("tom", "stereo", "e1")).unwrap();
        let b = db.register(builder("alan", "tv", "e2")).unwrap();
        assert_eq!(a.raw() + 1, b.raw());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn registration_compiles_a_program_and_interns_names() {
        let mut db = RuleDb::new();
        let id = db.register(builder("tom", "stereo", "jazz")).unwrap();
        let program = db.program(id).expect("compiled");
        assert_eq!(program.preds().len(), 1);
        assert_eq!(db.interner().read().unwrap().event_count(), 1);
        assert!(db.revision(id).is_some());
    }

    #[test]
    fn revisions_are_unique_per_artifact() {
        let mut db = RuleDb::new();
        let a = db.register(builder("tom", "tv", "a")).unwrap();
        let b = db.register(builder("tom", "tv", "b")).unwrap();
        assert_ne!(db.revision(a), db.revision(b));
        // Re-inserting after removal re-stamps.
        let r1 = db.revision(a).unwrap();
        let rule = db.remove(a).unwrap();
        db.insert(rule).unwrap();
        assert_ne!(db.revision(a), Some(r1));
    }

    #[test]
    fn uncompilable_rules_are_stored_without_a_program() {
        // One conjunct constraining the same sensor as °C and % cannot be
        // compiled, but registration still succeeds (AST fallback).
        let key = SensorKey::new(DeviceId::new("multi"), "reading");
        let clash = Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            key.clone(),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        )))
        .and(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
            key,
            RelOp::Lt,
            Quantity::from_integer(60, Unit::Percent),
        ))));
        let mut db = RuleDb::new();
        let id = db
            .register(
                Rule::builder(PersonId::new("tom"))
                    .condition(clash)
                    .action(ActionSpec::new(DeviceId::new("tv"), Verb::TurnOn)),
            )
            .unwrap();
        assert!(db.get(id).is_some());
        assert!(db.program(id).is_none());
    }

    #[test]
    fn device_index_serves_extraction() {
        let mut db = RuleDb::new();
        for i in 0..10 {
            let device = if i % 3 == 0 { "tv" } else { "stereo" };
            db.register(builder("tom", device, &format!("e{i}")))
                .unwrap();
        }
        let tv_rules = db.rules_for_device(&DeviceId::new("tv"));
        assert_eq!(tv_rules.len(), 4);
        assert!(tv_rules
            .iter()
            .all(|r| r.action().device().as_str() == "tv"));
        assert!(db.rules_for_device(&DeviceId::new("toaster")).is_empty());
        assert_eq!(db.targeted_devices().len(), 2);
    }

    #[test]
    fn owner_index() {
        let mut db = RuleDb::new();
        db.register(builder("tom", "tv", "a")).unwrap();
        db.register(builder("alan", "tv", "b")).unwrap();
        db.register(builder("tom", "stereo", "c")).unwrap();
        assert_eq!(db.rules_of_owner(&PersonId::new("tom")).len(), 2);
        assert_eq!(db.rules_of_owner(&PersonId::new("emily")).len(), 0);
    }

    #[test]
    fn remove_updates_indices() {
        let mut db = RuleDb::new();
        let id = db.register(builder("tom", "tv", "a")).unwrap();
        db.register(builder("tom", "tv", "b")).unwrap();
        let removed = db.remove(id).unwrap();
        assert_eq!(removed.id(), id);
        assert_eq!(db.rules_for_device(&DeviceId::new("tv")).len(), 1);
        assert_eq!(db.rules_of_owner(&PersonId::new("tom")).len(), 1);
        assert!(matches!(db.remove(id), Err(RuleError::UnknownRule(_))));
        assert!(db.program(id).is_none());
        assert!(db.revision(id).is_none());
    }

    #[test]
    fn insert_rejects_duplicates_and_advances_ids() {
        let mut db = RuleDb::new();
        let rule = builder("tom", "tv", "a").build(RuleId::new(41)).unwrap();
        db.insert(rule.clone()).unwrap();
        assert!(matches!(db.insert(rule), Err(RuleError::DuplicateRule(_))));
        // Fresh registrations continue past the imported id.
        let next = db.register(builder("tom", "tv", "b")).unwrap();
        assert!(next.raw() > 41);
    }

    #[test]
    fn insert_remapped_moves_the_newcomer_not_the_incumbent() {
        let mut db = RuleDb::new();
        let incumbent = builder("tom", "tv", "a").build(RuleId::new(5)).unwrap();
        db.insert(incumbent).unwrap();

        let newcomer = builder("emily", "stereo", "b")
            .build(RuleId::new(5))
            .unwrap();
        let (id, remapped) = db.insert_remapped(newcomer).unwrap();
        assert!(remapped);
        assert_ne!(id, RuleId::new(5));
        // The incumbent is untouched; the newcomer landed whole.
        assert_eq!(db.get(RuleId::new(5)).unwrap().owner().as_str(), "tom");
        assert_eq!(db.get(id).unwrap().owner().as_str(), "emily");
        assert!(db.program(id).is_some());

        // No collision → no remap.
        let free = builder("tom", "tv", "c").build(RuleId::new(90)).unwrap();
        assert_eq!(db.insert_remapped(free).unwrap(), (RuleId::new(90), false));
    }

    #[test]
    fn replace_bumps_the_revision_so_memoized_verdicts_die() {
        let mut db = RuleDb::new();
        let id = db.register(builder("tom", "tv", "a")).unwrap();
        let before = db.revision(id).unwrap();

        // A conflict memo keyed on (id, revision) would now be stale:
        // the replacement carries different behaviour under the same id.
        let replacement = builder("tom", "tv", "b").build(id).unwrap();
        db.replace(replacement).unwrap();
        let after = db.revision(id).unwrap();
        assert_ne!(before, after, "replacement must re-stamp the revision");
        assert!(after > before);
        // Indices track the replacement, and it is recompiled.
        assert_eq!(db.rules_for_device(&DeviceId::new("tv")).len(), 1);
        assert!(db.program(id).is_some());
        // Replacing a missing id is an error, not an insert.
        let ghost = builder("tom", "tv", "c").build(RuleId::new(77)).unwrap();
        assert!(matches!(db.replace(ghost), Err(RuleError::UnknownRule(_))));
    }

    #[test]
    fn next_id_survives_ensure_and_never_regresses() {
        let mut db = RuleDb::new();
        db.register(builder("tom", "tv", "a")).unwrap();
        let next = db.next_id();
        db.ensure_next_id(RuleId::new(100));
        assert_eq!(db.next_id(), RuleId::new(100));
        db.ensure_next_id(next); // lower: no-op
        assert_eq!(db.next_id(), RuleId::new(100));
        assert_eq!(db.allocate_id(), RuleId::new(100));
    }

    #[test]
    fn arena_tracks_insert_replace_remove() {
        let mut db = RuleDb::new();
        let a = db.register(builder("tom", "tv", "a")).unwrap();
        let b = db.register(builder("tom", "stereo", "b")).unwrap();
        assert_eq!(db.arena().len(), 2);
        assert!(db.program_ref(a).is_some());

        // The arena footprint reflects the compiled predicates.
        let r = *db.program_ref(a).unwrap();
        assert_eq!(db.arena().channel_slots(&r).len(), 1);
        assert!(db.arena().sensor_slots(&r).is_empty());

        db.remove(a).unwrap();
        assert!(db.program_ref(a).is_none());
        assert_eq!(db.arena().len(), 1);

        // Replace rebuilds the span under the same id.
        let replacement = builder("tom", "stereo", "c").build(b).unwrap();
        db.replace(replacement).unwrap();
        assert!(db.program_ref(b).is_some());
        assert_eq!(db.arena().len(), 1);
    }

    #[test]
    fn export_import_round_trip() {
        let mut db = RuleDb::new();
        db.register(builder("tom", "stereo", "jazz")).unwrap();
        db.register(builder("emily", "tv", "movie")).unwrap();
        let json = db.export_json().unwrap();

        let mut restored = RuleDb::new();
        let ids = restored.import_json(&json).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.rules_for_device(&DeviceId::new("tv")).len(), 1);
        // Imported rules are compiled too.
        assert!(ids.iter().all(|id| restored.program(*id).is_some()));
        // Importing the same JSON again collides.
        assert!(restored.import_json(&json).is_err());
    }

    #[test]
    fn import_rejects_malformed_json() {
        let mut db = RuleDb::new();
        assert!(matches!(
            db.import_json("not json"),
            Err(RuleError::Serialization(_))
        ));
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip_of_whole_db() {
        let mut db = RuleDb::new();
        db.register(builder("tom", "stereo", "jazz")).unwrap();
        let json = serde_json::to_string(&db).unwrap();
        let restored: RuleDb = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.len(), 1);
    }
}
