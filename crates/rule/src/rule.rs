//! The rule object: a compiled, executable CADEL rule.

use crate::action::ActionSpec;
use crate::condition::{Condition, Dnf};
use crate::error::RuleError;
use cadel_types::{PersonId, RuleId};
use std::fmt;

/// A compiled rule: *when the condition holds, perform the action* —
/// optionally bounded by an `until` condition that releases the action.
///
/// Rules are immutable once built. The DNF of the condition is computed at
/// build time (so registration fails fast on over-complex conditions) and
/// cached inside the rule for the conflict checker and the runtime
/// evaluator.
///
/// # Example
///
/// ```
/// use cadel_rule::{Rule, ActionSpec, Verb, Condition, Atom, ConstraintAtom};
/// use cadel_simplex::RelOp;
/// use cadel_types::{DeviceId, PersonId, Quantity, RuleId, SensorKey, Unit};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let hot = Atom::Constraint(ConstraintAtom::new(
///     SensorKey::new(DeviceId::new("thermo"), "temperature"),
///     RelOp::Gt,
///     Quantity::from_integer(26, Unit::Celsius),
/// ));
/// let rule = Rule::builder(PersonId::new("tom"))
///     .condition(Condition::Atom(hot))
///     .action(ActionSpec::new(DeviceId::new("aircon"), Verb::TurnOn)
///         .with_setting("temperature", Quantity::from_integer(25, Unit::Celsius)))
///     .label("If it is hot, turn on the air conditioner with 25 degrees")
///     .build(RuleId::new(1))?;
/// assert_eq!(rule.owner().as_str(), "tom");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rule {
    id: RuleId,
    owner: PersonId,
    label: Option<String>,
    condition: Condition,
    dnf: Dnf,
    action: ActionSpec,
    until: Option<Condition>,
    enabled: bool,
}

impl Rule {
    /// Starts building a rule owned by `owner`.
    pub fn builder(owner: PersonId) -> RuleBuilder {
        RuleBuilder {
            owner,
            label: None,
            condition: Condition::True,
            action: None,
            until: None,
            enabled: true,
        }
    }

    /// The rule's identifier.
    pub fn id(&self) -> RuleId {
        self.id
    }

    /// The person who registered the rule.
    pub fn owner(&self) -> &PersonId {
        &self.owner
    }

    /// The human-readable source text (CADEL sentence), when recorded.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The condition tree.
    pub fn condition(&self) -> &Condition {
        &self.condition
    }

    /// The condition in disjunctive normal form (cached at build time).
    pub fn dnf(&self) -> &Dnf {
        &self.dnf
    }

    /// The action performed when the condition holds.
    pub fn action(&self) -> &ActionSpec {
        &self.action
    }

    /// The optional release condition ("until 10 pm", "until nobody is in
    /// the room").
    pub fn until(&self) -> Option<&Condition> {
        self.until.as_ref()
    }

    /// Whether the rule participates in evaluation.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns a copy with the enabled flag changed.
    #[must_use]
    pub fn with_enabled(mut self, enabled: bool) -> Rule {
        self.enabled = enabled;
        self
    }

    /// Returns a copy re-identified with a new id and owner — the
    /// import/customize path of paper §4.3(iv): a user imports another
    /// user's rule and adapts it.
    #[must_use]
    pub fn reassigned(mut self, id: RuleId, owner: PersonId) -> Rule {
        self.id = id;
        self.owner = owner;
        self
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(text) => write!(f, "{} [{}: {}]", self.id, self.owner, text),
            None => write!(
                f,
                "{} [{}: if {} then {}]",
                self.id, self.owner, self.condition, self.action
            ),
        }
    }
}

/// Incrementally configures a [`Rule`] (C-BUILDER).
#[derive(Clone, Debug)]
pub struct RuleBuilder {
    owner: PersonId,
    label: Option<String>,
    condition: Condition,
    action: Option<ActionSpec>,
    until: Option<Condition>,
    enabled: bool,
}

impl RuleBuilder {
    /// Sets the condition (replacing any previous one).
    #[must_use]
    pub fn condition(mut self, condition: Condition) -> RuleBuilder {
        self.condition = condition;
        self
    }

    /// Adds a conjunct to the existing condition.
    #[must_use]
    pub fn and_condition(mut self, condition: Condition) -> RuleBuilder {
        self.condition = std::mem::take(&mut self.condition).and(condition);
        self
    }

    /// Sets the action.
    #[must_use]
    pub fn action(mut self, action: ActionSpec) -> RuleBuilder {
        self.action = Some(action);
        self
    }

    /// Sets the release condition.
    #[must_use]
    pub fn until(mut self, until: Condition) -> RuleBuilder {
        self.until = Some(until);
        self
    }

    /// Records the original CADEL sentence for display and export.
    #[must_use]
    pub fn label(mut self, text: impl Into<String>) -> RuleBuilder {
        self.label = Some(text.into());
        self
    }

    /// Sets the initial enabled flag (default `true`).
    #[must_use]
    pub fn enabled(mut self, enabled: bool) -> RuleBuilder {
        self.enabled = enabled;
        self
    }

    /// Finalizes the rule under the given id.
    ///
    /// # Errors
    ///
    /// * [`RuleError::ConditionTooComplex`] if the condition's DNF exceeds
    ///   the conjunct budget.
    /// * [`RuleError::DimensionMismatch`] if no action was supplied (a rule
    ///   without an action is meaningless), reported with context.
    pub fn build(self, id: RuleId) -> Result<Rule, RuleError> {
        let action = self.action.ok_or_else(|| RuleError::DimensionMismatch {
            context: "rule has no action".to_owned(),
        })?;
        let dnf = self.condition.to_dnf()?;
        Ok(Rule {
            id,
            owner: self.owner,
            label: self.label,
            condition: self.condition,
            dnf,
            action,
            until: self.until,
            enabled: self.enabled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, EventAtom};
    use crate::Verb;
    use cadel_types::DeviceId;

    fn event(name: &str) -> Condition {
        Condition::Atom(Atom::Event(EventAtom::new("tv-guide", name)))
    }

    fn tv_on() -> ActionSpec {
        ActionSpec::new(DeviceId::new("tv"), Verb::TurnOn)
    }

    #[test]
    fn builder_produces_rule_with_cached_dnf() {
        let rule = Rule::builder(PersonId::new("alan"))
            .condition(event("baseball game").or(event("highlights")))
            .action(tv_on())
            .label("When a baseball game is on air, turn on the TV")
            .build(RuleId::new(1))
            .unwrap();
        assert_eq!(rule.dnf().conjuncts().len(), 2);
        assert_eq!(rule.owner().as_str(), "alan");
        assert!(rule.is_enabled());
        assert!(rule.until().is_none());
        assert!(rule.to_string().contains("baseball"));
    }

    #[test]
    fn build_without_action_fails() {
        let err = Rule::builder(PersonId::new("tom"))
            .condition(event("x"))
            .build(RuleId::new(1))
            .unwrap_err();
        assert!(err.to_string().contains("no action"));
    }

    #[test]
    fn and_condition_accumulates() {
        let rule = Rule::builder(PersonId::new("tom"))
            .and_condition(event("a"))
            .and_condition(event("b"))
            .action(tv_on())
            .build(RuleId::new(2))
            .unwrap();
        assert_eq!(rule.condition().atom_count(), 2);
        assert_eq!(rule.dnf().conjuncts().len(), 1);
    }

    #[test]
    fn reassignment_for_import() {
        let rule = Rule::builder(PersonId::new("alan"))
            .condition(event("movie"))
            .action(tv_on())
            .build(RuleId::new(3))
            .unwrap();
        let imported = rule
            .clone()
            .reassigned(RuleId::new(9), PersonId::new("emily"));
        assert_eq!(imported.id(), RuleId::new(9));
        assert_eq!(imported.owner().as_str(), "emily");
        assert_eq!(imported.condition(), rule.condition());
    }

    #[test]
    fn enabled_toggle() {
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(event("x"))
            .action(tv_on())
            .enabled(false)
            .build(RuleId::new(4))
            .unwrap();
        assert!(!rule.is_enabled());
        assert!(rule.with_enabled(true).is_enabled());
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let rule = Rule::builder(PersonId::new("emily"))
            .condition(event("movie"))
            .action(tv_on())
            .until(event("movie ends"))
            .build(RuleId::new(5))
            .unwrap();
        let json = serde_json::to_string(&rule).unwrap();
        assert_eq!(serde_json::from_str::<Rule>(&json).unwrap(), rule);
    }
}
