//! Rule objects: the compiled intermediate representation of CADEL rules.
//!
//! The paper (§4.1) stresses that the rule execution module "does not
//! execute rules by interpreting CADEL descriptions" — each description is
//! compiled into an equivalent *rule object*. This crate defines that
//! object model:
//!
//! * [`Atom`] — the primitive facts a condition can test: linear
//!   [`ConstraintAtom`]s over sensor values, presence of people at places,
//!   device states, ambient events ("a baseball game is on air"), time
//!   windows, weekday/date guards, and duration-qualified atoms ("door is
//!   unlocked **for 1 hour**").
//! * [`Condition`] — an and/or tree over atoms with normalization to
//!   disjunctive normal form ([`Dnf`]), the form both the conflict checker
//!   and the runtime evaluator consume.
//! * [`ActionSpec`] — the device command a rule issues: a [`Verb`], the
//!   target device, and configuration [`Setting`]s ("with 25 degrees of
//!   temperature setting").
//! * [`Rule`] — condition + action + owner + metadata, built via
//!   [`RuleBuilder`].
//! * [`RuleDb`] — the home server's rule database with the per-device
//!   index used by conflict extraction (experiment E2) and JSON
//!   import/export (paper §4.3(iv)).
//! * [`VarPool`] — interning of [`cadel_types::SensorKey`]s into solver
//!   [`VarId`](cadel_simplex::VarId)s plus conversion of conjuncts into
//!   `cadel-simplex` constraint systems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod atom;
pub mod codec;
pub mod compile;
pub mod condition;
pub mod convert;
pub mod db;
pub mod error;
pub mod rule;

pub use action::{ActionSpec, Setting, Verb};
pub use atom::{Atom, ConstraintAtom, EventAtom, PresenceAtom, StateAtom, Subject};
pub use compile::{compile_conjunct, compile_conjuncts, compile_rule};
pub use condition::{Condition, Conjunct, Dnf};
pub use convert::VarPool;
pub use db::RuleDb;
pub use error::RuleError;
pub use rule::{Rule, RuleBuilder};
