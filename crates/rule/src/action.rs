//! Actions: the device commands rules issue.

use cadel_types::{DeviceId, Value};
use std::fmt;

/// The verb of a CADEL rule (`<Verb>` in Table 1 of the paper).
///
/// The grammar's open alternative set is filled with the verbs needed by
/// the appliances in `cadel-devices`; anything else can be carried by
/// [`Verb::Custom`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Verb {
    /// "Turn on".
    TurnOn,
    /// "Turn off".
    TurnOff,
    /// "Record" (video recorder).
    Record,
    /// "Play" / "play back".
    Play,
    /// "Stop".
    Stop,
    /// "Lock" (door lock).
    Lock,
    /// "Unlock".
    Unlock,
    /// "Dim" (lights to a low level).
    Dim,
    /// "Brighten" (lights to a high level).
    Brighten,
    /// "Show" (display content on a screen).
    Show,
    /// "Notify" (pop-up / alert).
    Notify,
    /// "Set" (apply configuration settings only).
    Set,
    /// Any other verb, carried verbatim (lower-cased).
    Custom(String),
}

impl Verb {
    /// Parses a verb phrase, case-insensitive ("Turn on", "turn off",
    /// "record", …). Unknown phrases become [`Verb::Custom`].
    pub fn from_phrase(phrase: &str) -> Verb {
        match phrase.trim().to_ascii_lowercase().as_str() {
            "turn on" | "switch on" => Verb::TurnOn,
            "turn off" | "switch off" => Verb::TurnOff,
            "record" => Verb::Record,
            "play" | "play back" => Verb::Play,
            "stop" => Verb::Stop,
            "lock" => Verb::Lock,
            "unlock" => Verb::Unlock,
            "dim" => Verb::Dim,
            "brighten" => Verb::Brighten,
            "show" => Verb::Show,
            "notify" => Verb::Notify,
            "set" => Verb::Set,
            other => Verb::Custom(other.to_owned()),
        }
    }

    /// The canonical phrase for the verb.
    pub fn phrase(&self) -> &str {
        match self {
            Verb::TurnOn => "turn on",
            Verb::TurnOff => "turn off",
            Verb::Record => "record",
            Verb::Play => "play",
            Verb::Stop => "stop",
            Verb::Lock => "lock",
            Verb::Unlock => "unlock",
            Verb::Dim => "dim",
            Verb::Brighten => "brighten",
            Verb::Show => "show",
            Verb::Notify => "notify",
            Verb::Set => "set",
            Verb::Custom(s) => s,
        }
    }

    /// The verb that undoes this one, when one exists. Used by the engine
    /// when an `until`-bounded action expires.
    pub fn inverse(&self) -> Option<Verb> {
        match self {
            Verb::TurnOn => Some(Verb::TurnOff),
            Verb::TurnOff => Some(Verb::TurnOn),
            Verb::Play | Verb::Record => Some(Verb::Stop),
            Verb::Lock => Some(Verb::Unlock),
            Verb::Unlock => Some(Verb::Lock),
            _ => None,
        }
    }
}

impl fmt::Display for Verb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.phrase())
    }
}

/// One configuration setting from a `<Configuration>` clause:
/// "with **25 degrees of temperature setting**".
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Setting {
    parameter: String,
    value: Value,
}

impl Setting {
    /// Creates a setting for `parameter` (normalized to lower case).
    pub fn new(parameter: impl AsRef<str>, value: Value) -> Setting {
        Setting {
            parameter: parameter.as_ref().trim().to_ascii_lowercase(),
            value,
        }
    }

    /// The parameter name ("temperature", "channel", "volume", …).
    pub fn parameter(&self) -> &str {
        &self.parameter
    }

    /// The value to apply.
    pub fn value(&self) -> &Value {
        &self.value
    }
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} of {} setting", self.value, self.parameter)
    }
}

/// A fully-resolved device command: verb + target device + settings.
///
/// Two `ActionSpec`s *conflict* when they target the same device but
/// command different behaviour — the situation the paper's conflict check
/// exists to detect (§4.4).
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ActionSpec {
    device: DeviceId,
    verb: Verb,
    settings: Vec<Setting>,
}

impl ActionSpec {
    /// Creates an action with no settings.
    pub fn new(device: DeviceId, verb: Verb) -> ActionSpec {
        ActionSpec {
            device,
            verb,
            settings: Vec::new(),
        }
    }

    /// Adds a configuration setting (builder style).
    #[must_use]
    pub fn with_setting(
        mut self,
        parameter: impl AsRef<str>,
        value: impl Into<Value>,
    ) -> ActionSpec {
        self.settings.push(Setting::new(parameter, value.into()));
        self
    }

    /// The target device.
    pub fn device(&self) -> &DeviceId {
        &self.device
    }

    /// The verb.
    pub fn verb(&self) -> &Verb {
        &self.verb
    }

    /// The configuration settings.
    pub fn settings(&self) -> &[Setting] {
        &self.settings
    }

    /// Looks up a setting by parameter name (case-insensitive).
    pub fn setting(&self, parameter: &str) -> Option<&Value> {
        let p = parameter.trim().to_ascii_lowercase();
        self.settings
            .iter()
            .find(|s| s.parameter == p)
            .map(|s| s.value())
    }

    /// Whether this action commands *different behaviour* on the *same
    /// device* as `other` — the definition of a device conflict between
    /// two simultaneously-enabled rules.
    ///
    /// Same verb and same settings (regardless of setting order) are
    /// compatible; everything else on a shared device conflicts.
    pub fn conflicts_with(&self, other: &ActionSpec) -> bool {
        if self.device != other.device {
            return false;
        }
        if self.verb != other.verb {
            return true;
        }
        if self.settings.len() != other.settings.len() {
            return true;
        }
        // Order-insensitive settings comparison.
        self.settings.iter().any(|s| {
            other
                .setting(s.parameter())
                .map(|v| v != s.value())
                .unwrap_or(true)
        })
    }
}

impl fmt::Display for ActionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.verb, self.device)?;
        if !self.settings.is_empty() {
            f.write_str(" with ")?;
            for (i, s) in self.settings.iter().enumerate() {
                if i > 0 {
                    f.write_str(" and ")?;
                }
                write!(f, "{s}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::{Quantity, Unit};

    fn aircon() -> DeviceId {
        DeviceId::new("aircon")
    }

    #[test]
    fn verb_parsing() {
        assert_eq!(Verb::from_phrase("Turn on"), Verb::TurnOn);
        assert_eq!(Verb::from_phrase("TURN OFF"), Verb::TurnOff);
        assert_eq!(Verb::from_phrase("play back"), Verb::Play);
        assert_eq!(
            Verb::from_phrase("defenestrate"),
            Verb::Custom("defenestrate".into())
        );
    }

    #[test]
    fn verb_inverses() {
        assert_eq!(Verb::TurnOn.inverse(), Some(Verb::TurnOff));
        assert_eq!(Verb::Record.inverse(), Some(Verb::Stop));
        assert_eq!(Verb::Notify.inverse(), None);
    }

    #[test]
    fn settings_lookup_is_case_insensitive() {
        let a = ActionSpec::new(aircon(), Verb::TurnOn)
            .with_setting("Temperature", Quantity::from_integer(25, Unit::Celsius))
            .with_setting("humidity", Quantity::from_integer(60, Unit::Percent));
        assert!(a.setting("TEMPERATURE").is_some());
        assert!(a.setting("channel").is_none());
        assert_eq!(a.settings().len(), 2);
    }

    #[test]
    fn same_action_does_not_conflict() {
        let a = ActionSpec::new(aircon(), Verb::TurnOn)
            .with_setting("temperature", Quantity::from_integer(25, Unit::Celsius))
            .with_setting("humidity", Quantity::from_integer(60, Unit::Percent));
        // Same settings in a different order.
        let b = ActionSpec::new(aircon(), Verb::TurnOn)
            .with_setting("humidity", Quantity::from_integer(60, Unit::Percent))
            .with_setting("temperature", Quantity::from_integer(25, Unit::Celsius));
        assert!(!a.conflicts_with(&b));
        assert!(!b.conflicts_with(&a));
    }

    #[test]
    fn different_settings_conflict() {
        // Tom wants 25°C, Alan wants 24°C — the paper's central example.
        let tom = ActionSpec::new(aircon(), Verb::TurnOn)
            .with_setting("temperature", Quantity::from_integer(25, Unit::Celsius));
        let alan = ActionSpec::new(aircon(), Verb::TurnOn)
            .with_setting("temperature", Quantity::from_integer(24, Unit::Celsius));
        assert!(tom.conflicts_with(&alan));
    }

    #[test]
    fn different_verbs_conflict() {
        let on = ActionSpec::new(aircon(), Verb::TurnOn);
        let off = ActionSpec::new(aircon(), Verb::TurnOff);
        assert!(on.conflicts_with(&off));
    }

    #[test]
    fn different_devices_never_conflict() {
        let tv = ActionSpec::new(DeviceId::new("tv"), Verb::TurnOn);
        let stereo = ActionSpec::new(DeviceId::new("stereo"), Verb::TurnOn);
        assert!(!tv.conflicts_with(&stereo));
    }

    #[test]
    fn missing_setting_conflicts() {
        let with = ActionSpec::new(aircon(), Verb::TurnOn)
            .with_setting("temperature", Quantity::from_integer(25, Unit::Celsius));
        let without = ActionSpec::new(aircon(), Verb::TurnOn);
        assert!(with.conflicts_with(&without));
        assert!(without.conflicts_with(&with));
    }

    #[test]
    fn display() {
        let a = ActionSpec::new(aircon(), Verb::TurnOn)
            .with_setting("temperature", Quantity::from_integer(25, Unit::Celsius));
        assert_eq!(
            a.to_string(),
            "turn on aircon with 25°C of temperature setting"
        );
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let a = ActionSpec::new(aircon(), Verb::Custom("ventilate".into()))
            .with_setting("fan", Quantity::from_integer(3, Unit::Count));
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(serde_json::from_str::<ActionSpec>(&json).unwrap(), a);
    }
}
