//! Condition atoms — the primitive facts a rule condition can test.

use cadel_simplex::RelOp;
use cadel_types::{
    Date, DeviceId, PersonId, PlaceId, Quantity, SensorKey, SimDuration, TimeWindow, Value, Weekday,
};
use std::fmt;

/// A numeric comparison of a sensor variable against a threshold:
/// `temperature(thermo-livingroom) > 26 °C`.
///
/// This is the atom class the paper's conflict check reasons about with the
/// Simplex method (§4.4 — "condition in each rule is described as a logical
/// conjunction of inequalities").
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConstraintAtom {
    sensor: SensorKey,
    op: RelOp,
    threshold: Quantity,
}

impl ConstraintAtom {
    /// Creates the comparison `sensor op threshold`.
    pub fn new(sensor: SensorKey, op: RelOp, threshold: Quantity) -> ConstraintAtom {
        ConstraintAtom {
            sensor,
            op,
            threshold,
        }
    }

    /// The sensor variable being compared.
    pub fn sensor(&self) -> &SensorKey {
        &self.sensor
    }

    /// The comparison operator.
    pub fn op(&self) -> RelOp {
        self.op
    }

    /// The threshold the sensor is compared against.
    pub fn threshold(&self) -> Quantity {
        self.threshold
    }

    /// Evaluates against a concrete sensor reading. Readings of a
    /// different dimension never satisfy the atom.
    pub fn holds_for(&self, reading: &Quantity) -> bool {
        if !reading.is_comparable_to(&self.threshold) {
            return false;
        }
        self.op
            .holds(reading.canonical_value(), self.threshold.canonical_value())
    }
}

impl fmt::Display for ConstraintAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.sensor, self.op, self.threshold)
    }
}

/// Who a presence atom talks about.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Subject {
    /// A specific person ("Tom is at the living room").
    Person(PersonId),
    /// Any person ("someone returns home").
    Somebody,
    /// No person ("nobody is at the hall").
    Nobody,
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Person(p) => write!(f, "{p}"),
            Subject::Somebody => f.write_str("someone"),
            Subject::Nobody => f.write_str("nobody"),
        }
    }
}

/// A presence fact: `subject is at place`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PresenceAtom {
    subject: Subject,
    place: PlaceId,
}

impl PresenceAtom {
    /// Creates `subject is at place`.
    pub fn new(subject: Subject, place: PlaceId) -> PresenceAtom {
        PresenceAtom { subject, place }
    }

    /// Convenience constructor for a named person.
    pub fn person_at(person: impl Into<PersonId>, place: impl AsRef<str>) -> PresenceAtom {
        PresenceAtom::new(Subject::Person(person.into()), PlaceId::new(place))
    }

    /// The subject of the fact.
    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    /// The place of the fact.
    pub fn place(&self) -> &PlaceId {
        &self.place
    }
}

impl fmt::Display for PresenceAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.subject, self.place)
    }
}

/// A device state fact: `variable(device) == value`, e.g.
/// `power(tv) == true` for "the TV is turned on".
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StateAtom {
    device: DeviceId,
    variable: String,
    value: Value,
}

impl StateAtom {
    /// Creates `variable(device) == value`.
    pub fn new(device: DeviceId, variable: impl Into<String>, value: Value) -> StateAtom {
        StateAtom {
            device,
            variable: variable.into(),
            value,
        }
    }

    /// The device whose state is tested.
    pub fn device(&self) -> &DeviceId {
        &self.device
    }

    /// The state variable name.
    pub fn variable(&self) -> &str {
        &self.variable
    }

    /// The expected value.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// The sensor key this atom observes.
    pub fn sensor_key(&self) -> SensorKey {
        SensorKey::new(self.device.clone(), self.variable.clone())
    }

    /// Evaluates against an observed value. Text comparison is
    /// case-insensitive.
    pub fn holds_for(&self, observed: &Value) -> bool {
        match (&self.value, observed) {
            (Value::Text(expected), observed) => observed.text_matches(expected),
            (expected, observed) => expected == observed,
        }
    }
}

impl fmt::Display for StateAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} = {}", self.device, self.variable, self.value)
    }
}

/// An ambient event: something that *happens* rather than a state that
/// holds — "a baseball game is on air", "Alan got home from work".
///
/// Events are matched case-insensitively by channel and name against the
/// engine's set of currently-active event facts.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventAtom {
    channel: String,
    name: String,
}

impl EventAtom {
    /// Creates an event pattern on `channel` with the given `name`, both
    /// normalized to lower case.
    pub fn new(channel: impl AsRef<str>, name: impl AsRef<str>) -> EventAtom {
        EventAtom {
            channel: channel.as_ref().trim().to_ascii_lowercase(),
            name: name.as_ref().trim().to_ascii_lowercase(),
        }
    }

    /// The event channel (e.g. `"tv-guide"`, `"person:alan"`).
    pub fn channel(&self) -> &str {
        &self.channel
    }

    /// The event name (e.g. `"baseball game"`, `"got home from work"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether an occurred event matches this pattern.
    pub fn matches(&self, channel: &str, name: &str) -> bool {
        self.channel.eq_ignore_ascii_case(channel.trim())
            && self.name.eq_ignore_ascii_case(name.trim())
    }
}

impl fmt::Display for EventAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {}:{}", self.channel, self.name)
    }
}

/// A primitive fact in a rule condition.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Atom {
    /// A numeric sensor comparison.
    Constraint(ConstraintAtom),
    /// A presence fact.
    Presence(PresenceAtom),
    /// A device state fact.
    State(StateAtom),
    /// An ambient event.
    Event(EventAtom),
    /// A daily time window ("after evening", "at night").
    Time(TimeWindow),
    /// A weekday guard ("every Monday").
    Weekday(Weekday),
    /// A specific-date guard.
    Date(Date),
    /// The inner atom must have held continuously for the duration
    /// ("entrance door is unlocked for 1 hour").
    HeldFor {
        /// The qualified atom.
        inner: Box<Atom>,
        /// How long it must have held.
        duration: SimDuration,
    },
}

impl Atom {
    /// Wraps an atom with a continuous-duration qualifier.
    pub fn held_for(inner: Atom, duration: SimDuration) -> Atom {
        Atom::HeldFor {
            inner: Box::new(inner),
            duration,
        }
    }

    /// The atom with any `HeldFor` qualifiers stripped — the instantaneous
    /// fact whose truth the engine tracks over time.
    pub fn instantaneous(&self) -> &Atom {
        match self {
            Atom::HeldFor { inner, .. } => inner.instantaneous(),
            other => other,
        }
    }

    /// The sensor key this atom observes, if it observes one.
    pub fn sensor_key(&self) -> Option<SensorKey> {
        match self {
            Atom::Constraint(c) => Some(c.sensor().clone()),
            Atom::State(s) => Some(s.sensor_key()),
            Atom::HeldFor { inner, .. } => inner.sensor_key(),
            _ => None,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Constraint(c) => write!(f, "{c}"),
            Atom::Presence(p) => write!(f, "{p}"),
            Atom::State(s) => write!(f, "{s}"),
            Atom::Event(e) => write!(f, "{e}"),
            Atom::Time(w) => write!(f, "time in {w}"),
            Atom::Weekday(w) => write!(f, "every {w}"),
            Atom::Date(d) => write!(f, "on {d}"),
            Atom::HeldFor { inner, duration } => write!(f, "{inner} for {duration}"),
        }
    }
}

impl From<ConstraintAtom> for Atom {
    fn from(a: ConstraintAtom) -> Atom {
        Atom::Constraint(a)
    }
}

impl From<PresenceAtom> for Atom {
    fn from(a: PresenceAtom) -> Atom {
        Atom::Presence(a)
    }
}

impl From<StateAtom> for Atom {
    fn from(a: StateAtom) -> Atom {
        Atom::State(a)
    }
}

impl From<EventAtom> for Atom {
    fn from(a: EventAtom) -> Atom {
        Atom::Event(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::Unit;

    fn thermo() -> SensorKey {
        SensorKey::new(DeviceId::new("thermo"), "temperature")
    }

    #[test]
    fn constraint_atom_evaluates_with_units() {
        let atom = ConstraintAtom::new(
            thermo(),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        );
        assert!(atom.holds_for(&Quantity::from_integer(27, Unit::Celsius)));
        assert!(!atom.holds_for(&Quantity::from_integer(26, Unit::Celsius)));
        // 80°F ≈ 26.7°C > 26°C.
        assert!(atom.holds_for(&Quantity::from_integer(80, Unit::Fahrenheit)));
        // Wrong dimension: never true.
        assert!(!atom.holds_for(&Quantity::from_integer(90, Unit::Percent)));
    }

    #[test]
    fn state_atom_text_matching_is_case_insensitive() {
        let atom = StateAtom::new(DeviceId::new("tv"), "program", Value::from("Baseball Game"));
        assert!(atom.holds_for(&Value::from("baseball game")));
        assert!(!atom.holds_for(&Value::from("news")));
        assert!(!atom.holds_for(&Value::Bool(true)));
    }

    #[test]
    fn state_atom_bool_matching() {
        let atom = StateAtom::new(DeviceId::new("tv"), "power", Value::Bool(true));
        assert!(atom.holds_for(&Value::Bool(true)));
        assert!(!atom.holds_for(&Value::Bool(false)));
        assert_eq!(
            atom.sensor_key(),
            SensorKey::new(DeviceId::new("tv"), "power")
        );
    }

    #[test]
    fn event_atom_matches_normalized() {
        let atom = EventAtom::new(" TV-Guide ", "Baseball Game");
        assert!(atom.matches("tv-guide", "baseball game"));
        assert!(atom.matches("TV-GUIDE", " Baseball Game "));
        assert!(!atom.matches("tv-guide", "movie"));
    }

    #[test]
    fn held_for_unwraps_to_instantaneous() {
        let inner = Atom::State(StateAtom::new(
            DeviceId::new("door"),
            "locked",
            Value::Bool(false),
        ));
        let wrapped = Atom::held_for(inner.clone(), SimDuration::from_hours(1));
        assert_eq!(wrapped.instantaneous(), &inner);
        // Nested wrapping still unwraps fully.
        let nested = Atom::held_for(wrapped.clone(), SimDuration::from_minutes(5));
        assert_eq!(nested.instantaneous(), &inner);
        assert!(wrapped.sensor_key().is_some());
    }

    #[test]
    fn displays_are_informative() {
        let atom = ConstraintAtom::new(
            thermo(),
            RelOp::Gt,
            Quantity::from_integer(26, Unit::Celsius),
        );
        assert_eq!(atom.to_string(), "thermo.temperature > 26°C");
        let p = PresenceAtom::person_at("tom", "Living Room");
        assert_eq!(p.to_string(), "tom at living room");
        assert_eq!(
            PresenceAtom::new(Subject::Nobody, PlaceId::new("hall")).to_string(),
            "nobody at hall"
        );
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let atom = Atom::held_for(
            Atom::Event(EventAtom::new("tv-guide", "baseball game")),
            SimDuration::from_minutes(10),
        );
        let json = serde_json::to_string(&atom).unwrap();
        assert_eq!(serde_json::from_str::<Atom>(&json).unwrap(), atom);
    }
}
