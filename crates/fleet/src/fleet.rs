//! The fleet runtime: admission control, step waves, supervision.

use crate::config::{FleetConfig, ShedPolicy};
use crate::tenant::{Ingress, Tenant, TenantBuilder, TenantParts, TenantState};
use cadel_obs::{Event, LazyCounter, LazyGauge, LazyHistogram, Level, NoisyNeighbourRollup};
use cadel_server::{HomeServer, ServerError};
use cadel_store::RecoveryReport;
use cadel_types::SimTime;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

static STEPS: LazyCounter = LazyCounter::new("fleet_steps_total");
static PANICS: LazyCounter = LazyCounter::new("fleet_panics_total");
static OVERRUNS: LazyCounter = LazyCounter::new("fleet_overruns_total");
static STORE_FAULTS: LazyCounter = LazyCounter::new("fleet_store_faults_total");
static RESTARTS: LazyCounter = LazyCounter::new("fleet_restarts_total");
static SHED: LazyCounter = LazyCounter::new("fleet_shed_total");
static COALESCED: LazyCounter = LazyCounter::new("fleet_coalesced_total");
static STEP_NS: LazyHistogram = LazyHistogram::new("fleet_step_ns");
static HEALTHY: LazyGauge = LazyGauge::new("fleet_tenants_healthy");
static QUARANTINED: LazyGauge = LazyGauge::new("fleet_tenants_quarantined");
static RESTARTING: LazyGauge = LazyGauge::new("fleet_tenants_restarting");
static BACKLOG: LazyGauge = LazyGauge::new("fleet_backlog");

/// Fleet-level errors (tenant-level faults are *contained*, not
/// returned: they show up as [`StepStatus`] and quarantine states).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// No tenant with this name.
    UnknownTenant(String),
    /// A tenant with this name already exists.
    DuplicateTenant(String),
    /// The tenant's inbox is full and the shed policy rejected the new
    /// entry.
    InboxFull {
        /// The tenant whose inbox overflowed.
        tenant: String,
    },
    /// Building the tenant failed.
    Build {
        /// The tenant being built.
        tenant: String,
        /// The underlying server error.
        error: ServerError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::UnknownTenant(name) => write!(f, "unknown tenant '{name}'"),
            FleetError::DuplicateTenant(name) => write!(f, "tenant '{name}' already exists"),
            FleetError::InboxFull { tenant } => {
                write!(f, "tenant '{tenant}' inbox full; entry rejected")
            }
            FleetError::Build { tenant, error } => {
                write!(f, "building tenant '{tenant}' failed: {error}")
            }
        }
    }
}

impl Error for FleetError {}

/// How an offered ingress entry was admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Appended to the tenant's inbox.
    Enqueued,
    /// Replaced a queued reading of the same device variable in place
    /// (last-write-wins, the engine's own coalescing rule).
    Coalesced,
    /// Appended after shedding the oldest coalescible queued entry.
    AdmittedAfterShed,
}

/// What happened to one tenant during a step wave.
#[derive(Clone, Debug, PartialEq)]
pub enum StepStatus {
    /// Stepped and synced normally.
    Ok,
    /// The step panicked; the tenant is quarantined, its in-memory
    /// state discarded, and its drained batch requeued for replay
    /// after the WAL restart.
    Panicked(String),
    /// The step finished but blew the per-step deadline; the tenant is
    /// quarantined (a post-hoc watchdog — sync evaluation cannot be
    /// preempted).
    Overrun {
        /// Host wall time the step actually took.
        elapsed: Duration,
    },
    /// A WAL append or sync failed (e.g. disk full); the tenant is
    /// quarantined and will restart read-write from its WAL.
    StoreFault(String),
}

impl StepStatus {
    /// Whether the step left the tenant healthy.
    pub fn is_ok(&self) -> bool {
        matches!(self, StepStatus::Ok)
    }
}

/// One tenant's outcome within a [`FleetStepReport`].
#[derive(Clone, Debug)]
pub struct TenantStepOutcome {
    /// The tenant's index in the fleet.
    pub index: usize,
    /// The tenant's name.
    pub tenant: String,
    /// How the step ended.
    pub status: StepStatus,
    /// The engine step report, when the step ran to completion (also
    /// present for [`StepStatus::Overrun`]: the step finished, just too
    /// late).
    pub report: Option<cadel_engine::StepReport>,
    /// Host wall time of the step.
    pub elapsed: Duration,
}

/// The result of one fleet wave: per-tenant outcomes in tenant order.
#[derive(Debug, Default)]
pub struct FleetStepReport {
    /// Per-tenant outcomes, sorted by tenant index.
    pub outcomes: Vec<TenantStepOutcome>,
    /// Tenants restarted from their WAL in the pre-wave supervision
    /// pass.
    pub restarted: usize,
}

impl FleetStepReport {
    /// Tenants stepped this wave.
    pub fn stepped(&self) -> usize {
        self.outcomes.len()
    }

    /// Tenants whose step ended in a fault this wave.
    pub fn faults(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.status.is_ok()).count()
    }
}

/// A point-in-time fleet health summary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FleetHealth {
    /// Tenants stepping normally.
    pub healthy: usize,
    /// Tenants quarantined (within or past their restart budget).
    pub quarantined: usize,
    /// Tenants currently being rebuilt (transient).
    pub restarting: usize,
    /// Total ingress entries queued across all inboxes.
    pub backlog: usize,
    /// `backlog` as a fraction of total inbox capacity.
    pub backpressure: f64,
    /// Cumulative caught panics.
    pub panics: u64,
    /// Cumulative deadline overruns.
    pub overruns: u64,
    /// Cumulative WAL append/sync faults.
    pub store_faults: u64,
    /// Cumulative successful WAL restarts.
    pub restarts: u64,
    /// Cumulative entries shed by admission control.
    pub shed: u64,
}

/// What a graceful [`Fleet::shutdown`] accomplished before the deadline.
#[derive(Debug, Default)]
pub struct ShutdownReport {
    /// Drain waves run (each a full [`Fleet::step_ready`]).
    pub waves: usize,
    /// Whether every inbox emptied before the deadline.
    pub drained: bool,
    /// Ingress entries still queued when draining stopped (quarantined
    /// tenants past their restart budget keep theirs; they are replayed
    /// after a [`Fleet::revive`] + restart, not lost).
    pub remaining_backlog: usize,
    /// Per-tenant checkpoint/sync failures from the final
    /// [`Fleet::checkpoint_all`] flush.
    pub flush_failures: Vec<(String, ServerError)>,
}

impl ShutdownReport {
    /// Whether the shutdown was fully clean: everything drained and
    /// every tenant's WAL flushed.
    pub fn is_clean(&self) -> bool {
        self.drained && self.flush_failures.is_empty()
    }
}

impl fmt::Display for ShutdownReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shutdown: {} waves, drained={}, backlog={}, flush failures={}",
            self.waves,
            self.drained,
            self.remaining_backlog,
            self.flush_failures.len()
        )
    }
}

/// A supervised multi-tenant fleet: thousands of independent
/// [`HomeServer`]s multiplexed over a fixed worker pool.
///
/// Scheduling is event-driven: [`Fleet::step_ready`] only steps tenants
/// whose inbox is non-empty, so an idle fleet costs one readiness scan.
/// Supervision is the core contract — each tenant step runs under
/// `catch_unwind` with a strike budget, and a tenant that panics,
/// overruns the step deadline, or whose WAL stops accepting appends is
/// quarantined and restarted from its own WAL segment.
pub struct Fleet {
    config: FleetConfig,
    root: PathBuf,
    tenants: Vec<Tenant>,
    index: BTreeMap<String, usize>,
    rollup: NoisyNeighbourRollup,
    panics_total: u64,
    overruns_total: u64,
    store_faults_total: u64,
    restarts_total: u64,
    shed_total: u64,
}

impl Fleet {
    /// Creates an empty fleet whose tenant WAL segments live under
    /// `root` (one `tenants/<name>/` directory each, the layout of
    /// [`cadel_store::segment_dir`]).
    pub fn new(root: impl Into<PathBuf>, config: FleetConfig) -> Fleet {
        Fleet {
            config,
            root: root.into(),
            tenants: Vec::new(),
            index: BTreeMap::new(),
            rollup: NoisyNeighbourRollup::new(),
            panics_total: 0,
            overruns_total: 0,
            store_faults_total: 0,
            restarts_total: 0,
            shed_total: 0,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of tenants (any state).
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the fleet has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Tenant names in index order.
    pub fn names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// The index of a tenant.
    pub fn tenant_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Adds and immediately builds a tenant (recovering whatever a
    /// previous incarnation left in its WAL segment). Returns the
    /// tenant's index.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateTenant`] for a name collision,
    /// [`FleetError::Build`] when the builder fails.
    pub fn add_tenant(
        &mut self,
        name: impl Into<String>,
        build: impl Fn(&Path) -> Result<TenantParts, ServerError> + Send + Sync + 'static,
    ) -> Result<usize, FleetError> {
        self.add_tenant_arc(name, Arc::new(build))
    }

    /// [`Fleet::add_tenant`] with a pre-wrapped builder, for callers
    /// sharing one builder across many tenants.
    pub fn add_tenant_arc(
        &mut self,
        name: impl Into<String>,
        build: TenantBuilder,
    ) -> Result<usize, FleetError> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(FleetError::DuplicateTenant(name));
        }
        let dir = cadel_store::segment_dir(&self.root, &name);
        let parts = build(&dir).map_err(|error| FleetError::Build {
            tenant: name.clone(),
            error,
        })?;
        let idx = self.tenants.len();
        self.tenants.push(Tenant {
            name: name.clone(),
            dir,
            build,
            server: Some(parts.server),
            world: Some(parts.world),
            state: TenantState::Healthy,
            strikes: 0,
            inbox: std::collections::VecDeque::new(),
            steps: 0,
            restarts: 0,
            shed: 0,
            last_recovery: Some(parts.report),
            last_fault: None,
        });
        self.index.insert(name, idx);
        self.refresh_gauges();
        Ok(idx)
    }

    /// Offers one ingress entry to a tenant by name. See
    /// [`Fleet::offer_at`].
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownTenant`], or [`FleetError::InboxFull`] when
    /// the shed policy rejects the entry.
    pub fn offer(&mut self, tenant: &str, ingress: Ingress) -> Result<Admission, FleetError> {
        let idx = self
            .tenant_index(tenant)
            .ok_or_else(|| FleetError::UnknownTenant(tenant.to_owned()))?;
        self.offer_at(idx, ingress)
    }

    /// Offers one ingress entry to a tenant by index. Admission control
    /// runs here: a coalescible reading replaces a queued reading of
    /// the same device variable in place; a full inbox sheds per the
    /// configured [`ShedPolicy`]. Quarantined tenants keep accepting
    /// ingress (bounded — readings survive a quarantine window and are
    /// replayed after the restart).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownTenant`] for a bad index,
    /// [`FleetError::InboxFull`] when the shed policy rejects the entry.
    pub fn offer_at(&mut self, index: usize, ingress: Ingress) -> Result<Admission, FleetError> {
        let capacity = self.config.inbox_capacity.max(1);
        let policy = self.config.shed_policy;
        let tenant = self
            .tenants
            .get_mut(index)
            .ok_or_else(|| FleetError::UnknownTenant(format!("#{index}")))?;
        if ingress.coalescible() {
            if let Some(slot) = tenant
                .inbox
                .iter_mut()
                .find(|e| e.device == ingress.device && e.variable == ingress.variable)
            {
                *slot = ingress;
                COALESCED.inc();
                return Ok(Admission::Coalesced);
            }
        }
        if tenant.inbox.len() < capacity {
            tenant.inbox.push_back(ingress);
            return Ok(Admission::Enqueued);
        }
        // Full: shed.
        tenant.shed += 1;
        self.shed_total += 1;
        SHED.inc();
        let name = tenant.name.clone();
        let admitted = match policy {
            ShedPolicy::DropOldestCoalescible => {
                match tenant.inbox.iter().position(Ingress::coalescible) {
                    Some(oldest) => {
                        tenant.inbox.remove(oldest);
                        tenant.inbox.push_back(ingress);
                        true
                    }
                    None => false,
                }
            }
            ShedPolicy::FailNew => false,
        };
        self.rollup.note_shed(&name, 1);
        BACKLOG.set(self.backlog() as i64);
        if admitted {
            Ok(Admission::AdmittedAfterShed)
        } else {
            Err(FleetError::InboxFull { tenant: name })
        }
    }

    /// Total queued ingress across all tenant inboxes.
    pub fn backlog(&self) -> usize {
        self.tenants.iter().map(|t| t.inbox.len()).sum()
    }

    /// The fleet-wide backpressure signal: backlog as a fraction of
    /// total inbox capacity, in `[0, 1]`.
    pub fn backpressure(&self) -> f64 {
        let capacity = (self.config.inbox_capacity.max(1) * self.tenants.len().max(1)) as f64;
        self.backlog() as f64 / capacity
    }

    /// Whether backpressure is past the configured watermark — the
    /// signal for traffic sources to slow down.
    pub fn overloaded(&self) -> bool {
        self.backpressure() >= self.config.backpressure_watermark
    }

    /// Restarts quarantined tenants within their budget, then steps
    /// every healthy tenant with a non-empty inbox (event-driven: idle
    /// tenants cost nothing) across the worker pool, then batch-syncs
    /// the stepped tenants' WALs. Any tenant fault — panic, deadline
    /// overrun, append/sync failure — quarantines that tenant only.
    pub fn step_ready(&mut self, now: SimTime) -> FleetStepReport {
        let restarted = self.restart_quarantined();
        let config = self.config;
        let mut outcomes: Vec<TenantStepOutcome> = {
            let mut ready: Vec<(usize, &mut Tenant)> = self
                .tenants
                .iter_mut()
                .enumerate()
                .filter(|(_, t)| t.state == TenantState::Healthy && !t.inbox.is_empty())
                .collect();
            let workers = config.workers.max(1).min(ready.len().max(1));
            if workers <= 1 {
                ready
                    .iter_mut()
                    .map(|(idx, tenant)| step_one(*idx, tenant, now, &config))
                    .collect()
            } else {
                let chunk = ready.len().div_ceil(workers);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = ready
                        .chunks_mut(chunk)
                        .map(|slice| {
                            scope.spawn(move || {
                                slice
                                    .iter_mut()
                                    .map(|(idx, tenant)| step_one(*idx, tenant, now, &config))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("fleet workers catch tenant panics"))
                        .collect()
                })
            }
        };
        outcomes.sort_by_key(|o| o.index);

        // Group fsync: one batched pass over every tenant that stepped,
        // instead of a sync per WAL append. A failing sync degrades to
        // that tenant alone — it is quarantined, the rest of the batch
        // proceeds.
        for outcome in &mut outcomes {
            if !outcome.status.is_ok() {
                continue;
            }
            let tenant = &mut self.tenants[outcome.index];
            if let Some(server) = tenant.server.as_mut() {
                if let Err(error) = server.sync() {
                    let fault = format!("wave sync failed: {error}");
                    tenant.quarantine(fault.clone());
                    outcome.status = StepStatus::StoreFault(fault);
                }
            }
        }

        for outcome in &outcomes {
            let nanos = outcome.elapsed.as_nanos() as u64;
            STEPS.inc();
            STEP_NS.observe(nanos);
            let firings = outcome
                .report
                .as_ref()
                .map(|r| r.dispatched().len() as u64)
                .unwrap_or(0);
            self.rollup.note_step(&outcome.tenant, nanos, firings);
            match &outcome.status {
                StepStatus::Ok => {}
                StepStatus::Panicked(_) => {
                    PANICS.inc();
                    self.panics_total += 1;
                    self.rollup.note_panic(&outcome.tenant);
                }
                StepStatus::Overrun { .. } => {
                    OVERRUNS.inc();
                    self.overruns_total += 1;
                }
                StepStatus::StoreFault(_) => {
                    STORE_FAULTS.inc();
                    self.store_faults_total += 1;
                }
            }
        }
        self.refresh_gauges();
        FleetStepReport {
            outcomes,
            restarted,
        }
    }

    /// Restarts every quarantined tenant whose strike count is within
    /// the panic budget: rebuild the device world, recover the server
    /// from the tenant's own WAL segment. Returns how many came back.
    fn restart_quarantined(&mut self) -> usize {
        let mut restarted = 0;
        for tenant in &mut self.tenants {
            if tenant.state != TenantState::Quarantined || tenant.strikes > self.config.panic_budget
            {
                continue;
            }
            tenant.state = TenantState::Restarting;
            RESTARTING.set(1);
            match (tenant.build)(&tenant.dir) {
                Ok(parts) => {
                    if cadel_obs::enabled() {
                        let event = if parts.report.is_lossy() {
                            // Quarantine-restarts alarm on lossy recovery
                            // instead of silently dropping records.
                            Event::new("fleet.lossy_recovery", Level::Warn)
                                .with_field("records_skipped", parts.report.records_skipped)
                                .with_field("bytes_truncated", parts.report.bytes_truncated)
                        } else {
                            Event::new("fleet.tenant_restarted", Level::Info)
                        };
                        cadel_obs::emit(
                            event
                                .with_field("tenant", tenant.name.clone())
                                .with_field("records_replayed", parts.report.records_replayed),
                        );
                    }
                    tenant.server = Some(parts.server);
                    tenant.world = Some(parts.world);
                    tenant.last_recovery = Some(parts.report);
                    tenant.state = TenantState::Healthy;
                    tenant.restarts += 1;
                    RESTARTS.inc();
                    self.restarts_total += 1;
                    restarted += 1;
                }
                Err(error) => {
                    tenant.state = TenantState::Quarantined;
                    tenant.strikes += 1;
                    tenant.last_fault = Some(format!("restart failed: {error}"));
                    if cadel_obs::enabled() {
                        cadel_obs::emit(
                            Event::new("fleet.restart_failed", Level::Warn)
                                .with_field("tenant", tenant.name.clone())
                                .with_field("error", error.to_string()),
                        );
                    }
                }
            }
            RESTARTING.set(0);
        }
        restarted
    }

    /// Checkpoints and syncs every healthy tenant's engine runtime, so
    /// each WAL segment captures the tenant's current state (e.g.
    /// before comparing segments against live state). A tenant whose
    /// checkpoint fails is quarantined; its error is returned.
    pub fn checkpoint_all(&mut self) -> Vec<(String, ServerError)> {
        let mut failures = Vec::new();
        for tenant in &mut self.tenants {
            if tenant.state != TenantState::Healthy {
                continue;
            }
            let Some(server) = tenant.server.as_mut() else {
                continue;
            };
            let result = server.checkpoint_runtime().and_then(|()| server.sync());
            if let Err(error) = result {
                failures.push((tenant.name.clone(), error.clone()));
                tenant.quarantine(format!("checkpoint failed: {error}"));
            }
        }
        self.refresh_gauges();
        failures
    }

    /// Gracefully drains the fleet for shutdown: runs [`Fleet::step_ready`]
    /// waves (which also restart quarantined tenants still within
    /// budget) until every inbox is empty, draining stalls, or `deadline`
    /// of host wall time elapses — then flushes every healthy tenant's
    /// runtime to its WAL via [`Fleet::checkpoint_all`] and syncs.
    ///
    /// The caller (typically a network frontend) is expected to stop
    /// offering ingress first; entries admitted while draining still
    /// count toward the backlog and may keep the drain running until the
    /// deadline. `now` stamps the drain waves' engine steps.
    pub fn shutdown(&mut self, deadline: Duration, now: SimTime) -> ShutdownReport {
        let started = Instant::now();
        let mut waves = 0;
        while self.backlog() > 0 && started.elapsed() < deadline {
            let before = self.backlog();
            self.step_ready(now);
            waves += 1;
            if self.backlog() >= before {
                // Stalled: remaining entries sit in inboxes of tenants
                // that cannot come back (budget-exhausted quarantine).
                break;
            }
        }
        let flush_failures = self.checkpoint_all();
        let remaining_backlog = self.backlog();
        let report = ShutdownReport {
            waves,
            drained: remaining_backlog == 0,
            remaining_backlog,
            flush_failures,
        };
        if cadel_obs::enabled() {
            cadel_obs::emit(
                Event::new("fleet.shutdown", Level::Info)
                    .with_field("waves", report.waves as u64)
                    .with_field("drained", report.drained)
                    .with_field("backlog", report.remaining_backlog as u64)
                    .with_field("flush_failures", report.flush_failures.len() as u64),
            );
        }
        report
    }

    /// Resets a permanently quarantined tenant's strike budget so the
    /// next [`Fleet::step_ready`] restarts it from its WAL.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownTenant`].
    pub fn revive(&mut self, name: &str) -> Result<(), FleetError> {
        let idx = self
            .tenant_index(name)
            .ok_or_else(|| FleetError::UnknownTenant(name.to_owned()))?;
        self.tenants[idx].strikes = 0;
        Ok(())
    }

    /// A point-in-time health summary.
    pub fn health(&self) -> FleetHealth {
        let mut health = FleetHealth {
            backlog: self.backlog(),
            backpressure: self.backpressure(),
            panics: self.panics_total,
            overruns: self.overruns_total,
            store_faults: self.store_faults_total,
            restarts: self.restarts_total,
            shed: self.shed_total,
            ..FleetHealth::default()
        };
        for tenant in &self.tenants {
            match tenant.state {
                TenantState::Healthy => health.healthy += 1,
                TenantState::Quarantined => health.quarantined += 1,
                TenantState::Restarting => health.restarting += 1,
            }
        }
        health
    }

    /// The per-tenant load rollup (noisy-neighbour ranking).
    pub fn rollup(&self) -> &NoisyNeighbourRollup {
        &self.rollup
    }

    /// The `k` noisiest tenants, rendered one line each.
    pub fn render_noisy(&self, k: usize) -> String {
        self.rollup.render_top(k)
    }

    /// A tenant's supervision state.
    pub fn state_of(&self, name: &str) -> Option<TenantState> {
        self.tenant(name).map(|t| t.state)
    }

    /// A tenant's accumulated quarantine strikes.
    pub fn strikes_of(&self, name: &str) -> Option<u32> {
        self.tenant(name).map(|t| t.strikes)
    }

    /// How many times a tenant restarted from its WAL.
    pub fn restarts_of(&self, name: &str) -> Option<u64> {
        self.tenant(name).map(|t| t.restarts)
    }

    /// A tenant's queued ingress count.
    pub fn inbox_len_of(&self, name: &str) -> Option<usize> {
        self.tenant(name).map(|t| t.inbox.len())
    }

    /// The last fault that quarantined a tenant, if any.
    pub fn last_fault_of(&self, name: &str) -> Option<String> {
        self.tenant(name).and_then(|t| t.last_fault.clone())
    }

    /// The recovery report of a tenant's most recent (re)build.
    pub fn last_recovery_of(&self, name: &str) -> Option<RecoveryReport> {
        self.tenant(name).and_then(|t| t.last_recovery.clone())
    }

    /// A tenant's WAL segment directory.
    pub fn dir_of(&self, name: &str) -> Option<PathBuf> {
        self.tenant(name).map(|t| t.dir.clone())
    }

    /// The tenant's live server (absent while quarantined).
    pub fn server_of(&self, name: &str) -> Option<&HomeServer> {
        self.tenant(name).and_then(|t| t.server.as_ref())
    }

    /// Mutable access to a tenant's live server — chaos hooks and fault
    /// injection for soak tests, admin surgery otherwise.
    pub fn server_mut_of(&mut self, name: &str) -> Option<&mut HomeServer> {
        let idx = self.tenant_index(name)?;
        self.tenants[idx].server.as_mut()
    }

    fn tenant(&self, name: &str) -> Option<&Tenant> {
        self.tenant_index(name).map(|idx| &self.tenants[idx])
    }

    fn refresh_gauges(&self) {
        let health = self.health();
        HEALTHY.set(health.healthy as i64);
        QUARANTINED.set(health.quarantined as i64);
        RESTARTING.set(health.restarting as i64);
        BACKLOG.set(health.backlog as i64);
    }
}

/// Steps one tenant under supervision. Runs on a worker thread with
/// exclusive ownership of the tenant; every fault path quarantines the
/// tenant in place and the wave goes on.
fn step_one(
    index: usize,
    tenant: &mut Tenant,
    now: SimTime,
    config: &FleetConfig,
) -> TenantStepOutcome {
    let batch: Vec<Ingress> = tenant.inbox.drain(..).collect();
    let checkpoint_due =
        config.checkpoint_every > 0 && (tenant.steps + 1).is_multiple_of(config.checkpoint_every);
    let started = Instant::now();
    let result = {
        let (Some(server), Some(world)) = (tenant.server.as_mut(), tenant.world.as_mut()) else {
            unreachable!("healthy tenant without server/world");
        };
        catch_unwind(AssertUnwindSafe(|| {
            for ingress in &batch {
                world.deliver(ingress);
            }
            let report = server.step(now);
            if checkpoint_due {
                server.checkpoint_runtime()?;
            }
            Ok::<cadel_engine::StepReport, ServerError>(report)
        }))
    };
    let elapsed = started.elapsed();
    let name = tenant.name.clone();
    match result {
        Err(payload) => {
            let fault = format!("panic: {}", panic_message(payload.as_ref()));
            // The batch was drained but never durably consumed: requeue
            // it ahead of anything admitted later, so the restarted
            // tenant replays it instead of losing it.
            for ingress in batch.into_iter().rev() {
                tenant.inbox.push_front(ingress);
            }
            tenant.quarantine(fault.clone());
            TenantStepOutcome {
                index,
                tenant: name,
                status: StepStatus::Panicked(fault),
                report: None,
                elapsed,
            }
        }
        Ok(Err(error)) => {
            let fault = format!("checkpoint failed: {error}");
            tenant.quarantine(fault.clone());
            TenantStepOutcome {
                index,
                tenant: name,
                status: StepStatus::StoreFault(fault),
                report: None,
                elapsed,
            }
        }
        Ok(Ok(report)) => {
            let read_only = tenant.server.as_ref().is_some_and(HomeServer::is_read_only);
            if read_only {
                let fault = "wal append failed; tenant went read-only".to_owned();
                tenant.quarantine(fault.clone());
                TenantStepOutcome {
                    index,
                    tenant: name,
                    status: StepStatus::StoreFault(fault),
                    report: Some(report),
                    elapsed,
                }
            } else if elapsed > config.step_deadline {
                tenant.quarantine(format!("step overran deadline: {elapsed:?}"));
                TenantStepOutcome {
                    index,
                    tenant: name,
                    status: StepStatus::Overrun { elapsed },
                    report: Some(report),
                    elapsed,
                }
            } else {
                tenant.steps += 1;
                TenantStepOutcome {
                    index,
                    tenant: name,
                    status: StepStatus::Ok,
                    report: Some(report),
                    elapsed,
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
