//! Supervised multi-tenant fleet runtime.
//!
//! One CADEL deployment rarely stops at one home: an apartment block or
//! an operator fleet runs thousands of independent rule engines, each
//! with its own devices, users, rules, and WAL. This crate multiplexes
//! many independent [`HomeServer`] tenants over a fixed worker pool with
//! event-driven wakeups — only tenants with queued ingress are stepped —
//! and makes *supervision* the core contract:
//!
//! - **Panic isolation.** Every tenant step runs under `catch_unwind`;
//!   a panicking rule hook or device poisons only its own tenant.
//! - **Quarantine + WAL restart.** A tenant that panics, overruns the
//!   per-step deadline, or whose WAL stops accepting appends is
//!   quarantined (its in-memory state discarded) and automatically
//!   restarted from its own WAL segment via [`HomeServer::open_at`],
//!   within a strike budget.
//! - **Overload shedding.** Bounded per-tenant inboxes shed by the
//!   engine's own coalescing classification (a superseded sensor
//!   reading is droppable, an event-bearing payload is not), and a
//!   fleet-wide backpressure signal tells traffic sources to back off.
//! - **Group fsync.** Appends are buffered per tenant and synced once
//!   per wave; a failing sync degrades to quarantining that tenant
//!   alone.
//!
//! Fleet health is observable end to end: state gauges, panic/restart/
//! shed counters, a step-latency histogram, and a per-tenant
//! noisy-neighbour rollup ([`cadel_obs::NoisyNeighbourRollup`]).
//!
//! ```
//! use cadel_fleet::{Fleet, FleetConfig};
//!
//! let dir = std::env::temp_dir().join(format!("fleet-doc-{}", std::process::id()));
//! let fleet = Fleet::new(&dir, FleetConfig::default());
//! assert!(fleet.is_empty());
//! assert_eq!(fleet.health().healthy, 0);
//! ```
//!
//! [`HomeServer`]: cadel_server::HomeServer
//! [`HomeServer::open_at`]: cadel_server::HomeServer::open_at

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fleet;
pub mod tenant;

pub use config::{FleetConfig, ShedPolicy};
pub use fleet::{
    Admission, Fleet, FleetError, FleetHealth, FleetStepReport, ShutdownReport, StepStatus,
    TenantStepOutcome,
};
pub use tenant::{Ingress, TenantBuilder, TenantParts, TenantState, TenantWorld};

// The step wave hands each ready tenant to one scoped worker thread, so
// everything a tenant owns must be Send. Assert it at compile time here
// rather than discovering it at each call site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<cadel_server::HomeServer>();
    assert_send::<Ingress>();
    assert_send::<FleetConfig>();
};
