//! One supervised tenant: a durable [`HomeServer`], its device world,
//! its bounded inbox, and its supervision bookkeeping.

use cadel_server::{HomeServer, ServerError};
use cadel_store::RecoveryReport;
use cadel_types::{DeviceId, SimTime, Value};
use std::collections::VecDeque;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One queued unit of tenant input: a sensor reading headed for one of
/// the tenant's devices. Delivery publishes it through the tenant's own
/// UPnP event bus (via its [`TenantWorld`]), so the engine ingests it
/// exactly like a live device change.
#[derive(Clone, Debug, PartialEq)]
pub struct Ingress {
    /// The tenant-local device the reading belongs to.
    pub device: DeviceId,
    /// The state variable name.
    pub variable: String,
    /// The new value.
    pub value: Value,
    /// Simulated timestamp of the reading.
    pub at: SimTime,
}

impl Ingress {
    /// Whether admission control may coalesce or shed this entry — the
    /// engine's own classification ([`cadel_engine::coalescible`]):
    /// superseded readings of ordinary sensor variables are safe to
    /// drop, event-bearing payloads (`arrival`, `on-air`, `occupants`)
    /// are not.
    pub fn coalescible(&self) -> bool {
        cadel_engine::coalescible(&self.variable)
    }
}

/// A tenant's device world: whatever handles are needed to turn queued
/// [`Ingress`] into real device publishes on the tenant's event bus.
/// Built (and rebuilt, after quarantine) by the tenant's builder.
pub trait TenantWorld: Send {
    /// Applies one ingress entry to the world's devices. Readings for
    /// unknown devices or variables are the world's call to drop or
    /// panic on; the supervisor contains either choice.
    fn deliver(&mut self, ingress: &Ingress);
}

/// What a tenant builder produces: the recovered server, its recovery
/// report, and the device world the server's control point watches.
pub struct TenantParts {
    /// The durable server, recovered from the tenant's WAL segment.
    pub server: HomeServer,
    /// What recovery found (replays, truncation, skipped records).
    pub report: RecoveryReport,
    /// The device world backing the server's registry.
    pub world: Box<dyn TenantWorld>,
}

/// Builds (and rebuilds) one tenant from its WAL segment directory. The
/// builder must recreate the tenant's device world from scratch and open
/// the server with [`HomeServer::open_at`] on the given directory; it
/// can tell a fresh boot from a restart by the recovery report (a fresh
/// directory replays zero records) and only then seed initial state.
pub type TenantBuilder = Arc<dyn Fn(&Path) -> Result<TenantParts, ServerError> + Send + Sync>;

/// Supervision state of one tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantState {
    /// Stepping normally.
    Healthy,
    /// Removed from scheduling after a panic, deadline overrun, or
    /// store fault. Restarted from its WAL on the next wave while its
    /// strike count is within the panic budget; past the budget it
    /// stays here until revived.
    Quarantined,
    /// Being rebuilt from its WAL segment right now.
    Restarting,
}

impl fmt::Display for TenantState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TenantState::Healthy => "healthy",
            TenantState::Quarantined => "quarantined",
            TenantState::Restarting => "restarting",
        })
    }
}

/// One supervised tenant. Owned by the [`Fleet`]; a step wave hands each
/// ready tenant to exactly one worker thread, so the struct must be
/// [`Send`] end to end (asserted at compile time in the crate root).
///
/// [`Fleet`]: crate::Fleet
pub(crate) struct Tenant {
    pub(crate) name: String,
    pub(crate) dir: PathBuf,
    pub(crate) build: TenantBuilder,
    /// `None` while quarantined: a panicked step may have left the
    /// in-memory state inconsistent, so it is discarded outright and
    /// the WAL is the only truth a restart trusts.
    pub(crate) server: Option<HomeServer>,
    pub(crate) world: Option<Box<dyn TenantWorld>>,
    pub(crate) state: TenantState,
    pub(crate) strikes: u32,
    pub(crate) inbox: VecDeque<Ingress>,
    /// Successful steps since boot (drives the checkpoint cadence).
    pub(crate) steps: u64,
    pub(crate) restarts: u64,
    pub(crate) shed: u64,
    pub(crate) last_recovery: Option<RecoveryReport>,
    pub(crate) last_fault: Option<String>,
}

impl Tenant {
    /// Quarantines the tenant, dropping its (possibly poisoned)
    /// in-memory state.
    pub(crate) fn quarantine(&mut self, fault: String) {
        self.server = None;
        self.world = None;
        self.state = TenantState::Quarantined;
        self.strikes += 1;
        self.last_fault = Some(fault);
    }
}
