//! Fleet tunables: worker pool, admission control, supervision budgets.

use std::time::Duration;

/// What admission control does when a tenant's inbox is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Drop the oldest *coalescible* queued entry to make room — the
    /// same classification the engine's ingest coalescer uses
    /// ([`cadel_engine::coalescible`]): a superseded sensor reading is
    /// safe to lose, an event-bearing payload is not. When nothing
    /// queued is coalescible the new entry is rejected instead.
    DropOldestCoalescible,
    /// Reject the new entry; everything already queued is kept.
    FailNew,
}

/// Fleet runtime configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetConfig {
    /// Worker threads per step wave (clamped to at least 1; 1 = serial).
    pub workers: usize,
    /// Bounded inbox size per tenant; admission beyond it sheds
    /// according to [`FleetConfig::shed_policy`].
    pub inbox_capacity: usize,
    /// What to do when a tenant's inbox is full.
    pub shed_policy: ShedPolicy,
    /// Quarantine strikes (panics, deadline overruns, store faults) a
    /// tenant may accumulate and still be restarted automatically; past
    /// the budget it stays quarantined until [`revive`]d.
    ///
    /// [`revive`]: crate::Fleet::revive
    pub panic_budget: u32,
    /// Host wall-time deadline for one tenant step. The watchdog is
    /// post-hoc — synchronous rule evaluation cannot be preempted — so
    /// an overrunning tenant finishes its step, then is quarantined and
    /// restarted from its WAL.
    pub step_deadline: Duration,
    /// Runtime-checkpoint cadence in successful steps (0 = never). The
    /// checkpoint is what a quarantine-restart resumes from, so a lower
    /// cadence narrows the in-memory window lost to a panic.
    pub checkpoint_every: u64,
    /// Fleet-wide backpressure trips when total queued ingress exceeds
    /// this fraction of total inbox capacity.
    pub backpressure_watermark: f64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            workers: 4,
            inbox_capacity: 64,
            shed_policy: ShedPolicy::DropOldestCoalescible,
            panic_budget: 3,
            step_deadline: Duration::from_secs(5),
            checkpoint_every: 8,
            backpressure_watermark: 0.8,
        }
    }
}
