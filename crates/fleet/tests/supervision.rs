//! Supervision-contract tests for the fleet runtime: admission control
//! and shedding, panic isolation with WAL restart, read-only store
//! faults, the post-hoc watchdog, strike budgets, and worker-count
//! determinism. Each tenant is a full durable [`HomeServer`] over the
//! living-room device fleet with one real registered rule, so quarantine
//! restarts exercise genuine WAL recovery, not mocks.

use cadel_devices::{EnvironmentSensor, LivingRoomHome};
use cadel_fleet::{
    Admission, Fleet, FleetConfig, FleetError, Ingress, ShedPolicy, StepStatus, TenantParts,
    TenantState, TenantWorld,
};
use cadel_rule::{ActionSpec, Atom, Condition, ConstraintAtom, Rule, Verb};
use cadel_server::HomeServer;
use cadel_simplex::RelOp;
use cadel_types::{
    DeviceId, PersonId, Quantity, RuleId, SensorKey, SimDuration, SimTime, Topology, Unit, Value,
};
use cadel_upnp::{ControlPoint, Registry};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn mins(m: u64) -> SimTime {
    SimTime::EPOCH + SimDuration::from_minutes(m)
}

fn fleet_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cadel-fleet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A minimal tenant world: temperature readings land on the living-room
/// thermometer; everything else is dropped.
struct LrWorld {
    thermometer: Arc<EnvironmentSensor>,
}

impl TenantWorld for LrWorld {
    fn deliver(&mut self, ingress: &Ingress) {
        if ingress.variable == "temperature" {
            if let Value::Number(q) = &ingress.value {
                let _ = self.thermometer.set_reading(q.value(), ingress.at);
            }
        }
    }
}

/// Builds one living-room tenant with a WAL-registered rule: temperature
/// above 28 °C turns the air conditioner on. Fresh directories are
/// seeded; restarts recover user and rule from the WAL alone.
fn lr_tenant(dir: &Path) -> Result<TenantParts, cadel_server::ServerError> {
    let registry = Registry::new();
    let home = LivingRoomHome::install(&registry);
    let mut topology = Topology::new("home");
    topology.add_floor("first floor").unwrap();
    topology.add_room("living room", "first floor").unwrap();
    topology.add_room("hall", "first floor").unwrap();
    let (mut server, report) = HomeServer::open_at(ControlPoint::new(registry), topology, dir)?;
    if report.records_replayed == 0 && !report.snapshot_used {
        server.add_user("Tom")?;
        let rule = Rule::builder(PersonId::new("tom"))
            .condition(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
                RelOp::Gt,
                Quantity::from_integer(28, Unit::Celsius),
            ))))
            .action(ActionSpec::new(DeviceId::new("aircon-lr"), Verb::TurnOn))
            .build(RuleId::new(1))
            .expect("rule builds");
        server.register_rule(rule)?;
    }
    Ok(TenantParts {
        server,
        report,
        world: Box::new(LrWorld {
            thermometer: home.thermometer.clone(),
        }),
    })
}

fn temp_reading(celsius: i64, at: SimTime) -> Ingress {
    Ingress {
        device: DeviceId::new("thermo-lr"),
        variable: "temperature".to_owned(),
        value: Value::Number(Quantity::from_integer(celsius, Unit::Celsius)),
        at,
    }
}

fn arrival(person: &str, at: SimTime) -> Ingress {
    Ingress {
        device: DeviceId::new("rfid-hall"),
        variable: "arrival".to_owned(),
        value: Value::Text(person.to_owned()),
        at,
    }
}

#[test]
fn admission_coalesces_readings_and_sheds_by_policy() {
    let root = fleet_root("admission");
    let mut fleet = Fleet::new(
        &root,
        FleetConfig {
            inbox_capacity: 2,
            ..FleetConfig::default()
        },
    );
    fleet.add_tenant("t0", lr_tenant).unwrap();

    // A newer reading of the same device variable replaces in place.
    assert_eq!(
        fleet.offer("t0", temp_reading(25, mins(1))).unwrap(),
        Admission::Enqueued
    );
    assert_eq!(
        fleet.offer("t0", temp_reading(26, mins(2))).unwrap(),
        Admission::Coalesced
    );
    assert_eq!(fleet.inbox_len_of("t0"), Some(1));

    // Event-bearing entries never coalesce.
    assert_eq!(
        fleet.offer("t0", arrival("tom", mins(3))).unwrap(),
        Admission::Enqueued
    );
    assert_eq!(fleet.inbox_len_of("t0"), Some(2));

    // Full inbox: the oldest coalescible entry (the reading) is shed to
    // admit the new event.
    assert_eq!(
        fleet.offer("t0", arrival("alan", mins(4))).unwrap(),
        Admission::AdmittedAfterShed
    );
    assert_eq!(fleet.inbox_len_of("t0"), Some(2));

    // Nothing coalescible left: the new entry is rejected.
    assert_eq!(
        fleet.offer("t0", arrival("bob", mins(5))),
        Err(FleetError::InboxFull {
            tenant: "t0".to_owned()
        })
    );
    assert_eq!(fleet.health().shed, 2);

    assert_eq!(
        fleet.offer("missing", temp_reading(20, mins(6))),
        Err(FleetError::UnknownTenant("missing".to_owned()))
    );

    // FailNew keeps the queue and rejects the newcomer even when the
    // queue holds coalescible entries.
    let root2 = fleet_root("admission-failnew");
    let mut strict = Fleet::new(
        &root2,
        FleetConfig {
            inbox_capacity: 1,
            shed_policy: ShedPolicy::FailNew,
            ..FleetConfig::default()
        },
    );
    strict.add_tenant("t0", lr_tenant).unwrap();
    strict.offer("t0", arrival("tom", mins(1))).unwrap();
    assert!(matches!(
        strict.offer("t0", temp_reading(30, mins(2))),
        Err(FleetError::InboxFull { .. })
    ));
    assert_eq!(strict.inbox_len_of("t0"), Some(1));

    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&root2);
}

#[test]
fn panicking_tenant_is_quarantined_and_restarts_from_its_wal() {
    let root = fleet_root("panic");
    let mut fleet = Fleet::new(&root, FleetConfig::default());
    fleet.add_tenant("t0", lr_tenant).unwrap();

    // Arm a rule-evaluation hook that panics once the hot reading lands.
    fleet
        .server_mut_of("t0")
        .unwrap()
        .engine_mut()
        .set_eval_hook(Some(Box::new(|_, _| panic!("chaos monkey"))));

    fleet.offer("t0", temp_reading(30, mins(1))).unwrap();
    let wave = fleet.step_ready(mins(1));
    assert_eq!(wave.stepped(), 1);
    assert_eq!(wave.faults(), 1);
    let outcome = &wave.outcomes[0];
    assert!(
        matches!(&outcome.status, StepStatus::Panicked(msg) if msg.contains("chaos monkey")),
        "unexpected status: {:?}",
        outcome.status
    );
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Quarantined));
    assert!(fleet.server_of("t0").is_none(), "poisoned state discarded");
    assert_eq!(
        fleet.last_fault_of("t0").as_deref(),
        Some("panic: chaos monkey")
    );
    // The drained batch was requeued, not lost.
    assert_eq!(fleet.inbox_len_of("t0"), Some(1));
    assert_eq!(fleet.health().panics, 1);
    assert_eq!(fleet.rollup().load("t0").panics, 1);

    // Next wave: supervisor restarts the tenant from its WAL (user and
    // rule recovered; the panic hook is gone with the old engine), then
    // replays the requeued reading — the rule finally fires.
    let wave = fleet.step_ready(mins(2));
    assert_eq!(wave.restarted, 1);
    assert_eq!(wave.stepped(), 1);
    assert!(wave.outcomes[0].status.is_ok());
    let report = wave.outcomes[0].report.as_ref().unwrap();
    assert_eq!(report.dispatched().len(), 1, "recovered rule fires");
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Healthy));
    assert_eq!(fleet.restarts_of("t0"), Some(1));
    let recovery = fleet.last_recovery_of("t0").unwrap();
    assert!(recovery.records_replayed > 0 || recovery.snapshot_used);
    assert!(!recovery.is_lossy());

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn append_faults_quarantine_the_tenant_and_restart_clears_read_only() {
    let root = fleet_root("enospc");
    let mut fleet = Fleet::new(
        &root,
        FleetConfig {
            checkpoint_every: 1,
            ..FleetConfig::default()
        },
    );
    fleet.add_tenant("t0", lr_tenant).unwrap();

    // Simulated disk-full: every WAL append fails until restart.
    fleet
        .server_mut_of("t0")
        .unwrap()
        .inject_append_faults(true);
    fleet.offer("t0", temp_reading(30, mins(1))).unwrap();
    let wave = fleet.step_ready(mins(1));
    assert!(
        matches!(wave.outcomes[0].status, StepStatus::StoreFault(_)),
        "unexpected status: {:?}",
        wave.outcomes[0].status
    );
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Quarantined));
    assert_eq!(fleet.health().store_faults, 1);

    // Restart rebuilds against a healthy store; the tenant steps again
    // and is writable.
    fleet.offer("t0", temp_reading(29, mins(2))).unwrap();
    let wave = fleet.step_ready(mins(2));
    assert_eq!(wave.restarted, 1);
    assert!(wave.outcomes[0].status.is_ok());
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Healthy));
    assert!(!fleet.server_of("t0").unwrap().is_read_only());

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn strike_budget_exhaustion_parks_the_tenant_until_revived() {
    let root = fleet_root("budget");
    let mut fleet = Fleet::new(
        &root,
        FleetConfig {
            panic_budget: 0,
            ..FleetConfig::default()
        },
    );
    fleet.add_tenant("t0", lr_tenant).unwrap();
    fleet
        .server_mut_of("t0")
        .unwrap()
        .engine_mut()
        .set_eval_hook(Some(Box::new(|_, _| panic!("hard down"))));
    fleet.offer("t0", temp_reading(30, mins(1))).unwrap();
    fleet.step_ready(mins(1));
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Quarantined));
    assert_eq!(fleet.strikes_of("t0"), Some(1));

    // Over budget: waves leave it parked.
    let wave = fleet.step_ready(mins(2));
    assert_eq!(wave.restarted, 0);
    assert_eq!(wave.stepped(), 0);
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Quarantined));

    // An operator revive resets the budget; the next wave restarts it.
    fleet.revive("t0").unwrap();
    let wave = fleet.step_ready(mins(3));
    assert_eq!(wave.restarted, 1);
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Healthy));
    assert!(matches!(
        fleet.revive("missing"),
        Err(FleetError::UnknownTenant(_))
    ));

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn zero_deadline_trips_the_post_hoc_watchdog() {
    let root = fleet_root("watchdog");
    let mut fleet = Fleet::new(
        &root,
        FleetConfig {
            step_deadline: Duration::ZERO,
            ..FleetConfig::default()
        },
    );
    fleet.add_tenant("t0", lr_tenant).unwrap();
    fleet.offer("t0", temp_reading(30, mins(1))).unwrap();
    let wave = fleet.step_ready(mins(1));
    let outcome = &wave.outcomes[0];
    assert!(
        matches!(outcome.status, StepStatus::Overrun { .. }),
        "unexpected status: {:?}",
        outcome.status
    );
    // The watchdog is post-hoc: the step finished, so its report exists.
    assert!(outcome.report.is_some());
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Quarantined));
    assert_eq!(fleet.health().overruns, 1);

    // Idle after restart (the overrun consumed the batch): the tenant is
    // restarted but not stepped.
    let wave = fleet.step_ready(mins(2));
    assert_eq!(wave.restarted, 1);
    assert_eq!(wave.stepped(), 0);
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Healthy));

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn backpressure_signal_trips_at_the_watermark() {
    let root = fleet_root("backpressure");
    let mut fleet = Fleet::new(
        &root,
        FleetConfig {
            inbox_capacity: 4,
            backpressure_watermark: 0.5,
            ..FleetConfig::default()
        },
    );
    fleet.add_tenant("t0", lr_tenant).unwrap();
    fleet.add_tenant("t1", lr_tenant).unwrap();
    assert!(!fleet.overloaded());

    // Fill half of the fleet-wide capacity with non-coalescible events.
    for (i, tenant) in [(0, "t0"), (1, "t1"), (2, "t0"), (3, "t1")] {
        fleet
            .offer(tenant, arrival(&format!("guest-{i}"), mins(1)))
            .unwrap();
    }
    assert_eq!(fleet.backlog(), 4);
    assert!((fleet.backpressure() - 0.5).abs() < 1e-9);
    assert!(fleet.overloaded());

    // Draining the inboxes clears the signal.
    fleet.step_ready(mins(2));
    assert_eq!(fleet.backlog(), 0);
    assert!(!fleet.overloaded());

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn waves_are_deterministic_across_worker_counts() {
    let run = |tag: &str, workers: usize| -> Vec<String> {
        let root = fleet_root(tag);
        let mut fleet = Fleet::new(
            &root,
            FleetConfig {
                workers,
                ..FleetConfig::default()
            },
        );
        for i in 0..8 {
            fleet.add_tenant(format!("t{i}"), lr_tenant).unwrap();
        }
        let mut lines = Vec::new();
        for tick in 0..6u64 {
            for i in 0..8 {
                // Alternate hot and cool readings per tenant and tick.
                let celsius = if (i + tick) % 2 == 0 { 30 } else { 20 };
                fleet
                    .offer(&format!("t{i}"), temp_reading(celsius as i64, mins(tick)))
                    .unwrap();
            }
            let wave = fleet.step_ready(mins(tick));
            for outcome in &wave.outcomes {
                let report = outcome.report.as_ref().unwrap();
                lines.push(format!("{} {} {report}", outcome.tenant, outcome.index));
            }
        }
        for i in 0..8 {
            let name = format!("t{i}");
            let snapshot = fleet.server_of(&name).unwrap().snapshot_json().to_pretty();
            lines.push(format!("{name} {snapshot}"));
        }
        let _ = std::fs::remove_dir_all(&root);
        lines
    };

    let serial = run("det-serial", 1);
    let parallel = run("det-parallel", 4);
    assert_eq!(serial, parallel);
    assert!(serial.iter().any(|l| l.contains("fired")) || serial.iter().any(|l| !l.is_empty()));
}

#[test]
fn duplicate_tenants_are_rejected_and_idle_tenants_cost_nothing() {
    let root = fleet_root("dup");
    let mut fleet = Fleet::new(&root, FleetConfig::default());
    fleet.add_tenant("t0", lr_tenant).unwrap();
    assert_eq!(
        fleet.add_tenant("t0", lr_tenant),
        Err(FleetError::DuplicateTenant("t0".to_owned()))
    );
    assert_eq!(fleet.len(), 1);
    assert_eq!(fleet.names(), vec!["t0"]);

    // Event-driven scheduling: an empty inbox means no step at all.
    let wave = fleet.step_ready(mins(1));
    assert_eq!(wave.stepped(), 0);
    assert_eq!(fleet.health().healthy, 1);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shutdown_drains_backlog_and_checkpoints() {
    let root = fleet_root("shutdown");
    let mut fleet = Fleet::new(&root, FleetConfig::default());
    fleet.add_tenant("t0", lr_tenant).unwrap();
    fleet.add_tenant("t1", lr_tenant).unwrap();
    fleet.offer("t0", temp_reading(30, mins(1))).unwrap();
    fleet.offer("t1", temp_reading(30, mins(1))).unwrap();
    fleet.offer("t1", arrival("tom", mins(1))).unwrap();
    assert_eq!(fleet.backlog(), 3);

    let report = fleet.shutdown(Duration::from_secs(5), mins(1));
    assert!(report.is_clean(), "{report}");
    assert!(report.drained);
    assert_eq!(report.remaining_backlog, 0);
    assert!(report.waves >= 1);
    assert!(report.flush_failures.is_empty());
    assert_eq!(fleet.backlog(), 0);

    // The drain actually stepped the engines: the queued 30 °C reading
    // fired the cool rule before the checkpoint.
    let snapshot = fleet.server_of("t0").unwrap().snapshot_json().to_compact();
    assert!(snapshot.contains("aircon-lr"), "{snapshot}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shutdown_reports_per_tenant_flush_failures() {
    let root = fleet_root("shutdown-flush");
    let mut fleet = Fleet::new(&root, FleetConfig::default());
    fleet.add_tenant("t0", lr_tenant).unwrap();
    fleet.add_tenant("t1", lr_tenant).unwrap();

    // t0's disk "fills up" right before shutdown: its checkpoint
    // flush fails and must be reported, while t1 flushes cleanly.
    fleet
        .server_mut_of("t0")
        .unwrap()
        .inject_append_faults(true);
    let report = fleet.shutdown(Duration::from_secs(5), mins(1));
    assert!(!report.is_clean(), "{report}");
    assert!(report.drained, "an empty backlog still counts as drained");
    assert_eq!(report.flush_failures.len(), 1, "{report}");
    assert_eq!(report.flush_failures[0].0, "t0");
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Quarantined));
    assert_eq!(fleet.state_of("t1"), Some(TenantState::Healthy));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shutdown_stalls_on_unrevivable_backlog_instead_of_spinning() {
    let root = fleet_root("shutdown-stall");
    let mut fleet = Fleet::new(
        &root,
        FleetConfig {
            panic_budget: 0,
            checkpoint_every: 1,
            ..FleetConfig::default()
        },
    );
    fleet.add_tenant("t0", lr_tenant).unwrap();
    // Park the tenant past its (zero) strike budget.
    fleet
        .server_mut_of("t0")
        .unwrap()
        .inject_append_faults(true);
    fleet.offer("t0", temp_reading(30, mins(1))).unwrap();
    let _ = fleet.step_ready(mins(1));
    assert_eq!(fleet.state_of("t0"), Some(TenantState::Quarantined));
    fleet.offer("t0", temp_reading(31, mins(2))).unwrap();

    // The drain cannot make progress; it must detect the stall and
    // return promptly rather than spinning to the deadline.
    let started = std::time::Instant::now();
    let report = fleet.shutdown(Duration::from_secs(30), mins(2));
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "stall detection"
    );
    assert!(!report.drained, "{report}");
    assert!(report.remaining_backlog > 0);
    let _ = std::fs::remove_dir_all(&root);
}
