//! # cadel-ir — compiled rule objects
//!
//! The CADEL paper describes registered rules becoming "rule objects" inside
//! the framework: a resident, pre-processed form the rule processor executes
//! against incoming context, distinct from the textual rule the user wrote.
//! This crate is that form. A [`RuleProgram`] is built once when a rule is
//! registered and then evaluated many times per simulation step:
//!
//! * names are interned — every sensor `(device, variable)` pair and event
//!   `(channel, name)` pattern is mapped to a dense `u32` slot by the shared
//!   [`Interner`], so evaluation never hashes strings;
//! * the condition is flattened — the condition tree becomes compact
//!   bytecode ([`CondCode`]) over a predicate table, preserving the source
//!   structure and short-circuit order exactly (required because `held_for`
//!   observation is stateful);
//! * numeric constraints are precompiled — each DNF conjunct's linear
//!   constraints are lowered once into a [`CompiledConjunct`] over local
//!   solver variables, which conflict checking merges pairwise via
//!   [`merge_conjuncts`] instead of re-deriving systems per comparison.
//!
//! The crate depends only on `cadel-types` and `cadel-simplex`; the engine
//! plugs in through the [`ContextView`] and [`HeldObserver`] traits, and the
//! rule crate owns the lowering from `Rule` to `RuleProgram`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod error;
pub mod eval;
pub mod interner;
pub mod program;

pub use arena::{HeldKey, ProgramArena, ProgramRef};
pub use error::IrError;
pub use eval::{
    condition_holds, eval_code, note_type_mismatch, until_holds, ContextView, HeldObserver,
    SensorRead,
};
pub use interner::{ChannelSlot, EventSlot, Interner, PlaceSlot, SensorSlot, SharedInterner};
pub use program::{merge_conjuncts, CompiledConjunct, CondCode, Op, Pred, RuleProgram};
