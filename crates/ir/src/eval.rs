//! Evaluation of compiled rule programs against a dense context view.
//!
//! The evaluator is generic over two host-provided capabilities so the IR
//! crate stays independent of the engine:
//!
//! * [`ContextView`] — slot-indexed reads of the live context (the engine's
//!   `ContextStore` implements it over its dense boards);
//! * [`HeldObserver`] — the continuous-truth bookkeeping behind `HeldFor`
//!   predicates (implemented by the engine's `HeldTracker`, shared with the
//!   AST interpreter through identical fingerprints).
//!
//! Evaluation order and short-circuiting replicate the AST interpreter
//! exactly: `HeldFor` observation is side-effectful, so a skipped child is
//! a semantic fact, not an optimization.

use crate::program::{Op, Pred, RuleProgram};
use cadel_obs::{Event as ObsEvent, LazyCounter, Level};
use cadel_types::{Date, PersonId, PlaceId, SimTime, Value, Weekday};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Numeric predicates that saw a present but unusable reading (wrong value
/// type, or a quantity of the wrong dimension). Counts every occurrence;
/// the structured event is rate-limited.
static TYPE_MISMATCHES: LazyCounter = LazyCounter::new("engine_type_mismatch_total");
/// Occurrence count backing the event rate limit (separate from the
/// counter so the limit works even with metrics disabled).
static TYPE_MISMATCH_SEEN: AtomicU64 = AtomicU64::new(0);

/// Records a unit/type mismatch: a sensor reading was present but could
/// not satisfy a numeric predicate (non-numeric value, or a quantity of a
/// different dimension). The predicate still evaluates false — this makes
/// the degradation diagnosable instead of invisible.
///
/// Every occurrence ticks `engine_type_mismatch_total`; the structured
/// `engine.type_mismatch` event is rate-limited (the first 8 occurrences,
/// then every 1024th) so one mis-wired sensor in a hot loop cannot flood
/// the collector. Shared by the compiled evaluator and the engine's AST
/// interpreter so both paths report identically.
pub fn note_type_mismatch(
    path: &'static str,
    subject: &dyn fmt::Display,
    found: &dyn fmt::Display,
) {
    TYPE_MISMATCHES.inc();
    if !cadel_obs::enabled() {
        return;
    }
    let occurrence = TYPE_MISMATCH_SEEN.fetch_add(1, Ordering::Relaxed) + 1;
    if occurrence <= 8 || occurrence.is_multiple_of(1024) {
        cadel_obs::emit(
            ObsEvent::new("engine.type_mismatch", Level::Warn)
                .with_field("path", path)
                .with_field("subject", subject.to_string())
                .with_field("found", found.to_string())
                .with_field("occurrences", occurrence),
        );
    }
}

/// Display label for a sensor slot in mismatch events (the compiled path
/// has no string key at hand; the slot index is stable per interner).
struct SlotLabel(crate::SensorSlot);

impl fmt::Display for SlotLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sensor-slot {}", self.0.index())
    }
}

/// A policy-mediated sensor read: either a usable value or a forced
/// verdict when the host's freshness policy overrides the raw reading.
///
/// Hosts with staleness semantics (the engine's `ContextStore`) return
/// `AssumeFalse` / `AssumeTrue` for readings older than their freshness
/// window (fail-closed / fail-open), or keep returning `Value` to hold
/// the last value. The default [`ContextView::sensor_read`] has no
/// staleness notion: a present value is `Value`, an absent one is
/// `AssumeFalse` (the pre-existing semantics of a missing reading).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SensorRead<'a> {
    /// A usable reading (fresh, or held per policy).
    Value(&'a Value),
    /// No usable reading; predicates over this slot evaluate true.
    AssumeTrue,
    /// No usable reading; predicates over this slot evaluate false.
    AssumeFalse,
}

/// Slot-indexed, read-only view of the live context.
pub trait ContextView {
    /// The latest value on a sensor slot, if any.
    fn sensor_value(&self, slot: crate::SensorSlot) -> Option<&Value>;
    /// The policy-mediated reading on a sensor slot. Default: no staleness
    /// policy — present values pass through, absent ones fail closed.
    fn sensor_read(&self, slot: crate::SensorSlot) -> SensorRead<'_> {
        match self.sensor_value(slot) {
            Some(value) => SensorRead::Value(value),
            None => SensorRead::AssumeFalse,
        }
    }
    /// Whether the event pattern on a slot is currently active.
    fn event_active_slot(&self, slot: crate::EventSlot) -> bool;
    /// Where a person currently is, if known.
    fn person_place(&self, person: &PersonId) -> Option<&PlaceId>;
    /// Whether at least one person is at the place.
    fn place_occupied(&self, place: &PlaceId) -> bool;
    /// The current instant.
    fn now(&self) -> SimTime;
    /// The weekday at the current instant.
    fn weekday(&self) -> Weekday;
    /// The calendar date at the current instant.
    fn date(&self) -> Date;
}

/// Continuous-truth tracking for `HeldFor` predicates.
pub trait HeldObserver {
    /// Records the inner fact's truth under `fingerprint` and returns since
    /// when it has been continuously true (`None` when currently false).
    fn observe(&mut self, fingerprint: &str, inner_true: bool, now: SimTime) -> Option<SimTime>;
}

/// Whether a program's trigger condition holds right now.
pub fn condition_holds(
    program: &RuleProgram,
    view: &impl ContextView,
    held: &mut impl HeldObserver,
) -> bool {
    eval_code(program.condition(), program.preds(), view, held)
}

/// Whether a program's `until` condition holds right now (`None` when the
/// rule has no release clause).
pub fn until_holds(
    program: &RuleProgram,
    view: &impl ContextView,
    held: &mut impl HeldObserver,
) -> Option<bool> {
    program
        .until()
        .map(|code| eval_code(code, program.preds(), view, held))
}

/// Evaluates flattened condition bytecode over a predicate table.
///
/// The code may be a whole [`crate::CondCode`] or an arena span: `And`/`Or`
/// `end` offsets are local to the slice, while `Op::Pred` indexes are
/// interpreted against whatever predicate table is passed alongside (a
/// program's own table, or the arena's global one with rebased indexes).
pub fn eval_code(
    code: &[Op],
    preds: &[Pred],
    view: &impl ContextView,
    held: &mut impl HeldObserver,
) -> bool {
    if code.is_empty() {
        return true;
    }
    let (value, _next) = eval_at(code, preds, 0, view, held);
    value
}

/// Evaluates the instruction at `pc`, returning its value and the pc just
/// past its region.
fn eval_at(
    code: &[Op],
    preds: &[Pred],
    pc: usize,
    view: &impl ContextView,
    held: &mut impl HeldObserver,
) -> (bool, usize) {
    match code[pc] {
        Op::True => (true, pc + 1),
        Op::Pred(i) => (eval_pred(preds, i, view, held), pc + 1),
        Op::And { end } => {
            let end = end as usize;
            let mut child = pc + 1;
            while child < end {
                let (value, next) = eval_at(code, preds, child, view, held);
                if !value {
                    // Short-circuit: remaining children are not evaluated,
                    // matching `Iterator::all` in the AST interpreter.
                    return (false, end);
                }
                child = next;
            }
            (true, end)
        }
        Op::Or { end } => {
            let end = end as usize;
            let mut child = pc + 1;
            while child < end {
                let (value, next) = eval_at(code, preds, child, view, held);
                if value {
                    return (true, end);
                }
                child = next;
            }
            (false, end)
        }
    }
}

fn eval_pred(
    preds: &[Pred],
    index: u32,
    view: &impl ContextView,
    held: &mut impl HeldObserver,
) -> bool {
    match &preds[index as usize] {
        Pred::NumCmp {
            slot,
            op,
            threshold,
            dim,
        } => match view.sensor_read(*slot) {
            SensorRead::Value(Value::Number(q)) => {
                if q.dimension() == *dim {
                    op.holds(q.canonical_value(), *threshold)
                } else {
                    note_type_mismatch("compiled", &SlotLabel(*slot), q);
                    false
                }
            }
            SensorRead::Value(other) => {
                note_type_mismatch("compiled", &SlotLabel(*slot), other);
                false
            }
            SensorRead::AssumeFalse => false,
            SensorRead::AssumeTrue => true,
        },
        Pred::StateEq { slot, expected } => match view.sensor_read(*slot) {
            SensorRead::Value(observed) => match expected {
                Value::Text(text) => observed.text_matches(text),
                other => other == observed,
            },
            SensorRead::AssumeTrue => true,
            SensorRead::AssumeFalse => false,
        },
        Pred::PersonAt { person, place } => view.person_place(person) == Some(place),
        Pred::SomebodyAt(place) => view.place_occupied(place),
        Pred::NobodyAt(place) => !view.place_occupied(place),
        Pred::Event(slot) => view.event_active_slot(*slot),
        Pred::TimeIn(window) => window.contains(view.now().time_of_day()),
        Pred::WeekdayIs(day) => view.weekday() == *day,
        Pred::DateIs(date) => view.date() == *date,
        Pred::HeldFor {
            inner,
            duration,
            fingerprint,
        } => {
            let inner_true = eval_pred(preds, *inner, view, held);
            match held.observe(fingerprint, inner_true, view.now()) {
                Some(since) => view.now().since(since) >= *duration,
                None => false,
            }
        }
        Pred::Never => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventSlot, SensorSlot};
    use cadel_simplex::RelOp;
    use cadel_types::unit::Dimension;
    use cadel_types::{Quantity, Rational, SimDuration, Unit};
    use std::collections::HashMap;

    /// A minimal context for exercising the evaluator without the engine.
    #[derive(Default)]
    struct TestView {
        sensors: Vec<Option<Value>>,
        events: Vec<bool>,
        now: SimTime,
    }

    impl ContextView for TestView {
        fn sensor_value(&self, slot: SensorSlot) -> Option<&Value> {
            self.sensors.get(slot.index())?.as_ref()
        }
        fn event_active_slot(&self, slot: EventSlot) -> bool {
            self.events.get(slot.index()).copied().unwrap_or(false)
        }
        fn person_place(&self, _: &PersonId) -> Option<&PlaceId> {
            None
        }
        fn place_occupied(&self, _: &PlaceId) -> bool {
            false
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn weekday(&self) -> Weekday {
            Weekday::Monday
        }
        fn date(&self) -> Date {
            Date::new(2005, 6, 6).unwrap()
        }
    }

    #[derive(Default)]
    struct TestHeld {
        since: HashMap<String, SimTime>,
        observations: usize,
    }

    impl HeldObserver for TestHeld {
        fn observe(&mut self, fp: &str, inner_true: bool, now: SimTime) -> Option<SimTime> {
            self.observations += 1;
            if inner_true {
                Some(*self.since.entry(fp.to_owned()).or_insert(now))
            } else {
                self.since.remove(fp);
                None
            }
        }
    }

    fn num_pred(slot: u32, op: RelOp, threshold: i64) -> Pred {
        Pred::NumCmp {
            slot: SensorSlot::new(slot),
            op,
            threshold: Rational::from_integer(threshold),
            dim: Dimension::Temperature,
        }
    }

    #[test]
    fn empty_code_is_true() {
        let view = TestView::default();
        let mut held = TestHeld::default();
        assert!(eval_code(&[], &[], &view, &mut held));
        assert!(eval_code(&[Op::True], &[], &view, &mut held));
    }

    #[test]
    fn numeric_pred_checks_dimension_and_value() {
        let mut view = TestView {
            sensors: vec![Some(Value::Number(Quantity::from_integer(
                28,
                Unit::Celsius,
            )))],
            ..TestView::default()
        };
        let mut held = TestHeld::default();
        let preds = vec![num_pred(0, RelOp::Gt, 26)];
        let code = vec![Op::Pred(0)];
        assert!(eval_code(&code, &preds, &view, &mut held));
        // Wrong dimension: fails closed.
        view.sensors = vec![Some(Value::Number(Quantity::from_integer(
            90,
            Unit::Percent,
        )))];
        assert!(!eval_code(&code, &preds, &view, &mut held));
        // No reading: false.
        view.sensors = vec![None];
        assert!(!eval_code(&code, &preds, &view, &mut held));
    }

    #[test]
    fn and_or_short_circuit_skips_held_observation() {
        let view = TestView {
            sensors: vec![Some(Value::Number(Quantity::from_integer(
                10,
                Unit::Celsius,
            )))],
            ..TestView::default()
        };
        let mut held = TestHeld::default();
        let preds = vec![
            num_pred(0, RelOp::Gt, 26), // false
            Pred::HeldFor {
                inner: 2,
                duration: SimDuration::from_minutes(1),
                fingerprint: "x".into(),
            },
            num_pred(0, RelOp::Gt, 0), // inner, true
        ];
        // And(false, held_for): held_for must NOT be observed.
        let code = vec![Op::And { end: 3 }, Op::Pred(0), Op::Pred(1)];
        assert!(!eval_code(&code, &preds, &view, &mut held));
        assert_eq!(held.observations, 0);
        // Or(true, held_for): held_for must NOT be observed either.
        let preds2 = vec![
            num_pred(0, RelOp::Gt, 0), // true
            preds[1].clone(),
            preds[2].clone(),
        ];
        let code = vec![Op::Or { end: 3 }, Op::Pred(0), Op::Pred(1)];
        assert!(eval_code(&code, &preds2, &view, &mut held));
        assert_eq!(held.observations, 0);
    }

    #[test]
    fn nested_groups_evaluate_in_order() {
        let view = TestView {
            sensors: vec![Some(Value::Number(Quantity::from_integer(
                30,
                Unit::Celsius,
            )))],
            events: vec![true],
            ..TestView::default()
        };
        let mut held = TestHeld::default();
        let preds = vec![
            num_pred(0, RelOp::Gt, 26),     // true
            Pred::Event(EventSlot::new(0)), // true
            num_pred(0, RelOp::Lt, 0),      // false
        ];
        // (p0 and (p2 or p1)) == true
        let code = vec![
            Op::And { end: 5 },
            Op::Pred(0),
            Op::Or { end: 5 },
            Op::Pred(2),
            Op::Pred(1),
        ];
        assert!(eval_code(&code, &preds, &view, &mut held));
        // Empty And is true, empty Or is false (matches all()/any()).
        assert!(eval_code(&[Op::And { end: 1 }], &preds, &view, &mut held));
        assert!(!eval_code(&[Op::Or { end: 1 }], &preds, &view, &mut held));
    }

    #[test]
    fn sensor_read_override_forces_predicate_verdicts() {
        /// A view whose freshness policy says "everything is stale":
        /// sensor reads come back as a forced verdict.
        struct StaleView {
            inner: TestView,
            verdict: bool,
        }
        impl ContextView for StaleView {
            fn sensor_value(&self, slot: SensorSlot) -> Option<&Value> {
                self.inner.sensor_value(slot)
            }
            fn sensor_read(&self, _slot: SensorSlot) -> SensorRead<'_> {
                if self.verdict {
                    SensorRead::AssumeTrue
                } else {
                    SensorRead::AssumeFalse
                }
            }
            fn event_active_slot(&self, slot: EventSlot) -> bool {
                self.inner.event_active_slot(slot)
            }
            fn person_place(&self, p: &PersonId) -> Option<&PlaceId> {
                self.inner.person_place(p)
            }
            fn place_occupied(&self, p: &PlaceId) -> bool {
                self.inner.place_occupied(p)
            }
            fn now(&self) -> SimTime {
                self.inner.now()
            }
            fn weekday(&self) -> Weekday {
                self.inner.weekday()
            }
            fn date(&self) -> Date {
                self.inner.date()
            }
        }

        let inner = TestView {
            sensors: vec![Some(Value::Number(Quantity::from_integer(
                10,
                Unit::Celsius,
            )))],
            ..TestView::default()
        };
        let mut held = TestHeld::default();
        // The raw value (10°C) fails `> 26` — but a fail-open policy
        // forces the predicate true, and fail-closed forces it false even
        // for `> 0` (which the raw value would satisfy).
        let preds = vec![
            num_pred(0, RelOp::Gt, 26),
            num_pred(0, RelOp::Gt, 0),
            Pred::StateEq {
                slot: SensorSlot::new(0),
                expected: Value::Bool(true),
            },
        ];
        let open = StaleView {
            inner,
            verdict: true,
        };
        for i in 0..3 {
            assert!(eval_code(&[Op::Pred(i)], &preds, &open, &mut held));
        }
        let closed = StaleView {
            inner: open.inner,
            verdict: false,
        };
        for i in 0..3 {
            assert!(!eval_code(&[Op::Pred(i)], &preds, &closed, &mut held));
        }
    }

    #[test]
    fn held_for_requires_continuous_truth() {
        let mut view = TestView {
            sensors: vec![Some(Value::Number(Quantity::from_integer(
                30,
                Unit::Celsius,
            )))],
            ..TestView::default()
        };
        let mut held = TestHeld::default();
        let preds = vec![
            Pred::HeldFor {
                inner: 1,
                duration: SimDuration::from_minutes(10),
                fingerprint: "hot~600000".into(),
            },
            num_pred(0, RelOp::Gt, 26),
        ];
        let code = vec![Op::Pred(0)];
        assert!(!eval_code(&code, &preds, &view, &mut held)); // just started
        view.now = SimTime::EPOCH + SimDuration::from_minutes(11);
        assert!(eval_code(&code, &preds, &view, &mut held));
        // Drops below: resets.
        view.sensors = vec![Some(Value::Number(Quantity::from_integer(
            10,
            Unit::Celsius,
        )))];
        assert!(!eval_code(&code, &preds, &view, &mut held));
        assert!(held.since.is_empty());
    }
}
