//! The compiled rule program: predicate table, condition bytecode, and
//! per-conjunct precompiled constraint systems.

use crate::error::IrError;
use crate::interner::{EventSlot, SensorSlot};
use cadel_simplex::{Constraint, LinExpr, RelOp, VarId};
use cadel_types::unit::Dimension;
use cadel_types::{
    Date, PersonId, PlaceId, Rational, SensorKey, SimDuration, TimeWindow, Value, Weekday,
};

/// A compiled primitive predicate — one entry of a program's predicate
/// table. Each variant mirrors one `Atom` kind of the rule layer, with
/// every string lookup resolved to a dense slot and every unit conversion
/// done at compile time.
#[derive(Clone, Debug, PartialEq)]
pub enum Pred {
    /// Numeric sensor comparison: the reading (converted to the canonical
    /// unit of its dimension) against a canonicalized threshold. Readings
    /// of a different dimension never satisfy the predicate.
    NumCmp {
        /// The sensor board slot to read.
        slot: SensorSlot,
        /// The comparison operator.
        op: RelOp,
        /// The threshold in canonical units.
        threshold: Rational,
        /// The dimension the reading must have.
        dim: Dimension,
    },
    /// Device state equality (`power(tv) == true`); text comparison is
    /// case-insensitive, matching `StateAtom::holds_for`.
    StateEq {
        /// The sensor board slot to read.
        slot: SensorSlot,
        /// The expected value.
        expected: Value,
    },
    /// A specific person is at a place.
    PersonAt {
        /// The person.
        person: PersonId,
        /// The place.
        place: PlaceId,
    },
    /// At least one person is at the place.
    SomebodyAt(PlaceId),
    /// No person is at the place.
    NobodyAt(PlaceId),
    /// An event pattern is currently active.
    Event(EventSlot),
    /// The time of day falls in the window.
    TimeIn(TimeWindow),
    /// The current weekday matches.
    WeekdayIs(Weekday),
    /// The current date matches.
    DateIs(Date),
    /// The inner predicate has held continuously for the duration.
    HeldFor {
        /// Index of the inner predicate in the program's table.
        inner: u32,
        /// How long it must have held.
        duration: SimDuration,
        /// The tracker fingerprint — precomputed at compile time, byte-equal
        /// to the one the AST evaluator derives, so compiled and interpreted
        /// evaluation share one continuous-truth history.
        fingerprint: Box<str>,
    },
    /// An atom kind this IR version cannot evaluate; always false (fail
    /// closed), matching the AST evaluator's default arm.
    Never,
}

/// One instruction of the flattened condition bytecode.
///
/// The code is a pre-order flattening of the original `Condition` tree:
/// an `And`/`Or` op covers the instructions up to its `end` offset. The
/// original tree shape and child order are preserved — evaluation must
/// short-circuit exactly like the AST interpreter because `HeldFor`
/// predicates have observation side effects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Always true (`Condition::True`).
    True,
    /// Evaluate the predicate at this index in the program's table.
    Pred(u32),
    /// All children in `[pc+1, end)` must hold; stops at the first false.
    And {
        /// One past the last instruction of the region.
        end: u32,
    },
    /// At least one child in `[pc+1, end)` must hold; stops at the first
    /// true.
    Or {
        /// One past the last instruction of the region.
        end: u32,
    },
}

/// Flattened condition bytecode.
pub type CondCode = Vec<Op>;

/// The linear-constraint system of one DNF conjunct, lowered once at
/// compile time.
///
/// Constraints are expressed over *local* variable indices `0..vars.len()`;
/// `vars[i]` names the sensor behind local variable `i` and `dims[i]` its
/// physical dimension. Two conjuncts' systems are combined with
/// [`merge_conjuncts`], which unifies shared sensors and remaps the second
/// system's variables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompiledConjunct {
    constraints: Vec<Constraint>,
    vars: Vec<SensorKey>,
    dims: Vec<Dimension>,
}

impl CompiledConjunct {
    /// Creates an empty (always numerically feasible) conjunct system.
    pub fn new() -> CompiledConjunct {
        CompiledConjunct::default()
    }

    /// Adds the bound `sensor op rhs` (rhs in canonical units), interning
    /// the sensor as a local variable.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimensionMismatch`] when the sensor was already
    /// bounded with a different dimension.
    pub fn add_bound(
        &mut self,
        sensor: &SensorKey,
        dim: Dimension,
        op: RelOp,
        rhs: Rational,
    ) -> Result<(), IrError> {
        let var = match self.vars.iter().position(|k| k == sensor) {
            Some(i) => {
                if self.dims[i] != dim {
                    return Err(IrError::DimensionMismatch {
                        context: format!(
                            "sensor {} constrained as {:?} and {:?}",
                            sensor, self.dims[i], dim
                        ),
                    });
                }
                VarId::new(i as u32)
            }
            None => {
                self.vars.push(sensor.clone());
                self.dims.push(dim);
                VarId::new((self.vars.len() - 1) as u32)
            }
        };
        self.constraints
            .push(Constraint::new(LinExpr::var(var), op, rhs));
        Ok(())
    }

    /// The constraints, over local variables `0..vars().len()`.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The sensor behind each local variable.
    pub fn vars(&self) -> &[SensorKey] {
        &self.vars
    }

    /// The dimension of each local variable.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }
}

/// Merges two precompiled conjunct systems into one joint system, unifying
/// variables that name the same sensor — the compiled equivalent of
/// extracting both conjuncts through one shared `VarPool`.
///
/// Returns the joint constraints plus the sensor behind each joint
/// variable, in interning order (all of `a`'s variables first, then `b`'s
/// new ones) so feasibility witnesses can be labelled.
///
/// # Errors
///
/// Returns [`IrError::DimensionMismatch`] when the two systems bound a
/// shared sensor with different dimensions.
pub fn merge_conjuncts(
    a: &CompiledConjunct,
    b: &CompiledConjunct,
) -> Result<(Vec<Constraint>, Vec<SensorKey>), IrError> {
    let mut vars = a.vars.clone();
    let mut dims = a.dims.clone();
    let mut constraints = a.constraints.clone();
    let mut remap = Vec::with_capacity(b.vars.len());
    for (i, key) in b.vars.iter().enumerate() {
        match vars.iter().position(|k| k == key) {
            Some(j) => {
                if dims[j] != b.dims[i] {
                    return Err(IrError::DimensionMismatch {
                        context: format!(
                            "sensor {} constrained as {:?} and {:?}",
                            key, dims[j], b.dims[i]
                        ),
                    });
                }
                remap.push(VarId::new(j as u32));
            }
            None => {
                vars.push(key.clone());
                dims.push(b.dims[i]);
                remap.push(VarId::new((vars.len() - 1) as u32));
            }
        }
    }
    constraints.extend(
        b.constraints
            .iter()
            .map(|c| c.map_vars(|v| remap[v.index()])),
    );
    Ok((constraints, vars))
}

/// A rule compiled to its executable form: the paper's *rule object*.
///
/// Holds everything the engine's fast path and the conflict checker need,
/// derived once at registration time:
///
/// * [`RuleProgram::condition`] / [`RuleProgram::until`] — flattened
///   bytecode over the shared predicate table;
/// * [`RuleProgram::conjuncts`] — one precompiled linear-constraint system
///   per DNF disjunct, aligned index-for-index with the rule's `Dnf`.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleProgram {
    preds: Vec<Pred>,
    condition: CondCode,
    until: Option<CondCode>,
    conjuncts: Vec<CompiledConjunct>,
}

impl RuleProgram {
    /// Assembles a program from its parts (used by the rule compiler).
    pub fn new(
        preds: Vec<Pred>,
        condition: CondCode,
        until: Option<CondCode>,
        conjuncts: Vec<CompiledConjunct>,
    ) -> RuleProgram {
        RuleProgram {
            preds,
            condition,
            until,
            conjuncts,
        }
    }

    /// The predicate table shared by the condition and `until` code.
    pub fn preds(&self) -> &[Pred] {
        &self.preds
    }

    /// The compiled trigger condition.
    pub fn condition(&self) -> &CondCode {
        &self.condition
    }

    /// The compiled release condition, when the rule has one.
    pub fn until(&self) -> Option<&CondCode> {
        self.until.as_ref()
    }

    /// The precompiled constraint system of each DNF conjunct, in DNF
    /// order.
    pub fn conjuncts(&self) -> &[CompiledConjunct] {
        &self.conjuncts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_simplex::{is_satisfiable, solve, Solution};
    use cadel_types::DeviceId;

    fn key(device: &str, variable: &str) -> SensorKey {
        SensorKey::new(DeviceId::new(device), variable)
    }

    #[test]
    fn conjunct_interns_locally_and_solves() {
        let mut c = CompiledConjunct::new();
        c.add_bound(
            &key("thermo", "temperature"),
            Dimension::Temperature,
            RelOp::Gt,
            Rational::from_integer(26),
        )
        .unwrap();
        c.add_bound(
            &key("thermo", "temperature"),
            Dimension::Temperature,
            RelOp::Lt,
            Rational::from_integer(20),
        )
        .unwrap();
        assert_eq!(c.vars().len(), 1);
        assert_eq!(c.constraints().len(), 2);
        assert!(!is_satisfiable(c.constraints()).unwrap());
    }

    #[test]
    fn conjunct_rejects_dimension_mismatch() {
        let mut c = CompiledConjunct::new();
        c.add_bound(
            &key("multi", "reading"),
            Dimension::Temperature,
            RelOp::Gt,
            Rational::from_integer(26),
        )
        .unwrap();
        let err = c
            .add_bound(
                &key("multi", "reading"),
                Dimension::Ratio,
                RelOp::Gt,
                Rational::from_integer(60),
            )
            .unwrap_err();
        assert!(err.to_string().contains("constrained as"));
    }

    #[test]
    fn merge_unifies_shared_sensors() {
        // a: t > 26, h > 65; b: t > 25, h > 60 — the paper's aircon pair.
        let mut a = CompiledConjunct::new();
        a.add_bound(
            &key("thermo", "temperature"),
            Dimension::Temperature,
            RelOp::Gt,
            Rational::from_integer(26),
        )
        .unwrap();
        a.add_bound(
            &key("hygro", "humidity"),
            Dimension::Ratio,
            RelOp::Gt,
            Rational::from_integer(65),
        )
        .unwrap();
        let mut b = CompiledConjunct::new();
        b.add_bound(
            &key("thermo", "temperature"),
            Dimension::Temperature,
            RelOp::Gt,
            Rational::from_integer(25),
        )
        .unwrap();
        b.add_bound(
            &key("hygro", "humidity"),
            Dimension::Ratio,
            RelOp::Gt,
            Rational::from_integer(60),
        )
        .unwrap();
        let (system, vars) = merge_conjuncts(&a, &b).unwrap();
        assert_eq!(vars.len(), 2); // shared sensors unified
        assert_eq!(system.len(), 4);
        match solve(&system).unwrap() {
            Solution::Feasible(assignment) => assert_eq!(assignment.len(), 2),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn merge_appends_new_sensors_after_a() {
        let mut a = CompiledConjunct::new();
        a.add_bound(
            &key("thermo", "temperature"),
            Dimension::Temperature,
            RelOp::Gt,
            Rational::from_integer(26),
        )
        .unwrap();
        let mut b = CompiledConjunct::new();
        b.add_bound(
            &key("hygro", "humidity"),
            Dimension::Ratio,
            RelOp::Gt,
            Rational::from_integer(60),
        )
        .unwrap();
        let (_, vars) = merge_conjuncts(&a, &b).unwrap();
        assert_eq!(vars[0], key("thermo", "temperature"));
        assert_eq!(vars[1], key("hygro", "humidity"));
    }

    #[test]
    fn merge_rejects_cross_system_dimension_mismatch() {
        let mut a = CompiledConjunct::new();
        a.add_bound(
            &key("multi", "reading"),
            Dimension::Temperature,
            RelOp::Gt,
            Rational::from_integer(26),
        )
        .unwrap();
        let mut b = CompiledConjunct::new();
        b.add_bound(
            &key("multi", "reading"),
            Dimension::Ratio,
            RelOp::Gt,
            Rational::from_integer(60),
        )
        .unwrap();
        assert!(merge_conjuncts(&a, &b).is_err());
    }
}
