//! Errors raised while building compiled rule artifacts.

use std::fmt;

/// An error raised while compiling a rule into IR.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// The same sensor was constrained under two different physical
    /// dimensions, so no single solver variable can represent it.
    DimensionMismatch {
        /// Human-readable description of the clash.
        context: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
        }
    }
}

impl std::error::Error for IrError {}
