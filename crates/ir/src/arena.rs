//! A workspace-level arena of compiled rule programs in data-oriented
//! (structure-of-arrays) layout.
//!
//! Per-[`RuleProgram`] `Vec<Pred>`/`Vec<Op>` storage
//! scatters a fleet's programs across the heap and leaves the engine's
//! trigger index to re-derive footprints from the AST. The
//! [`ProgramArena`] instead appends every registered program into shared
//! contiguous tables:
//!
//! * `preds` / `ops` — one global predicate table and one global opcode
//!   table; each rule owns a dense span of both, with `Op::Pred` and
//!   `HeldFor::inner` indexes rebased to the global table at append time
//!   (`And`/`Or` `end` offsets stay span-local, so evaluation slices the
//!   span and passes the global predicate table);
//! * footprint columns — the interned [`SensorSlot`]s, [`PlaceSlot`]s and
//!   [`ChannelSlot`]s a rule's condition *and* `until` clause read, plus
//!   its `held for` fingerprints ([`HeldKey`]), extracted once with an
//!   exhaustive match over [`Pred`] so inverted indexes are built without
//!   ever touching the AST (and a new predicate kind is a compile error
//!   here, not a silent every-step fallback).
//!
//! Removal tombstones a rule's spans; the arena compacts (rebuilds and
//! rebase-remaps all spans) once dead entries outnumber live ones. Spans
//! are only meaningful between mutations — consumers hold a [`ProgramRef`]
//! no longer than one evaluation phase.

use crate::interner::{ChannelSlot, Interner, PlaceSlot, SensorSlot};
use crate::program::{Op, Pred, RuleProgram};
use crate::{ContextView, HeldObserver};
use cadel_types::{RuleId, SimDuration};
use std::collections::HashMap;

/// One `held for` predicate of a rule: where its [`Pred::HeldFor`] lives
/// in the arena table, and whether its inner subtree is purely
/// property-driven (see [`ProgramRef::temporal`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeldKey {
    /// Index of the `HeldFor` predicate in the arena's global table.
    pub pred: u32,
    /// Whether the dwell window can be scheduled on a deadline heap: true
    /// iff the inner subtree contains only property-driven predicates
    /// (numeric/state comparisons, presence) or nested eligible dwells.
    /// Time-of-day, date and event predicates flip without a property
    /// change, so dwells over them fall back to every-step evaluation.
    pub eligible: bool,
}

/// A rule's spans into the arena tables. Obtained from
/// [`ProgramArena::program_ref`]; invalidated by the next arena mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgramRef {
    preds: (u32, u32),
    condition: (u32, u32),
    until: Option<(u32, u32)>,
    sensors: (u32, u32),
    places: (u32, u32),
    channels: (u32, u32),
    helds: (u32, u32),
    temporal: bool,
}

impl ProgramRef {
    /// Whether the rule's verdict can change with the passage of time or
    /// non-property context alone (time-of-day / weekday / date windows,
    /// ineligible dwells, or unevaluable predicates) and must therefore be
    /// re-evaluated every step rather than only when dirty.
    pub fn temporal(&self) -> bool {
        self.temporal
    }
}

/// Contiguous SoA storage for every compiled program of a rule database.
#[derive(Clone, Debug, Default)]
pub struct ProgramArena {
    preds: Vec<Pred>,
    ops: Vec<Op>,
    sensor_col: Vec<SensorSlot>,
    place_col: Vec<PlaceSlot>,
    channel_col: Vec<ChannelSlot>,
    held_col: Vec<HeldKey>,
    refs: HashMap<RuleId, ProgramRef>,
    dead_preds: usize,
    dead_ops: usize,
}

/// Whether the subtree rooted at `index` is heap-eligible: only
/// property-driven predicates (or nested eligible dwells), so its truth
/// can change only at steps where its sensors/places are dirty or a dwell
/// deadline fires.
fn subtree_eligible(preds: &[Pred], index: u32) -> bool {
    match &preds[index as usize] {
        Pred::NumCmp { .. }
        | Pred::StateEq { .. }
        | Pred::PersonAt { .. }
        | Pred::SomebodyAt(_)
        | Pred::NobodyAt(_) => true,
        Pred::HeldFor { inner, .. } => subtree_eligible(preds, *inner),
        Pred::Event(_) | Pred::TimeIn(_) | Pred::WeekdayIs(_) | Pred::DateIs(_) | Pred::Never => {
            false
        }
    }
}

impl ProgramArena {
    /// Creates an empty arena.
    pub fn new() -> ProgramArena {
        ProgramArena::default()
    }

    /// Appends a compiled program, rebasing its predicate indexes into the
    /// global tables and extracting its slot footprint. Places and
    /// channels are interned here — the caller passes the same (locked)
    /// interner the program was compiled against. Replaces any previous
    /// entry for the id.
    pub fn insert(&mut self, id: RuleId, program: &RuleProgram, interner: &mut Interner) {
        self.remove(id);
        let pred_base = self.preds.len() as u32;
        for pred in program.preds() {
            self.preds.push(match pred {
                Pred::HeldFor {
                    inner,
                    duration,
                    fingerprint,
                } => Pred::HeldFor {
                    inner: inner + pred_base,
                    duration: *duration,
                    fingerprint: fingerprint.clone(),
                },
                other => other.clone(),
            });
        }
        let condition = self.append_code(program.condition(), pred_base);
        let until = program
            .until()
            .map(|code| self.append_code(code, pred_base));

        // Footprint extraction. The predicate span already contains every
        // `HeldFor` inner as its own entry, so a flat pass covers nested
        // subtrees too. This match is deliberately exhaustive: adding a
        // `Pred` variant must force a decision about how it is indexed.
        let sensors = self.sensor_col.len() as u32;
        let places = self.place_col.len() as u32;
        let channels = self.channel_col.len() as u32;
        let helds = self.held_col.len() as u32;
        let mut temporal = false;
        for index in pred_base as usize..self.preds.len() {
            match &self.preds[index] {
                Pred::NumCmp { slot, .. } | Pred::StateEq { slot, .. } => {
                    self.sensor_col.push(*slot);
                }
                Pred::PersonAt { place, .. } | Pred::SomebodyAt(place) | Pred::NobodyAt(place) => {
                    self.place_col.push(interner.place_slot(place));
                }
                Pred::Event(slot) => {
                    // The channel slot exists: `event_slot` interned it
                    // when the pattern itself was interned at compile time.
                    if let Some(channel) = interner.event_channel_of(*slot) {
                        self.channel_col.push(channel);
                    } else {
                        temporal = true;
                    }
                }
                Pred::TimeIn(_) | Pred::WeekdayIs(_) | Pred::DateIs(_) | Pred::Never => {
                    temporal = true;
                }
                Pred::HeldFor { .. } => {
                    // Inner indexes were already rebased, so eligibility
                    // walks the global table.
                    let eligible = subtree_eligible(&self.preds, index as u32);
                    temporal |= !eligible;
                    self.held_col.push(HeldKey {
                        pred: index as u32,
                        eligible,
                    });
                }
            }
        }
        sort_dedup_tail(&mut self.sensor_col, sensors as usize);
        sort_dedup_tail(&mut self.place_col, places as usize);
        sort_dedup_tail(&mut self.channel_col, channels as usize);

        self.refs.insert(
            id,
            ProgramRef {
                preds: (pred_base, self.preds.len() as u32),
                condition,
                until,
                sensors: (sensors, self.sensor_col.len() as u32),
                places: (places, self.place_col.len() as u32),
                channels: (channels, self.channel_col.len() as u32),
                helds: (helds, self.held_col.len() as u32),
                temporal,
            },
        );
    }

    fn append_code(&mut self, code: &[Op], pred_base: u32) -> (u32, u32) {
        let start = self.ops.len() as u32;
        // `And`/`Or` `end` offsets are local to the code span and stay
        // valid when the span is evaluated as a slice; only predicate
        // indexes are rebased to the global table.
        self.ops.extend(code.iter().map(|op| match op {
            Op::Pred(i) => Op::Pred(i + pred_base),
            other => *other,
        }));
        (start, self.ops.len() as u32)
    }

    /// Tombstones a rule's spans, compacting the tables once dead entries
    /// outnumber live ones.
    pub fn remove(&mut self, id: RuleId) {
        let Some(r) = self.refs.remove(&id) else {
            return;
        };
        self.dead_preds += (r.preds.1 - r.preds.0) as usize;
        let (s, e) = r.condition;
        self.dead_ops += (e - s) as usize;
        if let Some((s, e)) = r.until {
            self.dead_ops += (e - s) as usize;
        }
        if self.dead_preds > self.preds.len() - self.dead_preds
            || self.dead_ops > self.ops.len() - self.dead_ops
        {
            self.compact();
        }
    }

    /// Rebuilds the tables with only live spans, remapping every ref.
    fn compact(&mut self) {
        let mut ids: Vec<RuleId> = self.refs.keys().copied().collect();
        ids.sort_unstable();
        let mut next = ProgramArena::new();
        for id in ids {
            let r = self.refs[&id];
            let pred_base = next.preds.len() as u32;
            let old_base = r.preds.0;
            for pred in &self.preds[r.preds.0 as usize..r.preds.1 as usize] {
                next.preds.push(match pred {
                    Pred::HeldFor {
                        inner,
                        duration,
                        fingerprint,
                    } => Pred::HeldFor {
                        inner: inner - old_base + pred_base,
                        duration: *duration,
                        fingerprint: fingerprint.clone(),
                    },
                    other => other.clone(),
                });
            }
            let rebase_code = |next: &mut ProgramArena, (s, e): (u32, u32)| {
                let start = next.ops.len() as u32;
                next.ops
                    .extend(self.ops[s as usize..e as usize].iter().map(|op| match op {
                        Op::Pred(i) => Op::Pred(i - old_base + pred_base),
                        other => *other,
                    }));
                (start, next.ops.len() as u32)
            };
            let condition = rebase_code(&mut next, r.condition);
            let until = r.until.map(|span| rebase_code(&mut next, span));
            let sensors = copy_col(&mut next.sensor_col, &self.sensor_col, r.sensors);
            let places = copy_col(&mut next.place_col, &self.place_col, r.places);
            let channels = copy_col(&mut next.channel_col, &self.channel_col, r.channels);
            let helds_start = next.held_col.len() as u32;
            next.held_col.extend(
                self.held_col[r.helds.0 as usize..r.helds.1 as usize]
                    .iter()
                    .map(|k| HeldKey {
                        pred: k.pred - old_base + pred_base,
                        eligible: k.eligible,
                    }),
            );
            next.refs.insert(
                id,
                ProgramRef {
                    preds: (pred_base, next.preds.len() as u32),
                    condition,
                    until,
                    sensors,
                    places,
                    channels,
                    helds: (helds_start, next.held_col.len() as u32),
                    temporal: r.temporal,
                },
            );
        }
        *self = next;
    }

    /// The span record of a rule's program, if it compiled.
    pub fn program_ref(&self, id: RuleId) -> Option<&ProgramRef> {
        self.refs.get(&id)
    }

    /// The sensor slots a rule's condition and `until` read (sorted,
    /// deduplicated).
    pub fn sensor_slots(&self, r: &ProgramRef) -> &[SensorSlot] {
        &self.sensor_col[r.sensors.0 as usize..r.sensors.1 as usize]
    }

    /// The place slots a rule's presence predicates read.
    pub fn place_slots(&self, r: &ProgramRef) -> &[PlaceSlot] {
        &self.place_col[r.places.0 as usize..r.places.1 as usize]
    }

    /// The channel slots a rule's event predicates listen on.
    pub fn channel_slots(&self, r: &ProgramRef) -> &[ChannelSlot] {
        &self.channel_col[r.channels.0 as usize..r.channels.1 as usize]
    }

    /// The rule's `held for` predicates.
    pub fn held_keys(&self, r: &ProgramRef) -> &[HeldKey] {
        &self.held_col[r.helds.0 as usize..r.helds.1 as usize]
    }

    /// The fingerprint and duration of a [`HeldKey`].
    ///
    /// # Panics
    ///
    /// Panics when the key does not point at a `HeldFor` predicate (keys
    /// are only produced by the arena itself, so this cannot happen for
    /// keys obtained from [`ProgramArena::held_keys`]).
    pub fn held_fingerprint(&self, key: HeldKey) -> (&str, SimDuration) {
        match &self.preds[key.pred as usize] {
            Pred::HeldFor {
                duration,
                fingerprint,
                ..
            } => (fingerprint, *duration),
            other => panic!("held key points at {other:?}"),
        }
    }

    /// Evaluates a rule's trigger condition over its arena span.
    pub fn condition_holds(
        &self,
        r: &ProgramRef,
        view: &impl ContextView,
        held: &mut impl HeldObserver,
    ) -> bool {
        crate::eval_code(
            &self.ops[r.condition.0 as usize..r.condition.1 as usize],
            &self.preds,
            view,
            held,
        )
    }

    /// Evaluates a rule's `until` condition (`None` when it has none).
    pub fn until_holds(
        &self,
        r: &ProgramRef,
        view: &impl ContextView,
        held: &mut impl HeldObserver,
    ) -> Option<bool> {
        r.until.map(|(s, e)| {
            crate::eval_code(&self.ops[s as usize..e as usize], &self.preds, view, held)
        })
    }

    /// Number of rules with live spans.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the arena holds no live spans.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }
}

/// Copies one rule's span of a footprint column during compaction.
fn copy_col<T: Copy>(col: &mut Vec<T>, src: &[T], (s, e): (u32, u32)) -> (u32, u32) {
    let start = col.len() as u32;
    col.extend_from_slice(&src[s as usize..e as usize]);
    (start, col.len() as u32)
}

/// Sorts and deduplicates the tail of a column appended since `start`.
fn sort_dedup_tail<T: Ord + Copy>(col: &mut Vec<T>, start: usize) {
    let tail = &mut col[start..];
    tail.sort_unstable();
    let mut write = start;
    for read in start..col.len() {
        if write == start || col[write - 1] != col[read] {
            col[write] = col[read];
            write += 1;
        }
    }
    col.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_simplex::RelOp;
    use cadel_types::unit::Dimension;
    use cadel_types::{DeviceId, PlaceId, Rational, SensorKey, SimTime, TimeWindow, Value};
    use std::collections::HashMap;

    struct NullView;
    impl ContextView for NullView {
        fn sensor_value(&self, _: SensorSlot) -> Option<&Value> {
            Some(&Value::Bool(true))
        }
        fn event_active_slot(&self, _: crate::EventSlot) -> bool {
            false
        }
        fn person_place(&self, _: &cadel_types::PersonId) -> Option<&PlaceId> {
            None
        }
        fn place_occupied(&self, _: &PlaceId) -> bool {
            true
        }
        fn now(&self) -> SimTime {
            SimTime::EPOCH
        }
        fn weekday(&self) -> cadel_types::Weekday {
            cadel_types::Weekday::Monday
        }
        fn date(&self) -> cadel_types::Date {
            cadel_types::Date::new(2005, 6, 6).unwrap()
        }
    }

    #[derive(Default)]
    struct MapHeld(HashMap<String, SimTime>);
    impl HeldObserver for MapHeld {
        fn observe(&mut self, fp: &str, inner_true: bool, now: SimTime) -> Option<SimTime> {
            if inner_true {
                Some(*self.0.entry(fp.to_owned()).or_insert(now))
            } else {
                self.0.remove(fp);
                None
            }
        }
    }

    fn num(slot: u32) -> Pred {
        Pred::NumCmp {
            slot: SensorSlot::new(slot),
            op: RelOp::Gt,
            threshold: Rational::from_integer(0),
            dim: Dimension::Temperature,
        }
    }

    fn held(inner: u32, fp: &str) -> Pred {
        Pred::HeldFor {
            inner,
            duration: cadel_types::SimDuration::from_minutes(5),
            fingerprint: fp.into(),
        }
    }

    fn presence_program(place: &str) -> RuleProgram {
        RuleProgram::new(
            vec![Pred::SomebodyAt(PlaceId::new(place))],
            vec![Op::Pred(0)],
            None,
            Vec::new(),
        )
    }

    #[test]
    fn insert_rebases_and_extracts_footprints() {
        let mut interner = Interner::new();
        let slot_a = interner.sensor_slot(&SensorKey::new(DeviceId::new("a"), "t"));
        let slot_b = interner.sensor_slot(&SensorKey::new(DeviceId::new("b"), "t"));

        // Rule 1: nested dwell over a numeric read — heap-eligible.
        // preds = [leaf, inner-held, outer-held], like the compiler emits.
        let p1 = RuleProgram::new(
            vec![
                num(slot_a.index() as u32),
                held(0, "leaf~1"),
                held(1, "mid~2"),
            ],
            vec![Op::Pred(2)],
            None,
            Vec::new(),
        );
        // Rule 2: numeric + time window — temporal, different sensor,
        // with an until over the same sensor (footprint must include it).
        let p2 = RuleProgram::new(
            vec![
                num(slot_b.index() as u32),
                Pred::TimeIn(TimeWindow::new(
                    cadel_types::TimeOfDay::hm(6, 0).unwrap(),
                    cadel_types::TimeOfDay::hm(12, 0).unwrap(),
                )),
                num(slot_a.index() as u32),
            ],
            vec![Op::And { end: 3 }, Op::Pred(0), Op::Pred(1)],
            Some(vec![Op::Pred(2)]),
            Vec::new(),
        );

        let mut arena = ProgramArena::new();
        arena.insert(RuleId::new(1), &p1, &mut interner);
        arena.insert(RuleId::new(2), &p2, &mut interner);

        let r1 = *arena.program_ref(RuleId::new(1)).unwrap();
        assert!(!r1.temporal());
        assert_eq!(arena.sensor_slots(&r1), &[slot_a]);
        let keys = arena.held_keys(&r1).to_vec();
        assert_eq!(keys.len(), 2);
        assert!(keys.iter().all(|k| k.eligible));
        let fps: Vec<&str> = keys.iter().map(|&k| arena.held_fingerprint(k).0).collect();
        assert_eq!(fps, ["leaf~1", "mid~2"]);

        let r2 = *arena.program_ref(RuleId::new(2)).unwrap();
        assert!(r2.temporal());
        assert_eq!(arena.sensor_slots(&r2), &[slot_a, slot_b]);

        // Evaluating through the arena matches evaluating the program.
        let view = NullView;
        let mut h1 = MapHeld::default();
        let mut h2 = MapHeld::default();
        assert_eq!(
            arena.condition_holds(&r1, &view, &mut h1),
            crate::condition_holds(&p1, &view, &mut h2)
        );
        assert_eq!(h1.0, h2.0);
        let mut h = MapHeld::default();
        assert_eq!(
            arena.until_holds(&r2, &view, &mut h),
            Some(crate::eval_code(
                p2.until().unwrap(),
                p2.preds(),
                &view,
                &mut h
            ))
        );
    }

    #[test]
    fn dwell_over_event_is_ineligible_and_temporal() {
        let mut interner = Interner::new();
        let ev = interner.event_slot("chan", "ding");
        let program = RuleProgram::new(
            vec![Pred::Event(ev), held(0, "ev~5")],
            vec![Op::Pred(1)],
            None,
            Vec::new(),
        );
        let mut arena = ProgramArena::new();
        arena.insert(RuleId::new(7), &program, &mut interner);
        let r = *arena.program_ref(RuleId::new(7)).unwrap();
        assert!(r.temporal());
        assert!(!arena.held_keys(&r)[0].eligible);
        let chan = interner.lookup_channel_normalized("chan").unwrap();
        assert_eq!(arena.channel_slots(&r), &[chan]);
    }

    #[test]
    fn remove_tombstones_and_compaction_preserves_spans() {
        let mut interner = Interner::new();
        let mut arena = ProgramArena::new();
        for i in 0..8u64 {
            let program = presence_program("living room");
            arena.insert(RuleId::new(i), &program, &mut interner);
        }
        assert_eq!(arena.len(), 8);
        for i in 0..7u64 {
            arena.remove(RuleId::new(i));
        }
        assert_eq!(arena.len(), 1);
        // The survivor still evaluates after compaction.
        let r = *arena.program_ref(RuleId::new(7)).unwrap();
        let mut h = MapHeld::default();
        assert!(arena.condition_holds(&r, &NullView, &mut h));
        assert_eq!(arena.place_slots(&r).len(), 1);
        // Removing an unknown id is a no-op.
        arena.remove(RuleId::new(99));
        assert_eq!(arena.len(), 1);
    }
}
