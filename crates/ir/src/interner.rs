//! Interning of context-observable names into dense `u32` slots.
//!
//! Compiled rule programs never hash strings at evaluation time: every
//! sensor variable and event pattern a registered rule mentions is interned
//! here once, at compile time, and the engine's context store mirrors its
//! string-keyed maps onto dense boards indexed by these slots.

use cadel_obs::LazyGauge;
use cadel_types::{PlaceId, SensorKey};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Size of the sensor-slot table, updated as slots are interned. With
/// several interners alive (tests, clones) the gauge tracks whichever
/// interned last; in the home-server deployment there is one.
static SENSOR_SLOTS: LazyGauge = LazyGauge::new("ir_interner_sensor_slots");
/// Size of the event-slot table; same caveat as `ir_interner_sensor_slots`.
static EVENT_SLOTS: LazyGauge = LazyGauge::new("ir_interner_event_slots");
/// Size of the place-slot table; same caveat as `ir_interner_sensor_slots`.
static PLACE_SLOTS: LazyGauge = LazyGauge::new("ir_interner_place_slots");
/// Size of the channel-slot table; same caveat as `ir_interner_sensor_slots`.
static CHANNEL_SLOTS: LazyGauge = LazyGauge::new("ir_interner_channel_slots");

/// A dense index for a [`SensorKey`] (a `(device, variable)` pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SensorSlot(u32);

impl SensorSlot {
    /// Creates a slot from its raw index.
    pub const fn new(index: u32) -> SensorSlot {
        SensorSlot(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense index for a normalized `(channel, name)` event pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventSlot(u32);

impl EventSlot {
    /// Creates a slot from its raw index.
    pub const fn new(index: u32) -> EventSlot {
        EventSlot(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense index for a [`PlaceId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceSlot(u32);

impl PlaceSlot {
    /// Creates a slot from its raw index.
    pub const fn new(index: u32) -> PlaceSlot {
        PlaceSlot(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense index for a normalized event channel name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelSlot(u32);

impl ChannelSlot {
    /// Creates a slot from its raw index.
    pub const fn new(index: u32) -> ChannelSlot {
        ChannelSlot(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Maps sensor keys and event patterns to dense slots.
///
/// The interner is append-only: slots are never reused, so a compiled
/// program's slot references stay valid for the interner's lifetime. A
/// monotonically increasing [`Interner::revision`] lets consumers (the
/// engine's dense context boards) detect that new slots appeared and
/// resize/backfill lazily.
#[derive(Debug, Default)]
pub struct Interner {
    sensors: HashMap<SensorKey, SensorSlot>,
    sensor_keys: Vec<SensorKey>,
    /// channel → name → slot, both normalized (trimmed, ASCII-lowercased).
    events: HashMap<String, HashMap<String, EventSlot>>,
    event_keys: Vec<(String, String)>,
    /// channel → slots on that channel (serves bulk channel clears).
    by_channel: HashMap<String, Vec<EventSlot>>,
    places: HashMap<PlaceId, PlaceSlot>,
    place_keys: Vec<PlaceId>,
    /// Normalized channel name → slot.
    channels: HashMap<String, ChannelSlot>,
    channel_keys: Vec<String>,
    /// Channel slot of each event slot, parallel to `event_keys`.
    event_channels: Vec<ChannelSlot>,
    revision: u64,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// The current revision; bumped whenever a new slot is interned.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The slot of a sensor key, interning it on first use.
    pub fn sensor_slot(&mut self, key: &SensorKey) -> SensorSlot {
        if let Some(slot) = self.sensors.get(key) {
            return *slot;
        }
        let slot = SensorSlot::new(self.sensor_keys.len() as u32);
        self.sensors.insert(key.clone(), slot);
        self.sensor_keys.push(key.clone());
        self.revision += 1;
        SENSOR_SLOTS.set(self.sensor_keys.len() as i64);
        slot
    }

    /// The slot of an already-interned sensor key.
    pub fn lookup_sensor(&self, key: &SensorKey) -> Option<SensorSlot> {
        self.sensors.get(key).copied()
    }

    /// The sensor key behind a slot.
    pub fn sensor_key(&self, slot: SensorSlot) -> Option<&SensorKey> {
        self.sensor_keys.get(slot.index())
    }

    /// Number of interned sensor slots.
    pub fn sensor_count(&self) -> usize {
        self.sensor_keys.len()
    }

    /// The slot of an event pattern, interning it on first use. Channel and
    /// name are normalized (trimmed, ASCII-lowercased) so patterns match
    /// the engine's case-insensitive event semantics.
    pub fn event_slot(&mut self, channel: &str, name: &str) -> EventSlot {
        let channel = channel.trim().to_ascii_lowercase();
        let name = name.trim().to_ascii_lowercase();
        if let Some(slot) = self.events.get(&channel).and_then(|m| m.get(&name)) {
            return *slot;
        }
        let slot = EventSlot::new(self.event_keys.len() as u32);
        self.events
            .entry(channel.clone())
            .or_default()
            .insert(name.clone(), slot);
        self.by_channel
            .entry(channel.clone())
            .or_default()
            .push(slot);
        // The channel is interned alongside the pattern, so the engine's
        // inverted indexes key event dirt by dense channel slot instead of
        // cloning channel strings per lookup.
        let channel_slot = self.intern_normalized_channel(&channel);
        self.event_channels.push(channel_slot);
        self.event_keys.push((channel, name));
        self.revision += 1;
        EVENT_SLOTS.set(self.event_keys.len() as i64);
        slot
    }

    /// The slot of an already-interned event pattern. The inputs must
    /// already be normalized (trimmed, lowercase) — the engine's event
    /// facts are stored normalized, so its lookups take this allocation-free
    /// path.
    pub fn lookup_event_normalized(&self, channel: &str, name: &str) -> Option<EventSlot> {
        self.events.get(channel).and_then(|m| m.get(name)).copied()
    }

    /// The normalized `(channel, name)` behind an event slot.
    pub fn event_key(&self, slot: EventSlot) -> Option<(&str, &str)> {
        self.event_keys
            .get(slot.index())
            .map(|(c, n)| (c.as_str(), n.as_str()))
    }

    /// All event slots on a normalized channel.
    pub fn channel_slots(&self, channel: &str) -> &[EventSlot] {
        self.by_channel
            .get(channel)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of interned event slots.
    pub fn event_count(&self) -> usize {
        self.event_keys.len()
    }

    /// The channel slot of an event slot.
    pub fn event_channel_of(&self, slot: EventSlot) -> Option<ChannelSlot> {
        self.event_channels.get(slot.index()).copied()
    }

    /// The slot of a place, interning it on first use.
    pub fn place_slot(&mut self, place: &PlaceId) -> PlaceSlot {
        if let Some(slot) = self.places.get(place) {
            return *slot;
        }
        let slot = PlaceSlot::new(self.place_keys.len() as u32);
        self.places.insert(place.clone(), slot);
        self.place_keys.push(place.clone());
        self.revision += 1;
        PLACE_SLOTS.set(self.place_keys.len() as i64);
        slot
    }

    /// The slot of an already-interned place.
    pub fn lookup_place(&self, place: &PlaceId) -> Option<PlaceSlot> {
        self.places.get(place).copied()
    }

    /// The place behind a slot.
    pub fn place_key(&self, slot: PlaceSlot) -> Option<&PlaceId> {
        self.place_keys.get(slot.index())
    }

    /// Number of interned place slots.
    pub fn place_count(&self) -> usize {
        self.place_keys.len()
    }

    /// The slot of an event channel, interning it on first use. The name
    /// is normalized (trimmed, ASCII-lowercased) like event patterns.
    pub fn channel_slot(&mut self, channel: &str) -> ChannelSlot {
        let channel = channel.trim().to_ascii_lowercase();
        self.intern_normalized_channel(&channel)
    }

    fn intern_normalized_channel(&mut self, channel: &str) -> ChannelSlot {
        if let Some(slot) = self.channels.get(channel) {
            return *slot;
        }
        let slot = ChannelSlot::new(self.channel_keys.len() as u32);
        self.channels.insert(channel.to_owned(), slot);
        self.channel_keys.push(channel.to_owned());
        self.revision += 1;
        CHANNEL_SLOTS.set(self.channel_keys.len() as i64);
        slot
    }

    /// The slot of an already-interned channel. The input must already be
    /// normalized (trimmed, lowercase); this path never allocates.
    pub fn lookup_channel_normalized(&self, channel: &str) -> Option<ChannelSlot> {
        self.channels.get(channel).copied()
    }

    /// The normalized name behind a channel slot.
    pub fn channel_key(&self, slot: ChannelSlot) -> Option<&str> {
        self.channel_keys.get(slot.index()).map(String::as_str)
    }

    /// Number of interned channel slots.
    pub fn channel_count(&self) -> usize {
        self.channel_keys.len()
    }
}

/// An interner shared between the rule database (which interns at compile
/// time) and the engine's context store (which mirrors its boards onto the
/// slots).
pub type SharedInterner = Arc<RwLock<Interner>>;

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_types::DeviceId;

    fn key(device: &str, variable: &str) -> SensorKey {
        SensorKey::new(DeviceId::new(device), variable)
    }

    #[test]
    fn sensor_interning_is_stable_and_dense() {
        let mut i = Interner::new();
        let a = i.sensor_slot(&key("thermo", "temperature"));
        let b = i.sensor_slot(&key("hygro", "humidity"));
        assert_eq!(a, i.sensor_slot(&key("thermo", "temperature")));
        assert_ne!(a, b);
        assert_eq!(i.sensor_count(), 2);
        assert_eq!(i.sensor_key(a), Some(&key("thermo", "temperature")));
        assert_eq!(i.lookup_sensor(&key("nope", "x")), None);
    }

    #[test]
    fn revision_bumps_only_on_new_slots() {
        let mut i = Interner::new();
        assert_eq!(i.revision(), 0);
        i.sensor_slot(&key("thermo", "temperature"));
        let r1 = i.revision();
        i.sensor_slot(&key("thermo", "temperature"));
        assert_eq!(i.revision(), r1);
        i.event_slot("tv-guide", "news");
        assert!(i.revision() > r1);
    }

    #[test]
    fn event_patterns_are_normalized() {
        let mut i = Interner::new();
        let a = i.event_slot(" TV-Guide ", "Baseball Game");
        assert_eq!(a, i.event_slot("tv-guide", "baseball game"));
        assert_eq!(
            i.lookup_event_normalized("tv-guide", "baseball game"),
            Some(a)
        );
        assert_eq!(i.lookup_event_normalized("tv-guide", "movie"), None);
        assert_eq!(i.event_key(a), Some(("tv-guide", "baseball game")));
    }

    #[test]
    fn places_and_channels_intern_densely() {
        let mut i = Interner::new();
        let lr = i.place_slot(&PlaceId::new("living room"));
        let hall = i.place_slot(&PlaceId::new("hall"));
        assert_ne!(lr, hall);
        assert_eq!(i.place_slot(&PlaceId::new("living room")), lr);
        assert_eq!(i.lookup_place(&PlaceId::new("hall")), Some(hall));
        assert_eq!(i.place_key(lr), Some(&PlaceId::new("living room")));
        assert_eq!(i.place_count(), 2);

        // Interning an event pattern interns its channel as a side effect.
        let ding = i.event_slot(" Home ", "Ding");
        let chan = i.lookup_channel_normalized("home").expect("interned");
        assert_eq!(i.event_channel_of(ding), Some(chan));
        assert_eq!(i.channel_slot("HOME"), chan);
        assert_eq!(i.channel_key(chan), Some("home"));
        assert_eq!(i.channel_count(), 1);
        assert_eq!(i.lookup_channel_normalized("tv-guide"), None);
    }

    #[test]
    fn channel_index_tracks_slots() {
        let mut i = Interner::new();
        let a = i.event_slot("tv-guide", "news");
        let b = i.event_slot("tv-guide", "movie");
        i.event_slot("person", "arrives");
        assert_eq!(i.channel_slots("tv-guide"), &[a, b]);
        assert_eq!(i.channel_slots("nothing"), &[] as &[EventSlot]);
    }
}
