//! Compilation of parsed CADEL sentences into rule objects.
//!
//! The compiler resolves the string-level AST against a [`Resolver`] — the
//! abstraction over "what exists in this home": people, places, devices
//! and sensors. In the full framework the home server implements
//! `Resolver` on top of the UPnP registry; [`MapResolver`] is a
//! self-contained implementation for tests, examples and benchmarks.

use crate::ast::*;
use crate::dictionary::Dictionary;
use crate::error::{CompileError, LangError};
use crate::lexicon::StatePhrase;
use cadel_ir::{Interner, RuleProgram};
use cadel_obs::{LazyCounter, LazyHistogram, Stopwatch};
use cadel_rule::{
    ActionSpec, Atom, Condition, ConstraintAtom, EventAtom, PresenceAtom, Rule, RuleBuilder,
    StateAtom, Subject,
};
use cadel_types::{
    DeviceId, PersonId, PlaceId, Quantity, RuleId, SensorKey, TimeOfDay, TimeWindow, Unit, Value,
};
use std::collections::HashMap;

/// Maximum depth of user-defined words referencing other user-defined
/// words, guarding against definition cycles.
const MAX_WORD_DEPTH: usize = 8;

/// Width of the firing window for "at 18:30"-style point time specs.
const AT_WINDOW_MINUTES: u32 = 15;

/// Rule sentences compiled against a resolver.
static COMPILES: LazyCounter = LazyCounter::new("lang_compiles_total");
/// Rule sentences rejected with a [`CompileError`].
static COMPILE_ERRORS: LazyCounter = LazyCounter::new("lang_compile_errors_total");
/// Wall-clock latency of [`Compiler::compile_rule`] (AST → rule builder).
static COMPILE_NS: LazyHistogram = LazyHistogram::new("lang_compile_duration_ns");

/// The environment the compiler resolves names against.
///
/// Implementations should match case-insensitively; all phrases arrive
/// lower-cased from the parser.
pub trait Resolver {
    /// A person by name ("alan").
    fn resolve_person(&self, name: &str) -> Option<PersonId>;
    /// A place by name ("living room").
    fn resolve_place(&self, name: &str) -> Option<PlaceId>;
    /// A device by its (friendly) name, optionally restricted to a place.
    fn resolve_device(&self, name: &str, location: Option<&PlaceId>) -> Option<DeviceId>;
    /// A sensor variable by category or name ("temperature", "humidity"),
    /// optionally restricted to a place.
    fn resolve_sensor(&self, name: &str, location: Option<&PlaceId>) -> Option<SensorKey>;
    /// The ambient sensor of a place for a quantity kind
    /// ("illuminance" of the hall, for "the hall is dark").
    fn ambient_sensor(&self, place: &PlaceId, kind: &str) -> Option<SensorKey>;
    /// The native unit of a sensor, used to default unit-less thresholds.
    fn sensor_unit(&self, _sensor: &SensorKey) -> Option<Unit> {
        None
    }
}

/// A map-backed [`Resolver`] for tests, examples and benchmarks.
#[derive(Clone, Debug, Default)]
pub struct MapResolver {
    people: HashMap<String, PersonId>,
    places: HashMap<String, PlaceId>,
    devices: HashMap<String, Vec<(Option<PlaceId>, DeviceId)>>,
    sensors: HashMap<String, Vec<(Option<PlaceId>, SensorKey)>>,
    ambients: HashMap<(PlaceId, String), SensorKey>,
    units: HashMap<SensorKey, Unit>,
}

impl MapResolver {
    /// Creates an empty resolver.
    pub fn new() -> MapResolver {
        MapResolver::default()
    }

    /// Registers a person.
    pub fn add_person(&mut self, name: &str) -> &mut Self {
        self.people.insert(
            name.to_ascii_lowercase(),
            PersonId::new(name.to_ascii_lowercase()),
        );
        self
    }

    /// Registers a place.
    pub fn add_place(&mut self, name: &str) -> &mut Self {
        self.places
            .insert(name.to_ascii_lowercase(), PlaceId::new(name));
        self
    }

    /// Registers a device under a friendly name, optionally at a place.
    pub fn add_device(&mut self, name: &str, id: &str, place: Option<&str>) -> &mut Self {
        self.devices
            .entry(name.to_ascii_lowercase())
            .or_default()
            .push((place.map(PlaceId::new), DeviceId::new(id)));
        self
    }

    /// Registers a sensor variable under a category name, optionally at a
    /// place, with its native unit.
    pub fn add_sensor(
        &mut self,
        category: &str,
        key: SensorKey,
        place: Option<&str>,
        unit: Unit,
    ) -> &mut Self {
        self.units.insert(key.clone(), unit);
        self.sensors
            .entry(category.to_ascii_lowercase())
            .or_default()
            .push((place.map(PlaceId::new), key));
        self
    }

    /// Registers the ambient sensor of a place for a quantity kind.
    pub fn add_ambient(
        &mut self,
        place: &str,
        kind: &str,
        key: SensorKey,
        unit: Unit,
    ) -> &mut Self {
        self.units.insert(key.clone(), unit);
        self.ambients
            .insert((PlaceId::new(place), kind.to_ascii_lowercase()), key);
        self
    }
}

fn pick_scoped<'a, T>(
    entries: &'a [(Option<PlaceId>, T)],
    location: Option<&PlaceId>,
) -> Option<&'a T> {
    match location {
        Some(loc) => entries
            .iter()
            .find(|(p, _)| p.as_ref() == Some(loc))
            .map(|(_, t)| t),
        // Without a location, prefer an unscoped entry, else the sole
        // entry, else ambiguous (None).
        None => {
            if let Some((_, t)) = entries.iter().find(|(p, _)| p.is_none()) {
                Some(t)
            } else if entries.len() == 1 {
                Some(&entries[0].1)
            } else {
                None
            }
        }
    }
}

impl Resolver for MapResolver {
    fn resolve_person(&self, name: &str) -> Option<PersonId> {
        self.people.get(&name.to_ascii_lowercase()).cloned()
    }

    fn resolve_place(&self, name: &str) -> Option<PlaceId> {
        self.places.get(&name.to_ascii_lowercase()).cloned()
    }

    fn resolve_device(&self, name: &str, location: Option<&PlaceId>) -> Option<DeviceId> {
        self.devices
            .get(&name.to_ascii_lowercase())
            .and_then(|entries| pick_scoped(entries, location))
            .cloned()
    }

    fn resolve_sensor(&self, name: &str, location: Option<&PlaceId>) -> Option<SensorKey> {
        self.sensors
            .get(&name.to_ascii_lowercase())
            .and_then(|entries| pick_scoped(entries, location))
            .cloned()
    }

    fn ambient_sensor(&self, place: &PlaceId, kind: &str) -> Option<SensorKey> {
        self.ambients
            .get(&(place.clone(), kind.to_ascii_lowercase()))
            .cloned()
    }

    fn sensor_unit(&self, sensor: &SensorKey) -> Option<Unit> {
        self.units.get(sensor).copied()
    }
}

/// Compiles parsed sentences into rule objects against a [`Resolver`] and
/// a [`Dictionary`] of user-defined words.
pub struct Compiler<'a, R: Resolver> {
    resolver: &'a R,
    dictionary: &'a Dictionary,
    speaker: PersonId,
}

impl<'a, R: Resolver> Compiler<'a, R> {
    /// Creates a compiler for sentences spoken by `speaker` (the rule
    /// author — "I" resolves to them).
    pub fn new(resolver: &'a R, dictionary: &'a Dictionary, speaker: PersonId) -> Self {
        Compiler {
            resolver,
            dictionary,
            speaker,
        }
    }

    /// Compiles a rule sentence into a [`RuleBuilder`] (the caller assigns
    /// the id via the rule database).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when a name cannot be resolved or a
    /// user-defined word is undefined/cyclic.
    pub fn compile_rule(&self, sentence: &RuleSentence) -> Result<RuleBuilder, CompileError> {
        let sw = Stopwatch::start();
        COMPILES.inc();
        let result = self.compile_rule_inner(sentence);
        COMPILE_NS.record(&sw);
        if result.is_err() {
            COMPILE_ERRORS.inc();
        }
        result
    }

    fn compile_rule_inner(&self, sentence: &RuleSentence) -> Result<RuleBuilder, CompileError> {
        let mut condition = Condition::True;
        if let Some(pre) = &sentence.pre {
            condition = condition.and(self.compile_clause(pre)?);
        }
        if let Some(post) = &sentence.post {
            condition = condition.and(self.compile_clause(post)?);
        }
        let action = self.compile_action(sentence)?;
        let mut builder = Rule::builder(self.speaker.clone())
            .condition(condition)
            .action(action);
        if let Some(until) = &sentence.until {
            builder = builder.until(self.compile_clause(until)?);
        }
        Ok(builder)
    }

    /// Compiles a rule sentence all the way to its executable form: the
    /// built [`Rule`] plus its lowered [`RuleProgram`], interning sensor
    /// and event names into `interner` — sentence to *rule object* in one
    /// call, without going through a rule database.
    ///
    /// # Errors
    ///
    /// Returns [`LangError`] when name resolution, rule construction
    /// (e.g. DNF blowup), or IR lowering (dimension clash) fails.
    pub fn compile_rule_program(
        &self,
        sentence: &RuleSentence,
        id: RuleId,
        interner: &mut Interner,
    ) -> Result<(Rule, RuleProgram), LangError> {
        let rule = self.compile_rule(sentence)?.build(id)?;
        let program = cadel_rule::compile_rule(&rule, interner)?;
        Ok((rule, program))
    }

    /// Compiles a condition expression (public so `<CondDef>` definitions
    /// can be validated when they are registered).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] on unresolvable names.
    pub fn compile_cond_expr(&self, expr: &CondExprAst) -> Result<Condition, CompileError> {
        self.compile_expr_depth(expr, 0)
    }

    fn compile_clause(&self, clause: &CondClause) -> Result<Condition, CompileError> {
        let mut condition = Condition::True;
        for spec in &clause.time {
            condition = condition.and(Condition::Atom(time_spec_atom(spec)));
        }
        if let Some(expr) = &clause.expr {
            condition = condition.and(self.compile_expr_depth(expr, 0)?);
        }
        Ok(condition)
    }

    fn compile_expr_depth(
        &self,
        expr: &CondExprAst,
        depth: usize,
    ) -> Result<Condition, CompileError> {
        if depth > MAX_WORD_DEPTH {
            return Err(CompileError::new(
                "user-defined words are nested too deeply (cycle?)",
            ));
        }
        match expr {
            CondExprAst::Or(terms) => {
                let mut acc: Option<Condition> = None;
                for t in terms {
                    let c = self.compile_expr_depth(t, depth)?;
                    acc = Some(match acc {
                        None => c,
                        Some(prev) => prev.or(c),
                    });
                }
                Ok(acc.unwrap_or(Condition::True))
            }
            CondExprAst::And(terms) => {
                let mut acc = Condition::True;
                for t in terms {
                    acc = acc.and(self.compile_expr_depth(t, depth)?);
                }
                Ok(acc)
            }
            CondExprAst::Leaf(cond) => self.compile_cond(cond, depth),
        }
    }

    fn compile_cond(&self, cond: &CondAst, depth: usize) -> Result<Condition, CompileError> {
        let mut base = match &cond.kind {
            CondKind::UserWord(word) => {
                let def = self.dictionary.condition(word).ok_or_else(|| {
                    CompileError::new(format!("undefined condition word {word:?}"))
                })?;
                self.compile_expr_depth(def, depth + 1)?
            }
            CondKind::Compare {
                subject,
                op,
                quantity,
            } => {
                let location = self.resolve_optional_place(&subject.location)?;
                let name = phrase_text(&subject.name);
                let sensor = self
                    .resolver
                    .resolve_sensor(&name, location.as_ref())
                    .ok_or_else(|| CompileError::new(format!("no sensor found for {name:?}")))?;
                let unit = quantity
                    .unit
                    .or_else(|| self.resolver.sensor_unit(&sensor))
                    .unwrap_or(Unit::Unitless);
                Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                    sensor,
                    *op,
                    Quantity::new(quantity.value, unit),
                )))
            }
            CondKind::State { subject, state } => self.compile_state(subject, state)?,
            CondKind::Presence { who, place } => {
                let place_name = phrase_text(place);
                let place = self
                    .resolver
                    .resolve_place(&place_name)
                    .ok_or_else(|| CompileError::new(format!("unknown place {place_name:?}")))?;
                Condition::Atom(Atom::Presence(PresenceAtom::new(
                    self.compile_subject(who)?,
                    place,
                )))
            }
            CondKind::PersonEvent { who, event } => {
                let channel = match who {
                    PresenceSubject::Me => format!("person:{}", self.speaker),
                    PresenceSubject::Named(name) => {
                        let name = phrase_text(name);
                        let person = self
                            .resolver
                            .resolve_person(&name)
                            .ok_or_else(|| CompileError::new(format!("unknown person {name:?}")))?;
                        format!("person:{person}")
                    }
                    PresenceSubject::Somebody => "person".to_owned(),
                    PresenceSubject::Nobody => {
                        return Err(CompileError::new(
                            "'nobody' cannot be the subject of an event",
                        ))
                    }
                };
                Condition::Atom(Atom::Event(EventAtom::new(channel, event)))
            }
            CondKind::Broadcast { program } => Condition::Atom(Atom::Event(EventAtom::new(
                "tv-guide",
                phrase_text(program),
            ))),
        };
        if let Some(duration) = cond.period {
            base = match base {
                Condition::Atom(atom) => Condition::Atom(Atom::held_for(atom, duration)),
                other => {
                    // A duration over a compound expression qualifies each
                    // disjunct's atoms conservatively; CADEL sentences only
                    // produce durations on single conditions, so reject.
                    let _ = other;
                    return Err(CompileError::new(
                        "'for <duration>' may only qualify a single condition",
                    ));
                }
            };
        }
        if let Some(spec) = &cond.time {
            base = base.and(Condition::Atom(time_spec_atom(spec)));
        }
        Ok(base)
    }

    fn compile_state(
        &self,
        subject: &SubjectPhrase,
        state: &StatePhrase,
    ) -> Result<Condition, CompileError> {
        let location = self.resolve_optional_place(&subject.location)?;
        let name = phrase_text(&subject.name);
        match state {
            StatePhrase::Bool { variable, value } => {
                let device = self
                    .resolver
                    .resolve_device(&name, location.as_ref())
                    .ok_or_else(|| CompileError::new(format!("unknown device {name:?}")))?;
                Ok(Condition::Atom(Atom::State(StateAtom::new(
                    device,
                    variable.clone(),
                    Value::Bool(*value),
                ))))
            }
            StatePhrase::Ambient {
                kind,
                op,
                threshold,
            } => {
                // The subject should be a place ("the hall is dark"); fall
                // back to treating it as a sensor name.
                if let Some(place) = self.resolver.resolve_place(&name) {
                    let sensor = self.resolver.ambient_sensor(&place, kind).ok_or_else(|| {
                        CompileError::new(format!("place {name:?} has no {kind} sensor"))
                    })?;
                    Ok(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                        sensor, *op, *threshold,
                    ))))
                } else if let Some(sensor) = self.resolver.resolve_sensor(&name, location.as_ref())
                {
                    Ok(Condition::Atom(Atom::Constraint(ConstraintAtom::new(
                        sensor, *op, *threshold,
                    ))))
                } else {
                    Err(CompileError::new(format!(
                        "unknown place or sensor {name:?}"
                    )))
                }
            }
        }
    }

    fn compile_subject(&self, who: &PresenceSubject) -> Result<Subject, CompileError> {
        Ok(match who {
            PresenceSubject::Me => Subject::Person(self.speaker.clone()),
            PresenceSubject::Named(name) => {
                let name = phrase_text(name);
                let person = self
                    .resolver
                    .resolve_person(&name)
                    .ok_or_else(|| CompileError::new(format!("unknown person {name:?}")))?;
                Subject::Person(person)
            }
            PresenceSubject::Somebody => Subject::Somebody,
            PresenceSubject::Nobody => Subject::Nobody,
        })
    }

    fn resolve_optional_place(
        &self,
        location: &Option<Phrase>,
    ) -> Result<Option<PlaceId>, CompileError> {
        match location {
            None => Ok(None),
            Some(words) => {
                let name = phrase_text(words);
                self.resolver
                    .resolve_place(&name)
                    .map(Some)
                    .ok_or_else(|| CompileError::new(format!("unknown place {name:?}")))
            }
        }
    }

    fn compile_action(&self, sentence: &RuleSentence) -> Result<ActionSpec, CompileError> {
        let location = self.resolve_optional_place(&sentence.object.location)?;
        let name = phrase_text(&sentence.object.name);
        let device = self
            .resolver
            .resolve_device(&name, location.as_ref())
            .ok_or_else(|| CompileError::new(format!("unknown device {name:?}")))?;
        let mut action = ActionSpec::new(device, sentence.verb.clone());
        if let Some(content) = &sentence.content {
            action = action.with_setting("content", Value::from(phrase_text(content)));
        }
        let mut settings = Vec::new();
        self.flatten_settings(&sentence.config, &mut settings, 0)?;
        for (parameter, value) in settings {
            action = action.with_setting(&parameter, value);
        }
        Ok(action)
    }

    fn flatten_settings(
        &self,
        config: &[SettingAst],
        out: &mut Vec<(String, Value)>,
        depth: usize,
    ) -> Result<(), CompileError> {
        if depth > MAX_WORD_DEPTH {
            return Err(CompileError::new(
                "user-defined configuration words are nested too deeply (cycle?)",
            ));
        }
        for setting in config {
            match setting {
                SettingAst::Explicit { parameter, value } => {
                    let parameter = phrase_text(parameter);
                    let value = match value {
                        SettingValueAst::Quantity(q) => {
                            let unit = q
                                .unit
                                .or_else(|| default_unit_for_parameter(&parameter))
                                .unwrap_or(Unit::Unitless);
                            Value::Number(Quantity::new(q.value, unit))
                        }
                        SettingValueAst::Word(words) => Value::from(phrase_text(words)),
                    };
                    out.push((parameter, value));
                }
                SettingAst::UserWord(word) => {
                    let def = self.dictionary.configuration(word).ok_or_else(|| {
                        CompileError::new(format!("undefined configuration word {word:?}"))
                    })?;
                    let def = def.to_vec();
                    self.flatten_settings(&def, out, depth + 1)?;
                }
            }
        }
        Ok(())
    }
}

/// The default unit assumed for a configuration parameter when the user
/// writes a bare number ("with 4 of channel setting").
fn default_unit_for_parameter(parameter: &str) -> Option<Unit> {
    match parameter {
        "temperature" => Some(Unit::Celsius),
        "humidity" | "volume" | "brightness" => Some(Unit::Percent),
        "channel" => Some(Unit::Count),
        _ => None,
    }
}

/// Converts a time specification into a condition atom.
fn time_spec_atom(spec: &TimeSpecAst) -> Atom {
    match spec {
        TimeSpecAst::After(p) => Atom::Time(TimeWindow::new(point_start(p), TimeOfDay::MIDNIGHT)),
        TimeSpecAst::Before(p) => Atom::Time(TimeWindow::new(TimeOfDay::MIDNIGHT, point_start(p))),
        TimeSpecAst::At(TimePointAst::DayPart(part)) => Atom::Time(part.window()),
        TimeSpecAst::At(TimePointAst::Clock(t)) => Atom::Time(TimeWindow::new(
            *t,
            TimeOfDay::from_minutes(t.minutes() as u32 + AT_WINDOW_MINUTES),
        )),
        TimeSpecAst::Between(a, b) => Atom::Time(TimeWindow::new(point_start(a), point_start(b))),
        TimeSpecAst::During(part) => Atom::Time(part.window()),
        TimeSpecAst::Every(weekday) => Atom::Weekday(*weekday),
        TimeSpecAst::On(date) => Atom::Date(*date),
    }
}

fn point_start(p: &TimePointAst) -> TimeOfDay {
    match p {
        TimePointAst::Clock(t) => *t,
        TimePointAst::DayPart(part) => part.window().start(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_command;
    use crate::Lexicon;
    use cadel_rule::Verb;
    use cadel_types::RuleId;

    fn sample_resolver() -> MapResolver {
        let mut r = MapResolver::new();
        r.add_person("tom")
            .add_person("alan")
            .add_person("emily")
            .add_place("living room")
            .add_place("hall")
            .add_place("second floor")
            .add_device("air conditioner", "aircon-1", Some("living room"))
            .add_device("tv", "tv-1", Some("living room"))
            .add_device("stereo", "stereo-1", Some("living room"))
            .add_device("video recorder", "vcr-1", Some("living room"))
            .add_device("light", "light-hall", Some("hall"))
            .add_device("light", "light-lr", Some("living room"))
            .add_device("floor lamp", "lamp-1", Some("living room"))
            .add_device("alarm", "alarm-1", None)
            .add_device("fan", "fan-1", None)
            .add_device("entrance door", "door-1", Some("hall"))
            .add_sensor(
                "temperature",
                SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
                Some("living room"),
                Unit::Celsius,
            )
            .add_sensor(
                "temperature",
                SensorKey::new(DeviceId::new("thermo-2f"), "temperature"),
                Some("second floor"),
                Unit::Celsius,
            )
            .add_sensor(
                "humidity",
                SensorKey::new(DeviceId::new("hygro-lr"), "humidity"),
                None,
                Unit::Percent,
            )
            .add_ambient(
                "hall",
                "illuminance",
                SensorKey::new(DeviceId::new("lux-hall"), "illuminance"),
                Unit::Lux,
            );
        // The living-room temperature also answers unscoped queries.
        r.add_sensor(
            "temperature",
            SensorKey::new(DeviceId::new("thermo-lr"), "temperature"),
            None,
            Unit::Celsius,
        );
        r
    }

    fn compile(sentence: &str) -> Rule {
        compile_as(sentence, "tom")
    }

    fn compile_as(sentence: &str, speaker: &str) -> Rule {
        let lexicon = Lexicon::english();
        let dictionary = Dictionary::new();
        compile_with_dict(sentence, speaker, &dictionary, &lexicon)
    }

    fn compile_with_dict(
        sentence: &str,
        speaker: &str,
        dictionary: &Dictionary,
        lexicon: &Lexicon,
    ) -> Rule {
        let resolver = sample_resolver();
        let cmd = parse_command(sentence, lexicon, dictionary).unwrap();
        let compiler = Compiler::new(&resolver, dictionary, PersonId::new(speaker));
        match cmd {
            Command::Rule(r) => compiler
                .compile_rule(&r)
                .unwrap()
                .label(sentence)
                .build(RuleId::new(1))
                .unwrap(),
            other => panic!("expected a rule, got {other:?}"),
        }
    }

    #[test]
    fn sentence_compiles_to_an_executable_program() {
        let resolver = sample_resolver();
        let lexicon = Lexicon::english();
        let dictionary = Dictionary::new();
        let cmd = parse_command(
            "If humidity is higher than 65 percent and temperature is higher than 26 \
             degrees, turn on the air conditioner.",
            &lexicon,
            &dictionary,
        )
        .unwrap();
        let compiler = Compiler::new(&resolver, &dictionary, PersonId::new("tom"));
        let mut interner = Interner::new();
        let (rule, program) = match cmd {
            Command::Rule(r) => compiler
                .compile_rule_program(&r, RuleId::new(7), &mut interner)
                .unwrap(),
            other => panic!("expected a rule, got {other:?}"),
        };
        assert_eq!(rule.id(), RuleId::new(7));
        // Both numeric atoms became predicates over interned sensor slots,
        // and the single conjunct carries a precompiled two-variable system.
        assert_eq!(program.preds().len(), 2);
        assert_eq!(interner.sensor_count(), 2);
        assert_eq!(program.conjuncts().len(), 1);
        assert_eq!(program.conjuncts()[0].vars().len(), 2);
    }

    fn compile_err(sentence: &str) -> CompileError {
        let resolver = sample_resolver();
        let lexicon = Lexicon::english();
        let dictionary = Dictionary::new();
        let cmd = parse_command(sentence, &lexicon, &dictionary).unwrap();
        let compiler = Compiler::new(&resolver, &dictionary, PersonId::new("tom"));
        match cmd {
            Command::Rule(r) => compiler.compile_rule(&r).unwrap_err(),
            other => panic!("expected a rule, got {other:?}"),
        }
    }

    #[test]
    fn paper_example_1_compiles() {
        let rule = compile(
            "If humidity is higher than 80 percent and temperature is higher than \
             28 degrees, turn on the air conditioner with 25 degrees of temperature setting.",
        );
        assert_eq!(rule.action().device().as_str(), "aircon-1");
        assert_eq!(rule.action().verb(), &Verb::TurnOn);
        assert_eq!(
            rule.action().setting("temperature"),
            Some(&Value::Number(Quantity::from_integer(25, Unit::Celsius)))
        );
        let dnf = rule.dnf();
        assert_eq!(dnf.conjuncts().len(), 1);
        assert_eq!(dnf.conjuncts()[0].atoms().len(), 2);
    }

    #[test]
    fn paper_example_2_compiles() {
        let rule = compile(
            "After evening, if someone returns home and the hall is dark, \
             turn on the light at the hall.",
        );
        assert_eq!(rule.action().device().as_str(), "light-hall");
        let atoms = rule.dnf().conjuncts()[0].atoms();
        // Time window + person event + ambient illuminance constraint.
        assert_eq!(atoms.len(), 3);
        assert!(atoms.iter().any(|a| matches!(a, Atom::Time(_))));
        assert!(atoms.iter().any(|a| matches!(a, Atom::Event(_))));
        assert!(atoms.iter().any(
            |a| matches!(a, Atom::Constraint(c) if c.sensor().device().as_str() == "lux-hall")
        ));
    }

    #[test]
    fn paper_example_3_compiles() {
        let rule = compile("At night, if entrance door is unlocked for 1 hour, turn on the alarm.");
        assert_eq!(rule.action().device().as_str(), "alarm-1");
        let atoms = rule.dnf().conjuncts()[0].atoms();
        assert!(atoms.iter().any(|a| matches!(
            a,
            Atom::HeldFor { duration, .. } if duration.as_minutes() == 60
        )));
    }

    #[test]
    fn speaker_resolution() {
        let rule = compile_as(
            "When I'm in the living room, play jazz music on the stereo.",
            "tom",
        );
        let atoms = rule.dnf().conjuncts()[0].atoms();
        match &atoms[0] {
            Atom::Presence(p) => {
                assert_eq!(p.subject(), &Subject::Person(PersonId::new("tom")));
                assert_eq!(p.place().as_str(), "living room");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            rule.action().setting("content"),
            Some(&Value::from("jazz music"))
        );
        assert_eq!(rule.owner().as_str(), "tom");
    }

    #[test]
    fn named_person_event_channel() {
        let rule = compile("If Alan got home from work, turn on the TV.");
        let atoms = rule.dnf().conjuncts()[0].atoms();
        match &atoms[0] {
            Atom::Event(e) => {
                assert_eq!(e.channel(), "person:alan");
                assert_eq!(e.name(), "got home from work");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn location_scoped_device_resolution() {
        let hall = compile("Turn on the light at the hall.");
        assert_eq!(hall.action().device().as_str(), "light-hall");
        let lr = compile("Turn on the light at the living room.");
        assert_eq!(lr.action().device().as_str(), "light-lr");
        // Unscoped "the light" is ambiguous between hall and living room.
        let err = compile_err("Turn on the light.");
        assert!(err.to_string().contains("unknown device"));
    }

    #[test]
    fn location_scoped_sensor_resolution() {
        let rule = compile(
            "If the temperature at the second floor is higher than 28 degrees, turn on the fan.",
        );
        let atoms = rule.dnf().conjuncts()[0].atoms();
        match &atoms[0] {
            Atom::Constraint(c) => assert_eq!(c.sensor().device().as_str(), "thermo-2f"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unitless_threshold_gets_sensor_unit() {
        let rule = compile("If temperature is higher than 28, turn on the fan.");
        let atoms = rule.dnf().conjuncts()[0].atoms();
        match &atoms[0] {
            Atom::Constraint(c) => assert_eq!(c.threshold().unit(), Unit::Celsius),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn user_words_expand_recursively() {
        let lexicon = Lexicon::english();
        let mut dictionary = Dictionary::new();
        // "muggy" uses humidity; "hot and stuffy" references "muggy".
        let muggy = parse_command(
            "Let's call the condition that humidity is higher than 60 percent muggy",
            &lexicon,
            &dictionary,
        )
        .unwrap();
        if let Command::CondDef(def) = muggy {
            dictionary.define_condition(&def.word, def.expr);
        }
        let hot = parse_command(
            "Let's call the condition that muggy and temperature is higher than 28 degrees hot and stuffy",
            &lexicon,
            &dictionary,
        )
        .unwrap();
        if let Command::CondDef(def) = hot {
            dictionary.define_condition(&def.word, def.expr);
        }
        let rule = compile_with_dict(
            "If hot and stuffy, turn on the air conditioner with 25 degrees of temperature setting.",
            "tom",
            &dictionary,
            &lexicon,
        );
        let atoms = rule.dnf().conjuncts()[0].atoms();
        assert_eq!(atoms.len(), 2); // humidity + temperature, fully expanded
    }

    #[test]
    fn cyclic_user_words_are_rejected() {
        let lexicon = Lexicon::english();
        let mut dictionary = Dictionary::new();
        // a := a (self-cycle via manual definition).
        dictionary.define_condition(
            "paradox",
            CondExprAst::Leaf(CondAst {
                kind: CondKind::UserWord("paradox".into()),
                period: None,
                time: None,
            }),
        );
        let resolver = sample_resolver();
        let cmd = parse_command("If paradox, turn on the fan.", &lexicon, &dictionary).unwrap();
        let compiler = Compiler::new(&resolver, &dictionary, PersonId::new("tom"));
        match cmd {
            Command::Rule(r) => {
                let err = compiler.compile_rule(&r).unwrap_err();
                assert!(err.to_string().contains("deeply"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn configuration_words_flatten() {
        let lexicon = Lexicon::english();
        let mut dictionary = Dictionary::new();
        let def = parse_command(
            "Let's call the configuration that 50 percent of brightness setting half lighting",
            &lexicon,
            &dictionary,
        )
        .unwrap();
        if let Command::ConfDef(d) = def {
            dictionary.define_configuration(&d.word, d.settings);
        }
        let rule = compile_with_dict(
            "Turn on the floor lamp with half lighting.",
            "tom",
            &dictionary,
            &lexicon,
        );
        assert_eq!(
            rule.action().setting("brightness"),
            Some(&Value::Number(Quantity::from_integer(50, Unit::Percent)))
        );
    }

    #[test]
    fn channel_setting_defaults_to_count() {
        let rule = compile("Turn on the TV with 4 of channel setting.");
        assert_eq!(
            rule.action().setting("channel"),
            Some(&Value::Number(Quantity::from_integer(4, Unit::Count)))
        );
    }

    #[test]
    fn until_clause_compiles() {
        let rule = compile("Play jazz music on the stereo until 10 pm.");
        let until = rule.until().expect("until clause");
        assert!(matches!(
            until,
            Condition::Atom(Atom::Time(w)) if w.start() == TimeOfDay::MIDNIGHT
        ));
    }

    #[test]
    fn unknown_names_fail_with_context() {
        assert!(compile_err("Turn on the jacuzzi.")
            .to_string()
            .contains("jacuzzi"));
        assert!(
            compile_err("If pressure is higher than 2, turn on the fan.")
                .to_string()
                .contains("pressure")
        );
        assert!(compile_err("If Zelda got home from work, turn on the TV.")
            .to_string()
            .contains("zelda"));
        assert!(compile_err("If I'm in the garage, turn on the fan.")
            .to_string()
            .contains("garage"));
    }

    #[test]
    fn weekday_and_at_clock_compile_to_atoms() {
        let rule = compile("Every Monday at 8 pm, turn on the TV with 4 of channel setting.");
        let atoms = rule.dnf().conjuncts()[0].atoms();
        assert!(atoms
            .iter()
            .any(|a| matches!(a, Atom::Weekday(w) if *w == cadel_types::Weekday::Monday)));
        assert!(atoms.iter().any(|a| matches!(
            a,
            Atom::Time(w) if w.start() == TimeOfDay::hm(20, 0).unwrap()
        )));
    }
}
