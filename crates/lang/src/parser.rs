//! Recursive-descent parser for CADEL (Table 1 of the paper).
//!
//! The parser consumes the token stream with longest-match phrase lookup
//! against the [`Lexicon`] (built-in vocabulary) and the [`Dictionary`]
//! (user-defined words). It produces the string-level AST of
//! [`crate::ast`]; resolution of noun phrases against the home environment
//! happens later in [`crate::compile`].
//!
//! Notable behaviours:
//!
//! * Commas, periods and the word "then" are optional separators.
//! * User-defined condition words are matched *before* the `and`/`or`
//!   connectives, so "hot and stuffy" parses as one word, not a
//!   conjunction.
//! * `at`/`in` after an object or subject is disambiguated by lookahead:
//!   "at the hall" is a location modifier, "at night" / "at 10 pm" a time
//!   specification.
//! * `with` after verbs like *record*, *play* and *show* is disambiguated
//!   between a `<Configuration>` clause ("with 25 degrees of temperature
//!   setting") and a content/instrument reading ("record the game with the
//!   video recorder") by scanning for the `setting` keyword.

use crate::ast::*;
use crate::dictionary::Dictionary;
use crate::error::ParseError;
use crate::lexicon::Lexicon;
use crate::token::{tokenize, Token, TokenKind};
use cadel_obs::{LazyCounter, LazyHistogram, Stopwatch};
use cadel_types::{Date, DayPart, SimDuration, TimeOfDay, Unit, Weekday};

/// Commands handed to [`parse_command`].
static PARSES: LazyCounter = LazyCounter::new("lang_parses_total");
/// Commands rejected with a [`ParseError`].
static PARSE_ERRORS: LazyCounter = LazyCounter::new("lang_parse_errors_total");
/// Wall-clock latency of [`parse_command`] (tokenize + parse).
static PARSE_NS: LazyHistogram = LazyHistogram::new("lang_parse_duration_ns");

/// Year assumed when an `on <month> <day>` date spec omits the year.
pub const DEFAULT_YEAR: i32 = 2026;

const ARTICLES: &[&str] = &["a", "an", "the"];

/// Words that end a noun phrase.
const PHRASE_STOPS: &[&str] = &[
    "with", "if", "when", "until", "at", "in", "on", "to", "and", "or", "then", "after", "before",
    "every", "from", "for", "of",
];

/// Parses one CADEL command (a rule, a condition-word definition, or a
/// configuration-word definition).
///
/// # Errors
///
/// Returns [`ParseError`] describing the first offending token.
///
/// # Example
///
/// ```
/// use cadel_lang::{parse_command, Lexicon, Dictionary, ast::Command};
///
/// let lexicon = Lexicon::english();
/// let dictionary = Dictionary::new();
/// let cmd = parse_command(
///     "If humidity is higher than 80 percent, turn on the air conditioner \
///      with 25 degrees of temperature setting.",
///     &lexicon,
///     &dictionary,
/// ).unwrap();
/// assert!(matches!(cmd, Command::Rule(_)));
/// ```
pub fn parse_command(
    input: &str,
    lexicon: &Lexicon,
    dictionary: &Dictionary,
) -> Result<Command, ParseError> {
    let sw = Stopwatch::start();
    PARSES.inc();
    let result = tokenize(input).and_then(|tokens| {
        let mut parser = Parser {
            tokens,
            pos: 0,
            lexicon,
            dictionary,
        };
        parser.parse_command()
    });
    PARSE_NS.record(&sw);
    if result.is_err() {
        PARSE_ERRORS.inc();
    }
    result
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    lexicon: &'a Lexicon,
    dictionary: &'a Dictionary,
}

impl<'a> Parser<'a> {
    // ---- token utilities -------------------------------------------------

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn current_word(&self) -> Option<&str> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Word,
                text,
                ..
            }) => Some(text.as_str()),
            _ => None,
        }
    }

    fn is_word(&self, word: &str) -> bool {
        self.current_word() == Some(word)
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.is_word(word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_separators(&mut self) {
        while let Some(t) = self.peek() {
            match t.kind {
                TokenKind::Punct(',') | TokenKind::Punct('.') | TokenKind::Punct(';') => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
    }

    fn skip_articles(&mut self) {
        while let Some(w) = self.current_word() {
            if ARTICLES.contains(&w) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let near = self.peek().map(|t| t.text.clone()).unwrap_or_default();
        ParseError::new(message, self.pos, near)
    }

    fn match_phrase<'m, V>(&self, map: &'m crate::lexicon::PhraseMap<V>) -> Option<(usize, &'m V)> {
        map.match_at(&self.tokens, self.pos)
    }

    // ---- top level -------------------------------------------------------

    fn parse_command(&mut self) -> Result<Command, ParseError> {
        self.skip_separators();
        if self.at_end() {
            return Err(self.error("empty command"));
        }
        if self.try_phrase(&["let", "us", "call", "the", "condition", "that"]) {
            return self.parse_cond_def().map(Command::CondDef);
        }
        if self.try_phrase(&["let", "us", "call", "the", "configuration", "that"]) {
            return self.parse_conf_def().map(Command::ConfDef);
        }
        self.parse_rule_sentence().map(Command::Rule)
    }

    fn try_phrase(&mut self, words: &[&str]) -> bool {
        for (i, w) in words.iter().enumerate() {
            match self.peek_at(i) {
                Some(t) if t.is_word(w) => {}
                _ => return false,
            }
        }
        self.pos += words.len();
        true
    }

    fn parse_cond_def(&mut self) -> Result<CondDef, ParseError> {
        let expr = self.parse_cond_expr()?;
        self.skip_separators();
        let word = self.collect_remaining_words()?;
        Ok(CondDef { expr, word })
    }

    fn parse_conf_def(&mut self) -> Result<ConfDef, ParseError> {
        let settings = self.parse_row_of_confs()?;
        self.skip_separators();
        let word = self.collect_remaining_words()?;
        Ok(ConfDef { settings, word })
    }

    fn collect_remaining_words(&mut self) -> Result<String, ParseError> {
        let mut words = Vec::new();
        while let Some(t) = self.peek() {
            match &t.kind {
                TokenKind::Word => {
                    words.push(t.text.clone());
                    self.pos += 1;
                }
                TokenKind::Punct('.') | TokenKind::Punct(',') => {
                    self.pos += 1;
                }
                _ => return Err(self.error("unexpected token in word definition")),
            }
        }
        if words.is_empty() {
            return Err(self.error("expected the new word at the end of the definition"));
        }
        Ok(words.join(" "))
    }

    // ---- rule sentences --------------------------------------------------

    fn parse_rule_sentence(&mut self) -> Result<RuleSentence, ParseError> {
        let pre = self.parse_cond_clause_leading()?;
        self.skip_separators();

        let (verb_len, verb) = self
            .match_phrase(self.lexicon.verbs())
            .map(|(l, v)| (l, v.clone()))
            .ok_or_else(|| self.error("expected a verb"))?;
        self.pos += verb_len;

        let (content, object) = self.parse_operands(&verb)?;

        let mut config = Vec::new();
        if self.is_word("with") && self.with_clause_is_configuration() {
            self.pos += 1; // with
            config = self.parse_row_of_confs()?;
        }

        let mut post: Option<CondClause> = None;
        let mut until: Option<CondClause> = None;
        loop {
            self.skip_separators();
            if self.at_end() {
                break;
            }
            if self.eat_word("until") {
                until = Some(self.parse_until_clause()?);
                continue;
            }
            if self.time_spec_starts_here() {
                let spec = self.parse_time_spec()?;
                post.get_or_insert_with(CondClause::default).time.push(spec);
                continue;
            }
            if self.is_word("if") || self.is_word("when") {
                self.pos += 1;
                let expr = self.parse_cond_expr()?;
                post.get_or_insert_with(CondClause::default).expr = Some(expr);
                continue;
            }
            return Err(self.error("unexpected trailing words"));
        }

        Ok(RuleSentence {
            pre,
            verb,
            content,
            object,
            config,
            post,
            until,
        })
    }

    fn parse_cond_clause_leading(&mut self) -> Result<Option<CondClause>, ParseError> {
        let mut clause = CondClause::default();
        loop {
            self.skip_separators();
            if self.time_spec_starts_here() {
                clause.time.push(self.parse_time_spec()?);
                continue;
            }
            if self.is_word("if") || self.is_word("when") {
                self.pos += 1;
                clause.expr = Some(self.parse_cond_expr()?);
                self.skip_separators();
                self.eat_word("then");
                break;
            }
            break;
        }
        Ok(if clause.is_empty() {
            None
        } else {
            Some(clause)
        })
    }

    fn parse_until_clause(&mut self) -> Result<CondClause, ParseError> {
        self.skip_articles();
        if self.looks_like_time_point() {
            let point = self.parse_time_point()?;
            return Ok(CondClause {
                time: vec![TimeSpecAst::Before(point)],
                expr: None,
            });
        }
        let expr = self.parse_cond_expr()?;
        Ok(CondClause {
            time: Vec::new(),
            expr: Some(expr),
        })
    }

    /// After a verb: `[content (on|to)] object [location]`.
    fn parse_operands(
        &mut self,
        verb: &cadel_rule::Verb,
    ) -> Result<(Option<Phrase>, ObjectPhrase), ParseError> {
        self.skip_articles();
        let first = self.collect_noun_phrase()?;
        if first.is_empty() {
            return Err(self.error("expected a device name"));
        }
        // Content form: "play jazz music ON the stereo".
        if (self.is_word("on") || self.is_word("to")) && self.noun_follows(1) {
            self.pos += 1;
            self.skip_articles();
            let object_name = self.collect_noun_phrase()?;
            if object_name.is_empty() {
                return Err(self.error("expected a device after the preposition"));
            }
            let location = self.parse_location_modifier()?;
            return Ok((
                Some(first),
                ObjectPhrase {
                    name: object_name,
                    location,
                },
            ));
        }
        // Instrument form: "record the baseball game WITH the video
        // recorder" — only when the with-clause is not a configuration.
        if self.is_word("with") && !self.with_clause_is_configuration() {
            self.pos += 1;
            self.skip_articles();
            let object_name = self.collect_noun_phrase()?;
            if object_name.is_empty() {
                return Err(self.error("expected a device after 'with'"));
            }
            let location = self.parse_location_modifier()?;
            return Ok((
                Some(first),
                ObjectPhrase {
                    name: object_name,
                    location,
                },
            ));
        }
        let _ = verb;
        let location = self.parse_location_modifier()?;
        Ok((
            None,
            ObjectPhrase {
                name: first,
                location,
            },
        ))
    }

    fn noun_follows(&self, offset: usize) -> bool {
        let mut k = offset;
        while let Some(t) = self.peek_at(k) {
            match &t.kind {
                TokenKind::Word if ARTICLES.contains(&t.text.as_str()) => k += 1,
                TokenKind::Word => return !PHRASE_STOPS.contains(&t.text.as_str()),
                _ => return false,
            }
        }
        false
    }

    /// Collects noun words until a stop word or punctuation.
    fn collect_noun_phrase(&mut self) -> Result<Phrase, ParseError> {
        let mut words = Vec::new();
        while let Some(t) = self.peek() {
            match &t.kind {
                TokenKind::Word => {
                    let w = t.text.as_str();
                    if PHRASE_STOPS.contains(&w) {
                        break;
                    }
                    if ARTICLES.contains(&w) && words.is_empty() {
                        self.pos += 1;
                        continue;
                    }
                    words.push(t.text.clone());
                    self.pos += 1;
                }
                TokenKind::Number(_) => {
                    words.push(t.text.clone());
                    self.pos += 1;
                }
                TokenKind::Punct(_) => break,
            }
        }
        Ok(words)
    }

    /// `at the hall` / `in the living room` after an object — but only
    /// when the lookahead is not a time expression.
    fn parse_location_modifier(&mut self) -> Result<Option<Phrase>, ParseError> {
        if !(self.is_word("at") || self.is_word("in")) {
            return Ok(None);
        }
        if self.at_in_is_time_spec() {
            return Ok(None);
        }
        self.pos += 1;
        self.skip_articles();
        let place = self.collect_noun_phrase()?;
        if place.is_empty() {
            return Err(self.error("expected a place after 'at'/'in'"));
        }
        Ok(Some(place))
    }

    /// Whether the `at`/`in` at the current position introduces a time
    /// expression ("at night", "at 10 pm", "in the evening").
    fn at_in_is_time_spec(&self) -> bool {
        let mut k = 1;
        while let Some(t) = self.peek_at(k) {
            if let TokenKind::Word = t.kind {
                if ARTICLES.contains(&t.text.as_str()) {
                    k += 1;
                    continue;
                }
                return DayPart::from_word(&t.text).is_some()
                    || t.text == "noon"
                    || t.text == "midnight";
            }
            return matches!(t.kind, TokenKind::Number(_));
        }
        false
    }

    // ---- configurations ----------------------------------------------------

    /// Whether the upcoming `with …` clause reads as a `<Configuration>`:
    /// it mentions `setting` before the clause ends, or starts with a
    /// user-defined configuration word.
    fn with_clause_is_configuration(&self) -> bool {
        debug_assert!(self.is_word("with"));
        if self
            .dictionary
            .configuration_phrases()
            .match_at(&self.tokens, self.pos + 1)
            .is_some()
        {
            return true;
        }
        let mut k = 1;
        while let Some(t) = self.peek_at(k) {
            match &t.kind {
                TokenKind::Word if t.text == "setting" => return true,
                TokenKind::Word if matches!(t.text.as_str(), "if" | "when" | "until") => {
                    return false
                }
                TokenKind::Punct('.') | TokenKind::Punct(',') => return false,
                _ => k += 1,
            }
        }
        false
    }

    /// `<RowOfConfs> ::= <Setting> "of" <Parameter> "setting"
    ///                 | <RowOfConfs> "and" <RowOfConfs>` — plus
    /// user-defined configuration words.
    fn parse_row_of_confs(&mut self) -> Result<Vec<SettingAst>, ParseError> {
        let mut settings = Vec::new();
        loop {
            self.skip_articles();
            if let Some((len, word)) = self
                .dictionary
                .configuration_phrases()
                .match_at(&self.tokens, self.pos)
            {
                let word = word.clone();
                self.pos += len;
                settings.push(SettingAst::UserWord(word));
            } else {
                settings.push(self.parse_single_setting()?);
            }
            self.skip_separators();
            if !self.eat_word("and") {
                break;
            }
        }
        Ok(settings)
    }

    fn parse_single_setting(&mut self) -> Result<SettingAst, ParseError> {
        let value = if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Number(_))) {
            SettingValueAst::Quantity(self.parse_quantity()?)
        } else {
            let mut words = Vec::new();
            while let Some(t) = self.peek() {
                match &t.kind {
                    TokenKind::Word if t.text == "of" => break,
                    TokenKind::Word => {
                        words.push(t.text.clone());
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            if words.is_empty() {
                return Err(self.error("expected a setting value"));
            }
            SettingValueAst::Word(words)
        };
        if !self.eat_word("of") {
            return Err(self.error("expected 'of' in configuration"));
        }
        let mut parameter = Vec::new();
        while let Some(t) = self.peek() {
            match &t.kind {
                TokenKind::Word if t.text == "setting" => break,
                TokenKind::Word => {
                    parameter.push(t.text.clone());
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if parameter.is_empty() {
            return Err(self.error("expected a parameter name in configuration"));
        }
        if !self.eat_word("setting") {
            return Err(self.error("expected the word 'setting'"));
        }
        Ok(SettingAst::Explicit { parameter, value })
    }

    // ---- quantities --------------------------------------------------------

    fn parse_quantity(&mut self) -> Result<QuantityAst, ParseError> {
        let value = match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                n
            }
            _ => return Err(self.error("expected a number")),
        };
        // Unit: '%' punct, or unit words ("degrees [celsius|fahrenheit]",
        // "percent", "lux", …).
        let unit = if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Punct('%'))) {
            self.pos += 1;
            Some(Unit::Percent)
        } else if let Some(w) = self.current_word() {
            if w == "degrees" || w == "degree" {
                self.pos += 1;
                match self.current_word() {
                    Some("celsius") => {
                        self.pos += 1;
                        Some(Unit::Celsius)
                    }
                    Some("fahrenheit") => {
                        self.pos += 1;
                        Some(Unit::Fahrenheit)
                    }
                    _ => Some(Unit::Celsius),
                }
            } else if let Some(u) = Unit::from_word(w) {
                self.pos += 1;
                Some(u)
            } else {
                None
            }
        } else {
            None
        };
        Ok(QuantityAst { value, unit })
    }

    // ---- time --------------------------------------------------------------

    fn time_spec_starts_here(&self) -> bool {
        match self.current_word() {
            Some("after") | Some("before") | Some("every") | Some("from") => true,
            Some("at") | Some("in") => self.at_in_is_time_spec(),
            Some("on") => self
                .peek_at(1)
                .and_then(|t| match &t.kind {
                    TokenKind::Word => month_number(&t.text),
                    _ => None,
                })
                .is_some(),
            _ => false,
        }
    }

    fn looks_like_time_point(&self) -> bool {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Number(_)) => true,
            Some(TokenKind::Word) => {
                let w = self.current_word().unwrap();
                DayPart::from_word(w).is_some() || w == "noon" || w == "midnight"
            }
            _ => false,
        }
    }

    fn parse_time_spec(&mut self) -> Result<TimeSpecAst, ParseError> {
        if self.eat_word("after") {
            self.skip_articles();
            return Ok(TimeSpecAst::After(self.parse_time_point()?));
        }
        if self.eat_word("before") {
            self.skip_articles();
            return Ok(TimeSpecAst::Before(self.parse_time_point()?));
        }
        if self.eat_word("every") {
            let w = self
                .current_word()
                .and_then(Weekday::from_word)
                .ok_or_else(|| self.error("expected a weekday after 'every'"))?;
            self.pos += 1;
            return Ok(TimeSpecAst::Every(w));
        }
        if self.eat_word("from") {
            self.skip_articles();
            let start = self.parse_time_point()?;
            if !self.eat_word("to") && !self.eat_word("until") {
                return Err(self.error("expected 'to' in time range"));
            }
            self.skip_articles();
            let end = self.parse_time_point()?;
            return Ok(TimeSpecAst::Between(start, end));
        }
        if self.eat_word("on") {
            return self.parse_date_spec();
        }
        if self.eat_word("at") {
            self.skip_articles();
            return Ok(TimeSpecAst::At(self.parse_time_point()?));
        }
        if self.eat_word("in") {
            self.skip_articles();
            let part = self
                .current_word()
                .and_then(DayPart::from_word)
                .ok_or_else(|| self.error("expected a day part after 'in'"))?;
            self.pos += 1;
            return Ok(TimeSpecAst::During(part));
        }
        Err(self.error("expected a time specification"))
    }

    fn parse_time_point(&mut self) -> Result<TimePointAst, ParseError> {
        if let Some(w) = self.current_word() {
            if w == "noon" {
                self.pos += 1;
                return Ok(TimePointAst::Clock(TimeOfDay::NOON));
            }
            if w == "midnight" {
                self.pos += 1;
                return Ok(TimePointAst::Clock(TimeOfDay::MIDNIGHT));
            }
            if let Some(part) = DayPart::from_word(w) {
                self.pos += 1;
                return Ok(TimePointAst::DayPart(part));
            }
        }
        let hour = match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                n
            }
            _ => return Err(self.error("expected a time of day")),
        };
        let mut minute = 0i64;
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Punct(':'))) {
            self.pos += 1;
            match self.peek().map(|t| t.kind.clone()) {
                Some(TokenKind::Number(m)) => {
                    self.pos += 1;
                    minute = m.numer() as i64;
                }
                _ => return Err(self.error("expected minutes after ':'")),
            }
        }
        if !hour.is_integer() {
            return Err(self.error("fractional hours are not a valid time"));
        }
        let mut h = hour.numer() as i64;
        if self.eat_word("pm") {
            if !(1..=12).contains(&h) {
                return Err(self.error("invalid 12-hour time"));
            }
            if h != 12 {
                h += 12;
            }
        } else if self.eat_word("am") {
            if !(1..=12).contains(&h) {
                return Err(self.error("invalid 12-hour time"));
            }
            if h == 12 {
                h = 0;
            }
        } else {
            self.eat_word("o'clock");
        }
        let tod = TimeOfDay::hm(h as u8, minute as u8)
            .ok_or_else(|| self.error("time of day out of range"))?;
        Ok(TimePointAst::Clock(tod))
    }

    fn parse_date_spec(&mut self) -> Result<TimeSpecAst, ParseError> {
        let month = self
            .current_word()
            .and_then(month_number)
            .ok_or_else(|| self.error("expected a month name after 'on'"))?;
        self.pos += 1;
        let day = match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Number(n)) if n.is_integer() => {
                self.pos += 1;
                n.numer() as i64
            }
            _ => return Err(self.error("expected a day of month")),
        };
        let year = match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Number(n)) if n.is_integer() && n.numer() >= 1000 => {
                self.pos += 1;
                n.numer() as i32
            }
            _ => DEFAULT_YEAR,
        };
        let date =
            Date::new(year, month, day as u8).ok_or_else(|| self.error("invalid calendar date"))?;
        Ok(TimeSpecAst::On(date))
    }

    // ---- conditions ----------------------------------------------------------

    fn parse_cond_expr(&mut self) -> Result<CondExprAst, ParseError> {
        let mut terms = vec![self.parse_cond_and()?];
        while self.is_word("or") {
            self.pos += 1;
            terms.push(self.parse_cond_and()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one element")
        } else {
            CondExprAst::Or(terms)
        })
    }

    fn parse_cond_and(&mut self) -> Result<CondExprAst, ParseError> {
        let mut terms = vec![self.parse_cond_primary()?];
        while self.is_word("and") {
            self.pos += 1;
            terms.push(self.parse_cond_primary()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one element")
        } else {
            CondExprAst::And(terms)
        })
    }

    fn parse_cond_primary(&mut self) -> Result<CondExprAst, ParseError> {
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Punct('('))) {
            self.pos += 1;
            let inner = self.parse_cond_expr()?;
            if !matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Punct(')'))) {
                return Err(self.error("expected ')'"));
            }
            self.pos += 1;
            return Ok(inner);
        }
        let cond = self.parse_cond()?;
        Ok(CondExprAst::Leaf(cond))
    }

    fn parse_cond(&mut self) -> Result<CondAst, ParseError> {
        // 1. User-defined condition word (takes precedence; may contain
        //    "and").
        if let Some((len, word)) = self
            .dictionary
            .condition_phrases()
            .match_at(&self.tokens, self.pos)
        {
            let word = word.clone();
            self.pos += len;
            let (period, time) = self.parse_cond_suffix()?;
            return Ok(CondAst {
                kind: CondKind::UserWord(word),
                period,
                time,
            });
        }

        // 2. Special presence subjects.
        let who = self.parse_presence_subject();
        if let Some(who) = who {
            return self.parse_after_subject_person(who);
        }

        // 3. General subject phrase up to a predicate.
        let subject = self.collect_subject()?;
        self.parse_after_subject_general(subject)
    }

    fn parse_presence_subject(&mut self) -> Option<PresenceSubject> {
        match self.current_word() {
            Some("i") => {
                self.pos += 1;
                Some(PresenceSubject::Me)
            }
            Some("someone") | Some("somebody") | Some("anyone") | Some("anybody") => {
                self.pos += 1;
                Some(PresenceSubject::Somebody)
            }
            Some("nobody") => {
                self.pos += 1;
                Some(PresenceSubject::Nobody)
            }
            Some("no") if self.peek_at(1).map(|t| t.is_word("one")).unwrap_or(false) => {
                self.pos += 2;
                Some(PresenceSubject::Nobody)
            }
            _ => None,
        }
    }

    fn parse_after_subject_person(&mut self, who: PresenceSubject) -> Result<CondAst, ParseError> {
        if let Some((len, _)) = self.match_phrase(self.lexicon.presence_predicates()) {
            self.pos += len;
            self.skip_articles();
            let place = self.collect_place_phrase()?;
            if place.is_empty() {
                return Err(self.error("expected a place"));
            }
            let (period, time) = self.parse_cond_suffix()?;
            return Ok(CondAst {
                kind: CondKind::Presence { who, place },
                period,
                time,
            });
        }
        if let Some((len, event)) = self.match_phrase(self.lexicon.person_events()) {
            let event = event.clone();
            self.pos += len;
            let (period, time) = self.parse_cond_suffix()?;
            return Ok(CondAst {
                kind: CondKind::PersonEvent { who, event },
                period,
                time,
            });
        }
        Err(self.error("expected 'is at <place>' or an event after the person"))
    }

    /// Collects subject words until a predicate phrase is recognized.
    fn collect_subject(&mut self) -> Result<SubjectPhrase, ParseError> {
        let mut subject = SubjectPhrase::default();
        self.skip_articles();
        loop {
            if self.predicate_matches_here() {
                break;
            }
            match self.peek() {
                Some(t) => match &t.kind {
                    TokenKind::Word => {
                        let w = t.text.as_str();
                        if matches!(w, "and" | "or" | "then" | "if" | "when") {
                            return Err(self.error("expected a predicate in the condition"));
                        }
                        if (w == "at" || w == "in") && !subject.name.is_empty() {
                            if self.at_in_is_time_spec() {
                                break;
                            }
                            // Location modifier within the subject.
                            self.pos += 1;
                            self.skip_articles();
                            let mut loc = Vec::new();
                            while !self.predicate_matches_here() {
                                match self.peek() {
                                    Some(t2) if matches!(t2.kind, TokenKind::Word) => {
                                        let w2 = t2.text.as_str();
                                        if PHRASE_STOPS.contains(&w2) {
                                            break;
                                        }
                                        loc.push(t2.text.clone());
                                        self.pos += 1;
                                    }
                                    _ => break,
                                }
                            }
                            if loc.is_empty() {
                                return Err(self.error("expected a place after 'at'/'in'"));
                            }
                            subject.location = Some(loc);
                            continue;
                        }
                        if ARTICLES.contains(&w) {
                            self.pos += 1;
                            continue;
                        }
                        subject.name.push(t.text.clone());
                        self.pos += 1;
                    }
                    TokenKind::Number(_) => {
                        subject.name.push(t.text.clone());
                        self.pos += 1;
                    }
                    TokenKind::Punct(_) => {
                        return Err(self.error("expected a predicate in the condition"))
                    }
                },
                None => return Err(self.error("expected a predicate in the condition")),
            }
            if subject.name.len() > 8 {
                return Err(self.error("condition subject is too long"));
            }
        }
        if subject.name.is_empty() {
            return Err(self.error("expected a condition subject"));
        }
        Ok(subject)
    }

    fn predicate_matches_here(&self) -> bool {
        self.match_phrase(self.lexicon.comparisons()).is_some()
            || self.match_phrase(self.lexicon.states()).is_some()
            || self
                .match_phrase(self.lexicon.broadcast_predicates())
                .is_some()
            || self.match_phrase(self.lexicon.person_events()).is_some()
            || self
                .match_phrase(self.lexicon.presence_predicates())
                .is_some()
    }

    fn parse_after_subject_general(
        &mut self,
        subject: SubjectPhrase,
    ) -> Result<CondAst, ParseError> {
        // Order matters: comparisons ("is higher than") before states, and
        // broadcast before presence so "is on air" beats "is on".
        if let Some((len, op)) = self.match_phrase(self.lexicon.comparisons()) {
            let op = *op;
            self.pos += len;
            let quantity = self.parse_quantity()?;
            let (period, time) = self.parse_cond_suffix()?;
            return Ok(CondAst {
                kind: CondKind::Compare {
                    subject,
                    op,
                    quantity,
                },
                period,
                time,
            });
        }
        if let Some((len, _)) = self.match_phrase(self.lexicon.broadcast_predicates()) {
            self.pos += len;
            let (period, time) = self.parse_cond_suffix()?;
            return Ok(CondAst {
                kind: CondKind::Broadcast {
                    program: subject.name,
                },
                period,
                time,
            });
        }
        if let Some((len, state)) = self.match_phrase(self.lexicon.states()) {
            let state = state.clone();
            self.pos += len;
            let (period, time) = self.parse_cond_suffix()?;
            return Ok(CondAst {
                kind: CondKind::State { subject, state },
                period,
                time,
            });
        }
        if let Some((len, event)) = self.match_phrase(self.lexicon.person_events()) {
            let event = event.clone();
            self.pos += len;
            let (period, time) = self.parse_cond_suffix()?;
            return Ok(CondAst {
                kind: CondKind::PersonEvent {
                    who: PresenceSubject::Named(subject.name),
                    event,
                },
                period,
                time,
            });
        }
        if let Some((len, _)) = self.match_phrase(self.lexicon.presence_predicates()) {
            self.pos += len;
            self.skip_articles();
            let place = self.collect_place_phrase()?;
            if place.is_empty() {
                return Err(self.error("expected a place"));
            }
            let (period, time) = self.parse_cond_suffix()?;
            return Ok(CondAst {
                kind: CondKind::Presence {
                    who: PresenceSubject::Named(subject.name),
                    place,
                },
                period,
                time,
            });
        }
        Err(self.error("expected a predicate in the condition"))
    }

    /// Collects a place phrase, stopping before trailing time specs and
    /// connectives.
    fn collect_place_phrase(&mut self) -> Result<Phrase, ParseError> {
        let mut place = Vec::new();
        while let Some(t) = self.peek() {
            match &t.kind {
                TokenKind::Word => {
                    let w = t.text.as_str();
                    if matches!(
                        w,
                        "and"
                            | "or"
                            | "then"
                            | "if"
                            | "when"
                            | "for"
                            | "until"
                            | "after"
                            | "before"
                            | "every"
                            | "from"
                    ) {
                        break;
                    }
                    if (w == "at" || w == "in") && self.at_in_is_time_spec() {
                        break;
                    }
                    if ARTICLES.contains(&w) {
                        self.pos += 1;
                        continue;
                    }
                    place.push(t.text.clone());
                    self.pos += 1;
                }
                _ => break,
            }
        }
        Ok(place)
    }

    /// Optional `<PeriodSpec>` ("for 1 hour") and trailing `<TimeSpec>`
    /// ("in evening") after a condition.
    fn parse_cond_suffix(
        &mut self,
    ) -> Result<(Option<SimDuration>, Option<TimeSpecAst>), ParseError> {
        let mut period = None;
        let mut time = None;
        loop {
            if self.is_word("for") {
                self.pos += 1;
                period = Some(self.parse_duration()?);
                continue;
            }
            if self.time_spec_starts_here() {
                // A trailing timespec belongs to this condition.
                time = Some(self.parse_time_spec()?);
                continue;
            }
            break;
        }
        Ok((period, time))
    }

    fn parse_duration(&mut self) -> Result<SimDuration, ParseError> {
        let n = match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Number(n)) if n.is_integer() && !n.is_negative() => {
                self.pos += 1;
                n.numer() as u64
            }
            _ => return Err(self.error("expected a number after 'for'")),
        };
        let unit = self
            .current_word()
            .ok_or_else(|| self.error("expected a time unit"))?;
        let duration = match unit {
            "second" | "seconds" => SimDuration::from_secs(n),
            "minute" | "minutes" => SimDuration::from_minutes(n),
            "hour" | "hours" => SimDuration::from_hours(n),
            _ => return Err(self.error("expected seconds, minutes or hours")),
        };
        self.pos += 1;
        Ok(duration)
    }
}

fn month_number(word: &str) -> Option<u8> {
    match word {
        "january" => Some(1),
        "february" => Some(2),
        "march" => Some(3),
        "april" => Some(4),
        "may" => Some(5),
        "june" => Some(6),
        "july" => Some(7),
        "august" => Some(8),
        "september" => Some(9),
        "october" => Some(10),
        "november" => Some(11),
        "december" => Some(12),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadel_rule::Verb;
    use cadel_simplex::RelOp;
    use cadel_types::Rational;

    fn parse(input: &str) -> Command {
        let lexicon = Lexicon::english();
        let dictionary = Dictionary::new();
        parse_command(input, &lexicon, &dictionary).unwrap()
    }

    fn parse_with_dict(input: &str, dictionary: &Dictionary) -> Command {
        let lexicon = Lexicon::english();
        parse_command(input, &lexicon, dictionary).unwrap()
    }

    fn rule(input: &str) -> RuleSentence {
        match parse(input) {
            Command::Rule(r) => r,
            other => panic!("expected a rule, got {other:?}"),
        }
    }

    fn parse_err(input: &str) -> ParseError {
        let lexicon = Lexicon::english();
        let dictionary = Dictionary::new();
        parse_command(input, &lexicon, &dictionary).unwrap_err()
    }

    #[test]
    fn paper_example_1_full_rule() {
        // Paper §4.2 example (1).
        let r = rule(
            "If humidity is higher than 80 percent and temperature is higher than \
             28 degrees, turn on the air conditioner with 25 degrees of temperature setting.",
        );
        assert_eq!(r.verb, Verb::TurnOn);
        assert_eq!(r.object.name, vec!["air", "conditioner"]);
        assert_eq!(r.config.len(), 1);
        let pre = r.pre.unwrap();
        match pre.expr.unwrap() {
            CondExprAst::And(terms) => {
                assert_eq!(terms.len(), 2);
                match &terms[0] {
                    CondExprAst::Leaf(CondAst {
                        kind:
                            CondKind::Compare {
                                subject,
                                op,
                                quantity,
                            },
                        ..
                    }) => {
                        assert_eq!(subject.name, vec!["humidity"]);
                        assert_eq!(*op, RelOp::Gt);
                        assert_eq!(quantity.value, Rational::from_integer(80));
                        assert_eq!(quantity.unit, Some(Unit::Percent));
                    }
                    other => panic!("unexpected first term {other:?}"),
                }
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn paper_example_2_time_and_ambient() {
        // Paper §4.2 example (2).
        let r = rule(
            "After evening, if someone returns home and the hall is dark, \
             turn on the light at the hall.",
        );
        let pre = r.pre.unwrap();
        assert_eq!(
            pre.time,
            vec![TimeSpecAst::After(TimePointAst::DayPart(DayPart::Evening))]
        );
        match pre.expr.unwrap() {
            CondExprAst::And(terms) => {
                assert!(matches!(
                    &terms[0],
                    CondExprAst::Leaf(CondAst {
                        kind: CondKind::PersonEvent {
                            who: PresenceSubject::Somebody,
                            ..
                        },
                        ..
                    })
                ));
                assert!(matches!(
                    &terms[1],
                    CondExprAst::Leaf(CondAst {
                        kind: CondKind::State { .. },
                        ..
                    })
                ));
            }
            other => panic!("expected And, got {other:?}"),
        }
        assert_eq!(r.object.name, vec!["light"]);
        assert_eq!(r.object.location, Some(vec!["hall".to_owned()]));
    }

    #[test]
    fn paper_example_3_duration() {
        // Paper §4.2 example (3).
        let r = rule("At night, if entrance door is unlocked for 1 hour, turn on the alarm.");
        let pre = r.pre.unwrap();
        assert_eq!(
            pre.time,
            vec![TimeSpecAst::At(TimePointAst::DayPart(DayPart::Night))]
        );
        match pre.expr.unwrap() {
            CondExprAst::Leaf(CondAst { kind, period, .. }) => {
                assert!(matches!(kind, CondKind::State { .. }));
                assert_eq!(period, Some(SimDuration::from_hours(1)));
            }
            other => panic!("expected Leaf, got {other:?}"),
        }
        assert_eq!(r.object.name, vec!["alarm"]);
    }

    #[test]
    fn presence_of_speaker() {
        let r = rule("When I'm in the living room in evening, turn on the stereo.");
        let pre = r.pre.unwrap();
        match pre.expr.unwrap() {
            CondExprAst::Leaf(CondAst {
                kind: CondKind::Presence { who, place },
                time,
                ..
            }) => {
                assert_eq!(who, PresenceSubject::Me);
                assert_eq!(place, vec!["living", "room"]);
                assert_eq!(time, Some(TimeSpecAst::During(DayPart::Evening)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_condition() {
        let r = rule("When a baseball game is on air, turn on the TV.");
        match r.pre.unwrap().expr.unwrap() {
            CondExprAst::Leaf(CondAst {
                kind: CondKind::Broadcast { program },
                ..
            }) => assert_eq!(program, vec!["baseball", "game"]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.object.name, vec!["tv"]);
    }

    #[test]
    fn named_person_event() {
        let r = rule("If Alan got home from work, turn on the TV.");
        match r.pre.unwrap().expr.unwrap() {
            CondExprAst::Leaf(CondAst {
                kind: CondKind::PersonEvent { who, event },
                ..
            }) => {
                assert_eq!(who, PresenceSubject::Named(vec!["alan".into()]));
                assert_eq!(event, "got home from work");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn content_form_play_on() {
        let r = rule("If I'm in the living room, play jazz music on the stereo.");
        assert_eq!(r.verb, Verb::Play);
        assert_eq!(r.content, Some(vec!["jazz".into(), "music".into()]));
        assert_eq!(r.object.name, vec!["stereo"]);
    }

    #[test]
    fn instrument_form_record_with() {
        let r = rule(
            "When a baseball game is on air, record the baseball game with the video recorder.",
        );
        assert_eq!(r.verb, Verb::Record);
        assert_eq!(r.content, Some(vec!["baseball".into(), "game".into()]));
        assert_eq!(r.object.name, vec!["video", "recorder"]);
    }

    #[test]
    fn with_configuration_is_not_instrument() {
        let r = rule("Turn on the air conditioner with 25 degrees of temperature setting and 60 percent of humidity setting.");
        assert!(r.content.is_none());
        assert_eq!(r.config.len(), 2);
        match &r.config[1] {
            SettingAst::Explicit { parameter, value } => {
                assert_eq!(parameter, &vec!["humidity".to_owned()]);
                assert!(
                    matches!(value, SettingValueAst::Quantity(q) if q.unit == Some(Unit::Percent))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn word_valued_setting() {
        let r = rule("Turn on the stereo with jazz of genre setting.");
        match &r.config[0] {
            SettingAst::Explicit { parameter, value } => {
                assert_eq!(parameter, &vec!["genre".to_owned()]);
                assert_eq!(value, &SettingValueAst::Word(vec!["jazz".into()]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn percent_sign_unit() {
        let r = rule("If humidity is over 60%, turn on the fan.");
        match r.pre.unwrap().expr.unwrap() {
            CondExprAst::Leaf(CondAst {
                kind: CondKind::Compare { quantity, op, .. },
                ..
            }) => {
                assert_eq!(op, RelOp::Gt);
                assert_eq!(quantity.unit, Some(Unit::Percent));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn or_conditions_and_parentheses() {
        let r = rule(
            "If (temperature is over 30 degrees or humidity is over 80 percent) \
             and the TV is turned off, turn on the fan.",
        );
        match r.pre.unwrap().expr.unwrap() {
            CondExprAst::And(terms) => {
                assert!(matches!(&terms[0], CondExprAst::Or(inner) if inner.len() == 2));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn until_time_clause() {
        let r = rule("Turn on the light at the hall until 10 pm.");
        let until = r.until.unwrap();
        assert_eq!(
            until.time,
            vec![TimeSpecAst::Before(TimePointAst::Clock(
                TimeOfDay::hm(22, 0).unwrap()
            ))]
        );
        assert_eq!(r.object.location, Some(vec!["hall".to_owned()]));
    }

    #[test]
    fn until_condition_clause() {
        let r = rule("Play jazz music on the stereo until Alan returns home.");
        let until = r.until.unwrap();
        assert!(until.expr.is_some());
    }

    #[test]
    fn postcondition_clause() {
        let r = rule("Turn on the light at the hall when the hall is dark.");
        assert!(r.pre.is_none());
        let post = r.post.unwrap();
        assert!(post.expr.is_some());
        assert_eq!(r.object.location, Some(vec!["hall".to_owned()]));
    }

    #[test]
    fn every_weekday_spec() {
        let r = rule("Every Monday at 8 pm, turn on the TV with 4 of channel setting.");
        let pre = r.pre.unwrap();
        assert_eq!(pre.time.len(), 2);
        assert_eq!(pre.time[0], TimeSpecAst::Every(Weekday::Monday));
        assert_eq!(
            pre.time[1],
            TimeSpecAst::At(TimePointAst::Clock(TimeOfDay::hm(20, 0).unwrap()))
        );
    }

    #[test]
    fn date_spec_with_and_without_year() {
        let r = rule("On June 6 2005, turn on the TV.");
        assert_eq!(
            r.pre.unwrap().time,
            vec![TimeSpecAst::On(Date::new(2005, 6, 6).unwrap())]
        );
        let r = rule("On december 24, turn on the light.");
        assert_eq!(
            r.pre.unwrap().time,
            vec![TimeSpecAst::On(Date::new(DEFAULT_YEAR, 12, 24).unwrap())]
        );
    }

    #[test]
    fn from_to_range() {
        let r = rule("From 9 am to 5 pm, turn off the stereo.");
        assert_eq!(
            r.pre.unwrap().time,
            vec![TimeSpecAst::Between(
                TimePointAst::Clock(TimeOfDay::hm(9, 0).unwrap()),
                TimePointAst::Clock(TimeOfDay::hm(17, 0).unwrap())
            )]
        );
    }

    #[test]
    fn clock_time_with_minutes() {
        let r = rule("At 18:30, turn on the light.");
        assert_eq!(
            r.pre.unwrap().time,
            vec![TimeSpecAst::At(TimePointAst::Clock(
                TimeOfDay::hm(18, 30).unwrap()
            ))]
        );
    }

    #[test]
    fn cond_def_sentence() {
        // Paper §4.2: defining "hot and stuffy".
        let cmd = parse(
            "Let's call the condition that humidity is higher than 60 percent and \
             temperature is higher than 28 degrees hot and stuffy",
        );
        match cmd {
            Command::CondDef(def) => {
                assert_eq!(def.word, "hot and stuffy");
                assert!(matches!(def.expr, CondExprAst::And(_)));
            }
            other => panic!("expected CondDef, got {other:?}"),
        }
    }

    #[test]
    fn conf_def_sentence() {
        let cmd = parse(
            "Let's call the configuration that 50 percent of brightness setting half lighting",
        );
        match cmd {
            Command::ConfDef(def) => {
                assert_eq!(def.word, "half lighting");
                assert_eq!(def.settings.len(), 1);
            }
            other => panic!("expected ConfDef, got {other:?}"),
        }
    }

    #[test]
    fn user_condition_word_in_rule() {
        let mut dict = Dictionary::new();
        // Define "hot and stuffy" first.
        let def = match parse(
            "Let's call the condition that temperature is higher than 28 degrees hot and stuffy",
        ) {
            Command::CondDef(d) => d,
            other => panic!("unexpected {other:?}"),
        };
        dict.define_condition(&def.word, def.expr);

        let cmd = parse_with_dict(
            "If hot and stuffy, turn on the air conditioner with 25 degrees of temperature setting.",
            &dict,
        );
        match cmd {
            Command::Rule(r) => match r.pre.unwrap().expr.unwrap() {
                CondExprAst::Leaf(CondAst {
                    kind: CondKind::UserWord(w),
                    ..
                }) => assert_eq!(w, "hot and stuffy"),
                other => panic!("expected user word, got {other:?}"),
            },
            other => panic!("expected rule, got {other:?}"),
        }
    }

    #[test]
    fn user_configuration_word_in_rule() {
        let mut dict = Dictionary::new();
        dict.define_configuration(
            "half lighting",
            vec![SettingAst::Explicit {
                parameter: vec!["brightness".into()],
                value: SettingValueAst::Quantity(QuantityAst {
                    value: Rational::from_integer(50),
                    unit: Some(Unit::Percent),
                }),
            }],
        );
        let cmd = parse_with_dict("Turn on the floor lamp with half lighting.", &dict);
        match cmd {
            Command::Rule(r) => {
                assert_eq!(r.config, vec![SettingAst::UserWord("half lighting".into())]);
            }
            other => panic!("expected rule, got {other:?}"),
        }
    }

    #[test]
    fn quoted_program_title() {
        let r = rule("When \"Monday Night Baseball\" is on air, turn on the TV.");
        match r.pre.unwrap().expr.unwrap() {
            CondExprAst::Leaf(CondAst {
                kind: CondKind::Broadcast { program },
                ..
            }) => assert_eq!(program, vec!["monday night baseball"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nobody_condition() {
        let r = rule("If nobody is in the living room for 10 minutes, turn off the light at the living room.");
        match r.pre.unwrap().expr.unwrap() {
            CondExprAst::Leaf(CondAst {
                kind: CondKind::Presence { who, place },
                period,
                ..
            }) => {
                assert_eq!(who, PresenceSubject::Nobody);
                assert_eq!(place, vec!["living", "room"]);
                assert_eq!(period, Some(SimDuration::from_minutes(10)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_positioned() {
        let e = parse_err("");
        assert!(e.to_string().contains("empty"));
        let e = parse_err("dance the robot");
        assert!(e.message().contains("verb"));
        let e = parse_err("If humidity is higher than, turn on the fan.");
        assert!(e.message().contains("number"));
        let e = parse_err("Turn on.");
        assert!(e.message().contains("device"));
        let e = parse_err("If the hall, turn on the light.");
        assert!(e.message().contains("predicate"));
    }

    #[test]
    fn invalid_times_are_rejected() {
        assert!(parse_err("At 25:00, turn on the TV.")
            .message()
            .contains("out of range"));
        assert!(parse_err("At 13 pm, turn on the TV.")
            .message()
            .contains("invalid 12-hour"));
        assert!(parse_err("On June 31, turn on the TV.")
            .message()
            .contains("invalid calendar date"));
    }

    #[test]
    fn fahrenheit_unit() {
        let r = rule("If temperature is higher than 80 degrees fahrenheit, turn on the fan.");
        match r.pre.unwrap().expr.unwrap() {
            CondExprAst::Leaf(CondAst {
                kind: CondKind::Compare { quantity, .. },
                ..
            }) => assert_eq!(quantity.unit, Some(Unit::Fahrenheit)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subject_with_location_modifier() {
        let r = rule(
            "If the temperature at the second floor is higher than 28 degrees, turn on the fan.",
        );
        match r.pre.unwrap().expr.unwrap() {
            CondExprAst::Leaf(CondAst {
                kind: CondKind::Compare { subject, .. },
                ..
            }) => {
                assert_eq!(subject.name, vec!["temperature"]);
                assert_eq!(
                    subject.location,
                    Some(vec!["second".to_owned(), "floor".to_owned()])
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
