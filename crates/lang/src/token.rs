//! Tokenization of CADEL sentences.
//!
//! CADEL reads like English (paper §4.2), so the lexer is deliberately
//! forgiving:
//!
//! * case-insensitive — tokens carry a lower-cased `text` plus the original
//!   spelling;
//! * common contractions are expanded (`I'm` → `i am`, `let's` → `let us`)
//!   so the grammar only ever sees plain words;
//! * hyphens act as spaces (`air-conditioner` ≡ `air conditioner`);
//! * `"quoted strings"` become a single word token (useful for program
//!   titles containing keywords);
//! * numbers (integers and decimals) become exact [`Rational`] tokens;
//! * sentence punctuation (`,` `.` `(` `)`) is kept as punctuation tokens —
//!   commas and periods are *optional* separators the parser may skip.

use crate::error::ParseError;
use cadel_types::Rational;
use std::fmt;

/// What a token is.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// A word (lower-cased in [`Token::text`]).
    Word,
    /// A number with its exact value.
    Number(Rational),
    /// A punctuation character.
    Punct(char),
}

/// One lexed token.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Lower-cased text (for words), literal text otherwise.
    pub text: String,
    /// The kind and payload.
    pub kind: TokenKind,
    /// Index of the token in the sentence (for error messages).
    pub index: usize,
}

impl Token {
    fn word(text: &str, index: usize) -> Token {
        Token {
            text: text.to_ascii_lowercase(),
            kind: TokenKind::Word,
            index,
        }
    }

    /// Whether this token is the given word (already lower case).
    pub fn is_word(&self, word: &str) -> bool {
        matches!(self.kind, TokenKind::Word) && self.text == word
    }

    /// The numeric value, if this is a number token.
    pub fn number(&self) -> Option<Rational> {
        match self.kind {
            TokenKind::Number(n) => Some(n),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Expands the contractions CADEL sentences commonly contain.
fn expand_contraction(word: &str) -> Option<[&'static str; 2]> {
    match word {
        "i'm" => Some(["i", "am"]),
        "let's" => Some(["let", "us"]),
        "it's" => Some(["it", "is"]),
        "that's" => Some(["that", "is"]),
        "he's" => Some(["he", "is"]),
        "she's" => Some(["she", "is"]),
        "don't" => Some(["do", "not"]),
        "doesn't" => Some(["does", "not"]),
        "isn't" => Some(["is", "not"]),
        _ => None,
    }
}

/// Tokenizes a CADEL sentence.
///
/// # Errors
///
/// Returns [`ParseError`] on an unterminated quote or a malformed number.
///
/// # Example
///
/// ```
/// use cadel_lang::token::tokenize;
///
/// let tokens = tokenize("If I'm in the living room, turn on the stereo.").unwrap();
/// let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(
///     words,
///     ["if", "i", "am", "in", "the", "living", "room", ",", "turn", "on", "the", "stereo", "."]
/// );
/// ```
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut index = 0usize;

    let push_word = |raw: &str, tokens: &mut Vec<Token>, index: &mut usize| {
        let lower = raw.to_ascii_lowercase();
        if let Some(parts) = expand_contraction(&lower) {
            for part in parts {
                tokens.push(Token::word(part, *index));
                *index += 1;
            }
        } else if !lower.is_empty() {
            tokens.push(Token::word(&lower, *index));
            *index += 1;
        }
    };

    while let Some(&c) = chars.peek() {
        if c.is_whitespace() || c == '-' {
            chars.next();
            continue;
        }
        if c == '"' {
            chars.next();
            let mut content = String::new();
            let mut closed = false;
            for ch in chars.by_ref() {
                if ch == '"' {
                    closed = true;
                    break;
                }
                content.push(ch);
            }
            if !closed {
                return Err(ParseError::new("unterminated quote", index, content));
            }
            let collapsed = content.split_whitespace().collect::<Vec<_>>().join(" ");
            tokens.push(Token::word(&collapsed, index));
            index += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let mut number = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_ascii_digit() || d == '.' {
                    number.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            // Trailing sentence period: "28." at end means number 28 + '.'.
            let trailing_dot = number.ends_with('.');
            let numeric = if trailing_dot {
                &number[..number.len() - 1]
            } else {
                &number
            };
            let value: Rational = numeric
                .parse()
                .map_err(|_| ParseError::new("malformed number", index, number.clone()))?;
            tokens.push(Token {
                text: numeric.to_owned(),
                kind: TokenKind::Number(value),
                index,
            });
            index += 1;
            if trailing_dot {
                tokens.push(Token {
                    text: ".".to_owned(),
                    kind: TokenKind::Punct('.'),
                    index,
                });
                index += 1;
            }
            continue;
        }
        if matches!(c, ',' | '.' | '(' | ')' | ':' | ';' | '%') {
            chars.next();
            tokens.push(Token {
                text: c.to_string(),
                kind: TokenKind::Punct(c),
                index,
            });
            index += 1;
            continue;
        }
        // A word: letters, digits after the first letter, apostrophes.
        let mut word = String::new();
        while let Some(&d) = chars.peek() {
            if d.is_alphanumeric() || d == '\'' || d == '_' {
                word.push(d);
                chars.next();
            } else {
                break;
            }
        }
        if word.is_empty() {
            // Unknown symbol: skip it rather than failing, CADEL is lenient.
            chars.next();
            continue;
        }
        push_word(&word, &mut tokens, &mut index);
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(input: &str) -> Vec<String> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn lowercases_words() {
        assert_eq!(words("Turn ON the TV"), ["turn", "on", "the", "tv"]);
    }

    #[test]
    fn expands_contractions() {
        assert_eq!(words("I'm home"), ["i", "am", "home"]);
        assert_eq!(
            words("Let's call the condition"),
            ["let", "us", "call", "the", "condition"]
        );
    }

    #[test]
    fn hyphens_split_words() {
        assert_eq!(words("air-conditioner"), ["air", "conditioner"]);
    }

    #[test]
    fn numbers_are_exact() {
        let tokens = tokenize("set 25.5 degrees").unwrap();
        assert_eq!(tokens[1].number().unwrap(), "25.5".parse().unwrap());
    }

    #[test]
    fn number_followed_by_sentence_period() {
        let tokens = tokenize("temperature is 28.").unwrap();
        assert_eq!(
            tokens[tokens.len() - 2].number().unwrap(),
            Rational::from_integer(28)
        );
        assert_eq!(tokens.last().unwrap().kind, TokenKind::Punct('.'));
    }

    #[test]
    fn decimal_number() {
        let tokens = tokenize("26.5 degrees").unwrap();
        assert_eq!(tokens[0].number().unwrap(), Rational::new(53, 2));
    }

    #[test]
    fn quoted_strings_are_single_tokens() {
        let tokens = tokenize("when \"Monday Night Baseball\" is on air").unwrap();
        assert_eq!(tokens[1].text, "monday night baseball");
        assert!(matches!(tokens[1].kind, TokenKind::Word));
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(tokenize("watch \"forever").is_err());
    }

    #[test]
    fn punctuation_is_kept() {
        let tokens = tokenize("if hot, (then) act.").unwrap();
        let puncts: Vec<&str> = tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Punct(_)))
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, [",", "(", ")", "."]);
    }

    #[test]
    fn percent_sign_is_punct_token() {
        let tokens = tokenize("humidity is over 60%").unwrap();
        assert_eq!(tokens.last().unwrap().kind, TokenKind::Punct('%'));
    }

    #[test]
    fn unknown_symbols_are_skipped() {
        assert_eq!(words("turn @ on"), ["turn", "on"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \t\n").unwrap().is_empty());
    }
}
