//! The CADEL abstract syntax tree.
//!
//! The parser is purely syntactic: noun phrases ("the air conditioner at
//! the living room", "entrance door") are kept as word lists and resolved
//! against the device/sensor environment later, by the compiler. This
//! mirrors the paper's split between the rule description support module
//! (which knows the grammar) and the lookup service (which knows what
//! exists in the home).

use crate::lexicon::StatePhrase;
use cadel_rule::Verb;
use cadel_simplex::RelOp;
use cadel_types::{Date, DayPart, Rational, SimDuration, TimeOfDay, Unit, Weekday};
use std::fmt;

/// A sequence of words forming a noun phrase, lower-cased,
/// article-stripped.
pub type Phrase = Vec<String>;

/// Joins a phrase back into display text.
pub fn phrase_text(phrase: &[String]) -> String {
    phrase.join(" ")
}

/// A complete CADEL command (`<Command>` in Table 1).
///
/// `Rule` dwarfs the definition variants, but commands are transient
/// parse results handed straight to the compiler — boxing would tax the
/// common case to shrink a value that is never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// A rule definition.
    Rule(RuleSentence),
    /// "Let's call the condition that … *word*" (`<CondDef>`).
    CondDef(CondDef),
    /// "Let's call the configuration that … *word*" (`<ConfDef>`).
    ConfDef(ConfDef),
}

/// A parsed rule sentence
/// (`[<PreCondition>] <Verb> <Object> [<Configuration>] [<PostCondition>]`).
#[derive(Clone, Debug, PartialEq)]
pub struct RuleSentence {
    /// The leading condition clause, if any.
    pub pre: Option<CondClause>,
    /// The action verb.
    pub verb: Verb,
    /// Content operand for verbs like "play *jazz music* on the stereo" or
    /// "show *a pop-up menu* on the TV".
    pub content: Option<Phrase>,
    /// The target device phrase.
    pub object: ObjectPhrase,
    /// Configuration settings (`with … of … setting`), possibly referring
    /// to user-defined configuration words.
    pub config: Vec<SettingAst>,
    /// The trailing condition clause, if any.
    pub post: Option<CondClause>,
    /// An `until …` bound on the action.
    pub until: Option<CondClause>,
}

/// A device phrase with an optional location modifier
/// ("the light **at the hall**").
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ObjectPhrase {
    /// The device name words.
    pub name: Phrase,
    /// The location words, when a modifier was present.
    pub location: Option<Phrase>,
}

impl fmt::Display for ObjectPhrase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&phrase_text(&self.name))?;
        if let Some(loc) = &self.location {
            write!(f, " at the {}", phrase_text(loc))?;
        }
        Ok(())
    }
}

/// A condition clause: time specs and/or a condition expression
/// (`<PreCondition>` / `<PostCondition>`).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CondClause {
    /// Leading/trailing time specifications ("after evening", "at night").
    pub time: Vec<TimeSpecAst>,
    /// The boolean condition expression, when present.
    pub expr: Option<CondExprAst>,
}

impl CondClause {
    /// Whether the clause is entirely empty.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty() && self.expr.is_none()
    }
}

/// A condition expression (`<CondExpr>`).
#[derive(Clone, Debug, PartialEq)]
pub enum CondExprAst {
    /// Disjunction.
    Or(Vec<CondExprAst>),
    /// Conjunction.
    And(Vec<CondExprAst>),
    /// A single condition.
    Leaf(CondAst),
}

/// One condition (`<Cond>` plus optional `<PeriodSpec>`/`<TimeSpec>`).
#[derive(Clone, Debug, PartialEq)]
pub struct CondAst {
    /// The condition kind.
    pub kind: CondKind,
    /// "for 1 hour" continuous-duration qualifier.
    pub period: Option<SimDuration>,
    /// An attached time spec ("… in evening").
    pub time: Option<TimeSpecAst>,
}

/// The kinds of primitive condition.
#[derive(Clone, Debug, PartialEq)]
pub enum CondKind {
    /// `subject <op> quantity` — "humidity is higher than 80 percent".
    Compare {
        /// The sensor-ish subject phrase.
        subject: SubjectPhrase,
        /// Comparison operator.
        op: RelOp,
        /// Right-hand quantity.
        quantity: QuantityAst,
    },
    /// `subject <state>` — "the TV is turned on", "the hall is dark".
    State {
        /// The device/place subject phrase.
        subject: SubjectPhrase,
        /// What the state phrase means.
        state: StatePhrase,
    },
    /// `who is at place` — "I'm in the living room".
    Presence {
        /// Who.
        who: PresenceSubject,
        /// The place phrase.
        place: Phrase,
    },
    /// `who <event>` — "someone returns home", "Alan got home from work".
    PersonEvent {
        /// Who.
        who: PresenceSubject,
        /// Canonical event name from the lexicon.
        event: String,
    },
    /// `program is on air` — "a baseball game is on air".
    Broadcast {
        /// The program/keyword phrase.
        program: Phrase,
    },
    /// A user-defined condition word ("hot and stuffy").
    UserWord(String),
}

/// The subject of a comparison or state condition, with optional location
/// ("temperature **at the second floor**").
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SubjectPhrase {
    /// The subject words.
    pub name: Phrase,
    /// The location modifier words.
    pub location: Option<Phrase>,
}

/// Who a presence/person-event condition is about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PresenceSubject {
    /// The speaker ("I") — resolved to the rule's author at compile time.
    Me,
    /// A named person.
    Named(Phrase),
    /// Any person.
    Somebody,
    /// No person.
    Nobody,
}

/// A numeric literal with its parsed unit (`None` = unitless).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantityAst {
    /// The exact value.
    pub value: Rational,
    /// The unit, when one was written.
    pub unit: Option<Unit>,
}

/// A time specification (`<TimeSpec>` / `<DateSpec>`).
#[derive(Clone, Debug, PartialEq)]
pub enum TimeSpecAst {
    /// "after X" — from X (inclusive) to midnight.
    After(TimePointAst),
    /// "at X" — a narrow window starting at X (clock) or the whole day
    /// part (e.g. "at night").
    At(TimePointAst),
    /// "before X" / "until X" inside a condition — midnight to X.
    Before(TimePointAst),
    /// "from X to Y".
    Between(TimePointAst, TimePointAst),
    /// "in (the) evening" — the day-part window.
    During(DayPart),
    /// "every Monday".
    Every(Weekday),
    /// "on June 6 2005".
    On(Date),
}

/// A point in the day.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TimePointAst {
    /// A clock time ("18:30", "6 pm", "noon").
    Clock(TimeOfDay),
    /// A named day part ("evening") — its start or window depending on the
    /// surrounding spec.
    DayPart(DayPart),
}

/// One configuration setting
/// (`<Setting> "of" <Parameter> "setting"` or a user-defined configuration
/// word).
#[derive(Clone, Debug, PartialEq)]
pub enum SettingAst {
    /// "25 degrees of temperature setting".
    Explicit {
        /// Parameter phrase ("temperature", "channel").
        parameter: Phrase,
        /// The configured value.
        value: SettingValueAst,
    },
    /// A user-defined configuration word ("half-lighting").
    UserWord(String),
}

/// The value of an explicit setting.
#[derive(Clone, Debug, PartialEq)]
pub enum SettingValueAst {
    /// A numeric value with unit.
    Quantity(QuantityAst),
    /// A word value ("jazz of genre setting", "4 of channel setting"
    /// parses as quantity; "bbc of channel setting" as word).
    Word(Phrase),
}

/// A user condition-word definition (`<CondDef>`).
#[derive(Clone, Debug, PartialEq)]
pub struct CondDef {
    /// The defining expression.
    pub expr: CondExprAst,
    /// The new word (may be multi-word: "hot and stuffy").
    pub word: String,
}

/// A user configuration-word definition (`<ConfDef>`).
#[derive(Clone, Debug, PartialEq)]
pub struct ConfDef {
    /// The defining settings.
    pub settings: Vec<SettingAst>,
    /// The new word.
    pub word: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phrase_text_joins() {
        let p: Phrase = vec!["air".into(), "conditioner".into()];
        assert_eq!(phrase_text(&p), "air conditioner");
    }

    #[test]
    fn object_phrase_display() {
        let obj = ObjectPhrase {
            name: vec!["light".into()],
            location: Some(vec!["hall".into()]),
        };
        assert_eq!(obj.to_string(), "light at the hall");
    }

    #[test]
    fn cond_clause_emptiness() {
        assert!(CondClause::default().is_empty());
        let clause = CondClause {
            time: vec![TimeSpecAst::During(DayPart::Night)],
            expr: None,
        };
        assert!(!clause.is_empty());
    }
}
