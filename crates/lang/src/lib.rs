//! CADEL — the Context-Aware rule DEfinition Language front end.
//!
//! This crate implements the language of the paper's Table 1: a
//! natural-English rule syntax that ordinary home users can write, with
//! user-definable vocabulary. The pipeline is:
//!
//! ```text
//! "If humidity is higher than 80 percent, turn on the air conditioner …"
//!     │ tokenize (crate::token)
//!     ▼
//! tokens ──parse (crate::parser, with Lexicon + Dictionary)──▶ AST (crate::ast)
//!     │ compile (crate::compile, with a Resolver over the home)
//!     ▼
//! rule object (cadel_rule::Rule) — what the engine executes
//! ```
//!
//! * [`Lexicon`] holds the built-in vocabulary (verbs, comparison and
//!   state phrases, event predicates) as *data*, so non-English CADEL
//!   variants are just different lexicons (paper §4.2).
//! * [`Dictionary`] holds user-defined words from `<CondDef>`/`<ConfDef>`
//!   sentences — "hot and stuffy", "half-lighting" (paper §3.2).
//! * [`Resolver`] abstracts the home environment (people, places, devices,
//!   sensors); the home server backs it with the UPnP registry, while
//!   [`MapResolver`] serves tests and examples.
//!
//! # Example
//!
//! ```
//! use cadel_lang::{parse_command, Compiler, Dictionary, Lexicon, MapResolver};
//! use cadel_lang::ast::Command;
//! use cadel_types::{PersonId, RuleId, SensorKey, DeviceId, Unit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lexicon = Lexicon::english();
//! let dictionary = Dictionary::new();
//! let mut resolver = MapResolver::new();
//! resolver
//!     .add_sensor(
//!         "humidity",
//!         SensorKey::new(DeviceId::new("hygro"), "humidity"),
//!         None,
//!         Unit::Percent,
//!     )
//!     .add_device("fan", "fan-1", None);
//!
//! let cmd = parse_command("If humidity is over 80 percent, turn on the fan.",
//!                         &lexicon, &dictionary)?;
//! let compiler = Compiler::new(&resolver, &dictionary, PersonId::new("tom"));
//! if let Command::Rule(sentence) = cmd {
//!     let rule = compiler.compile_rule(&sentence)?.build(RuleId::new(1))?;
//!     assert_eq!(rule.action().device().as_str(), "fan-1");
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod dictionary;
pub mod error;
pub mod lexicon;
pub mod parser;
pub mod pretty;
pub mod token;

pub use compile::{Compiler, MapResolver, Resolver};
pub use dictionary::Dictionary;
pub use error::{CompileError, LangError, ParseError};
pub use lexicon::{Lexicon, LexiconBuilder, PhraseMap, StatePhrase};
pub use parser::parse_command;
pub use pretty::{render_command, render_rule};
